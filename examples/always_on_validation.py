#!/usr/bin/env python3
"""Always-on validation with a reject-and-fallback policy.

The paper envisions Hodor "as an always-on system that continuously
validates inputs to the SDN controller as it receives them" and, on
failure, to "reject inputs that fail validation and fall back
temporarily to the last input state" (Section 3.2).

This script runs a three-epoch timeline on Abilene:

- epoch 0: clean inputs; validated and recorded as last-known-good.
- epoch 1: a demand-instrumentation rollout drops half the demand
  records (the Section 2.2 outage).  Without Hodor the controller acts
  on the partial matrix and the network congests; with the policy the
  inputs are rejected and the last-good inputs keep the network healthy.
- epoch 2: the rollout is fixed; fresh inputs validate again.

Run:  python examples/always_on_validation.py
"""

from repro.control import ControlPlane, assess_health, records_from_matrix
from repro.core import Hodor, RejectAndFallbackPolicy
from repro.faults import PartialDemandAggregation
from repro.net import NetworkSimulator, gravity_demand, realize_traffic
from repro.telemetry import Jitter, ProbeEngine, TelemetryCollector
from repro.topologies import abilene


def network_outcome(topology, inputs, actual_demand):
    """What the real network does when the controller uses `inputs`."""
    controller = ControlPlane(topology)
    programmed = controller.program(inputs)
    realized = realize_traffic(programmed, actual_demand, topology)
    truth = NetworkSimulator(topology, actual_demand).evaluate(realized)
    return assess_health(truth, actual_demand)


def main() -> None:
    topology = abilene()
    demand = gravity_demand(
        topology.node_names(), total=65.0, seed=1, weights={"atlam": 0.15}
    )
    truth = NetworkSimulator(topology, demand).run()
    collector = TelemetryCollector(Jitter(0.005, seed=2), probe_engine=ProbeEngine(seed=3))
    snapshot = collector.collect(truth)
    records = records_from_matrix(demand, seed=4)

    hodor = Hodor(topology, policy=RejectAndFallbackPolicy())

    plans = [
        ("epoch 0: healthy rollout", ControlPlane(topology)),
        (
            "epoch 1: buggy demand rollout (drops ~50% of records)",
            ControlPlane(
                topology,
                demand_bugs=[PartialDemandAggregation(drop_fraction=0.5, seed=9)],
            ),
        ),
        ("epoch 2: rollout fixed", ControlPlane(topology)),
    ]

    for title, plane in plans:
        print(f"\n=== {title} ===")
        inputs = plane.compute_inputs(snapshot, records)
        print(f"believed demand total: {inputs.demand.total():.1f} "
              f"(true: {demand.total():.1f})")

        decision = hodor.validate_and_decide(snapshot, inputs)
        if decision.fell_back:
            print("hodor: inputs REJECTED, falling back to last-known-good")
        else:
            print("hodor: inputs accepted")
        for alert in decision.alerts:
            print(f"  alert: {alert}")

        unprotected = network_outcome(topology, inputs, demand)
        protected = network_outcome(topology, decision.inputs, demand)
        print(f"network if inputs used as-is : {unprotected.summary()}")
        print(f"network with hodor's decision: {protected.summary()}")


if __name__ == "__main__":
    main()
