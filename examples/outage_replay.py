#!/usr/bin/env python3
"""Replay the paper's Section 2 outage catalog against three validators.

For every outage scenario (telemetry bugs, intent bugs, aggregation
bugs, external-input bugs) plus the legitimate mass-drain disaster,
this script shows whether:

- Hodor (dynamic validation) flags the epoch,
- today's static checks flag it,
- statistical anomaly detection flags it,

and what actually happens to the network when the inputs are used.

Run:  python examples/outage_replay.py
"""

from repro.experiments import OutageStudy, format_table


def main() -> None:
    study = OutageStudy(history_epochs=8, seed=1)
    outcomes = study.run()

    rows = []
    for outcome in outcomes:
        scenario = outcome.scenario
        rows.append(
            [
                scenario.scenario_id,
                scenario.title[:46],
                scenario.category,
                "yes" if outcome.hodor_flagged else "no",
                ",".join(outcome.hodor_channels) or "-",
                "yes" if outcome.static_flagged else "no",
                "yes" if outcome.anomaly_flagged else "no",
                "yes" if outcome.damaged else "no",
            ]
        )
    print(
        format_table(
            ["id", "scenario", "category", "hodor", "via", "static", "anomaly", "damage"],
            rows,
        )
    )

    summary = OutageStudy.summarize(outcomes)
    print("\ndetection of incorrect-input scenarios:")
    print(f"  hodor   : {summary['hodor_detection_rate']:.0%}")
    print(f"  static  : {summary['static_detection_rate']:.0%}")
    print(f"  anomaly : {summary['anomaly_detection_rate']:.0%}")
    print("false positives on the legitimate disaster scenario:")
    print(f"  hodor   : {summary['hodor_false_positive_rate']:.0%}")
    print(f"  static  : {summary['static_false_positive_rate']:.0%}  "
          "(the Section 1 heuristic failure: a real disaster gets rejected)")
    print(f"  anomaly : {summary['anomaly_false_positive_rate']:.0%}")


if __name__ == "__main__":
    main()
