#!/usr/bin/env python3
"""Design-time signal selection via the gNMI-style telemetry surface.

Hodor's collection step rests on a practical observation (Section 3.2,
step 1): operators maintain detailed network models and vendor-agnostic
APIs whose documented paths let the relevant signals be "chosen once at
system design time".  This example plays that design-time session:

1. enumerate the signal registry (what the fleet can report),
2. walk a live snapshot through the gNMI facade,
3. read a handful of raw values by path -- including one a fault made
   malformed, which the transport hands over untouched,
4. show the collection step turning that mess into typed values plus
   findings.

Run:  python examples/signal_inventory.py
"""

from repro.core import SignalCollector
from repro.faults import FaultInjector, MalformedTelemetry
from repro.net import NetworkSimulator, gravity_demand
from repro.telemetry import (
    SIGNAL_REGISTRY,
    GnmiFacade,
    Jitter,
    ProbeEngine,
    SignalKind,
    SignalPath,
    TelemetryCollector,
)
from repro.topologies import abilene


def main() -> None:
    print("signal registry (the design-time catalog):\n")
    for kind, (template, description) in SIGNAL_REGISTRY.items():
        print(f"  {kind.value:<13} {description}")
        print(f"  {'':<13} {template}")

    topology = abilene()
    demand = gravity_demand(
        topology.node_names(), total=40.0, seed=2, weights={"atlam": 0.15}
    )
    truth = NetworkSimulator(topology, demand).run()
    collector = TelemetryCollector(Jitter(0.005, seed=1), probe_engine=ProbeEngine(seed=2))
    snapshot = collector.collect(truth)
    snapshot, _ = FaultInjector(
        [MalformedTelemetry(interfaces=[("atla", "hstn")])]
    ).inject(snapshot)

    facade = GnmiFacade(snapshot)
    print(f"\nlive snapshot answers {len(facade.walk())} paths; e.g.:\n")
    for path in facade.walk(kinds=[SignalKind.TX_RATE])[:3]:
        print(f"  {path} = {facade.get(path)!r}")

    corrupted = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
    print(f"\nthe transport does not interpret values:")
    print(f"  {corrupted} = {facade.get(corrupted)!r}")

    collected = SignalCollector().collect(snapshot)
    counter = collected.counter("atla", "hstn")
    print("\nafter Hodor's collection step:")
    print(f"  typed value : rx={counter.rx} tx={counter.tx}")
    for finding in collected.findings:
        print(f"  finding     : [{finding.severity.value}] {finding.code} "
              f"{finding.subject}: {finding.detail}")


if __name__ == "__main__":
    main()
