#!/usr/bin/env python3
"""A week of always-on validation: diurnal traffic, two bad rollouts.

Runs a 16-epoch timeline on Abilene with diurnal demand.  At epoch 4 a
buggy demand-instrumentation rollout lands (drops half the records);
it is reverted at epoch 7.  At epoch 10 a topology-instrumentation bug
stitches a partial topology for two epochs.  A persistent Hodor
instance with a reject-and-fallback policy watches every epoch.

The output table shows, per epoch, what the network would have looked
like with the fresh inputs versus with Hodor's decision -- the
"outages averted" time series.

Run:  python examples/week_of_validation.py
"""

from repro.faults import PartialDemandAggregation, PartialTopologyStitch
from repro.net import gravity_demand
from repro.scenarios import EpochSpec, Timeline
from repro.topologies import abilene


def main() -> None:
    topology = abilene()
    base_demand = gravity_demand(
        topology.node_names(), total=58.0, seed=3, weights={"atlam": 0.15}
    )

    demand_bug = EpochSpec(
        demand_bugs=(PartialDemandAggregation(drop_fraction=0.5, seed=11),),
        label="demand rollout bug",
    )
    topo_bug = EpochSpec(
        topo_bugs=(PartialTopologyStitch({"kscy", "ipls"}),),
        label="partial stitch bug",
    )
    schedule = {4: demand_bug, 5: demand_bug, 6: demand_bug, 10: topo_bug, 11: topo_bug}

    timeline = Timeline(topology, base_demand, schedule=schedule, seed=7)
    result = timeline.run(epochs=16)

    print(result.render())
    averted = result.epochs_averted()
    print(f"\nepochs damaged without hodor : {result.damaged_epochs(protected=False)}")
    print(f"epochs damaged with hodor    : {result.damaged_epochs(protected=True)}")
    print(f"epochs averted               : {averted}")


if __name__ == "__main__":
    main()
