#!/usr/bin/env python3
"""Quickstart: validate SDN controller inputs with Hodor.

Walks the paper's Figure 3 example end to end:

1. Build the 3-router line network and its demand matrix.
2. Simulate ground truth and collect router telemetry.
3. Corrupt one counter (the tx side of the A->B link).
4. Run Hodor: R1 link symmetry detects the corruption, R2 flow
   conservation repairs it to exactly 76, and the demand input passes
   its 2v invariants against the hardened counters.
5. Perturb the demand input and watch the invariants catch it.

Run:  python examples/quickstart.py
"""

from repro.core import Hodor
from repro.net import NetworkSimulator
from repro.telemetry import Jitter, ProbeEngine, TelemetryCollector
from repro.topologies import fig3_demand, fig3_network


def main() -> None:
    # 1. The Figure 3 network: A - B - C with host-facing interfaces.
    topology = fig3_network()
    demand = fig3_demand()
    print(f"network: {topology}")
    print(f"demand matrix total: {demand.total():g} (A->B: 24, A->C: 52, B->C: 23)")

    # 2. Ground truth and telemetry.
    truth = NetworkSimulator(topology, demand, strategy="single").run()
    print(f"\nground truth: A->B carries {truth.flow_on('A', 'B'):g}, "
          f"B->C carries {truth.flow_on('B', 'C'):g}")
    collector = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0))
    snapshot = collector.collect(truth)

    # 3. A router bug corrupts one counter (Section 2.1).
    snapshot.counters[("A", "B")].tx_rate = 120.0
    print("\ninjected fault: tx counter at A->B now reads 120 (truth: 76)")

    # 4. Hodor hardens the signals and validates the demand input.
    hodor = Hodor(topology)
    hardened = hodor.harden(snapshot)
    repaired = hardened.edge_flows[("A", "B")]
    print(f"\nhardened A->B flow: {repaired.value:g} "
          f"({repaired.confidence.value} via {repaired.source})")
    print("hardening findings:")
    for finding in hardened.findings:
        print(f"  [{finding.severity.value}] {finding.code} {finding.subject}: "
              f"{finding.detail}")

    report = hodor.validate_demand(snapshot, demand)
    print(f"\ncorrect demand input -> {report.checks['demand'].summary()}")

    # 5. A buggy demand input (the A->C flow went missing upstream).
    buggy = demand.copy()
    buggy["A", "C"] = 0.0
    report = hodor.validate_demand(snapshot, buggy)
    print(f"buggy demand input   -> {report.checks['demand'].summary()}")
    for violation in report.checks["demand"].violations:
        print(f"  {violation.describe()}")

    print("\nverdict:", "inputs rejected" if not report.all_valid else "inputs accepted")


if __name__ == "__main__":
    main()
