#!/usr/bin/env python3
"""The Section 4.1 sensitivity study on Abilene, interactively sized.

Reproduces the paper's preliminary evaluation: heavy-tailed demand
matrices over the Abilene topology are perturbed by zeroing out k
entries, and the 2v demand invariants (tau_e = 0.02) are asked whether
the perturbed matrix is consistent with hardened interface counters.

Paper numbers: 99.2% detection at k = 2, 100% at k >= 3.

Run:  python examples/demand_validation_abilene.py [trials-per-k]
"""

import sys

from repro.experiments import PerturbationStudy, format_percent, format_table


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    study = PerturbationStudy(matrices=8, seed=0)

    print(f"detection rate vs zeroed entries (tau_e = 0.02, {trials} trials/k):\n")
    rows = study.run(zero_counts=(1, 2, 3, 4, 5, 6), trials=trials)
    print(
        format_table(
            ["zeroed entries", "detected", "trials", "rate", "paper"],
            [
                [
                    row.zeroed,
                    row.detected,
                    row.trials,
                    format_percent(row.detection_rate),
                    {2: "99.2%", 3: "100%"}.get(row.zeroed, "-"),
                ]
                for row in rows
            ],
        )
    )
    print(f"\nfalse-positive rate on clean matrices: "
          f"{format_percent(study.false_positive_rate())}")

    print("\ndetection rate vs tau_e (2 zeroed entries):\n")
    tau_rows = study.tau_sweep(taus=(0.005, 0.01, 0.02, 0.05, 0.1), trials=max(60, trials // 2))
    print(
        format_table(
            ["tau_e", "rate"],
            [[f"{row.tau_e:.3f}", format_percent(row.detection_rate)] for row in tau_rows],
        )
    )

    print("\ndetection of scaled (mis-aggregated) entries, 2 per matrix:\n")
    scaled = study.scaling_perturbations(trials=max(60, trials // 2))
    print(
        format_table(
            ["scale factor", "rate"],
            [[f"{factor:g}", format_percent(row.detection_rate)] for factor, row in scaled],
        )
    )


if __name__ == "__main__":
    main()
