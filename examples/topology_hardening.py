#!/usr/bin/env python3
"""Link-status hardening: the Section 4.2 truth table in action.

Shows how Hodor combines the three redundancies to harden link status:

- R1 status symmetry (both ends must agree),
- R3 alternative signals (interface counters),
- R4 manufactured signals (active neighbor probes),

on three failure stories over Abilene:

1. one endpoint misreports a healthy link as down,
2. both endpoints misreport a cut fiber as up,
3. an ACL misconfiguration black-holes a link whose status is honestly up,

each evaluated under the three operator risk profiles.

Run:  python examples/topology_hardening.py
"""

from repro.core import Hodor, HodorConfig, RiskProfile
from repro.faults import FaultInjector, WrongLinkStatus
from repro.net import NetworkSimulator, gravity_demand
from repro.telemetry import Jitter, LinkHealth, ProbeEngine, TelemetryCollector
from repro.topologies import abilene

LINK = "ipls~kscy"


def build_snapshot(health=None, faults=()):
    topology = abilene()
    demand = gravity_demand(
        topology.node_names(), total=40.0, seed=5, weights={"atlam": 0.15}
    )
    health = dict(health or {})
    blackholes = [
        direction
        for name, link_health in health.items()
        if not link_health.carries_traffic
        for direction in topology.link(name).directions()
    ]
    truth = NetworkSimulator(topology, demand, blackholes=blackholes).run()
    collector = TelemetryCollector(Jitter(0.005, seed=6), probe_engine=ProbeEngine(seed=7))
    snapshot = collector.collect(truth, health=health)
    if faults:
        snapshot, _records = FaultInjector(list(faults), seed=8).inject(snapshot)
    return topology, snapshot


def show(title, health=None, faults=()):
    print(f"\n=== {title} ===")
    topology, snapshot = build_snapshot(health, faults)
    for profile in RiskProfile.ALL:
        hodor = Hodor(topology, HodorConfig(risk_profile=profile))
        status = hodor.harden(snapshot).links[LINK]
        forwarding = {True: "forwarding", False: "NOT forwarding", None: "forwarding unknown"}
        print(f"  {profile:>12}: verdict={status.verdict.value:<8} "
              f"{forwarding[status.forwarding]:<18} "
              f"usable={status.usable}  evidence={', '.join(status.evidence)}")


def main() -> None:
    show("healthy link, truthful reports")

    show(
        "one endpoint lies: reports the healthy link down",
        faults=[WrongLinkStatus([("ipls", "kscy")], report_up=False)],
    )

    show(
        "fiber cut, both endpoints lie up",
        health={LINK: LinkHealth(up=False)},
        faults=[WrongLinkStatus([("ipls", "kscy"), ("kscy", "ipls")], report_up=True)],
    )

    show(
        "ACL misconfiguration: status honestly up, dataplane black-holes",
        health={LINK: LinkHealth(up=True, forwarding=False)},
    )

    print(
        "\nNote how probes (R4) are what separate 'status up' from 'actually\n"
        "carries traffic' -- the semantic, design-time bug class of Section 4.2."
    )


if __name__ == "__main__":
    main()
