"""Setup shim so `pip install -e .` works on environments without the
`wheel` package (PEP 517 editable builds need it; the legacy path does
not).  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
