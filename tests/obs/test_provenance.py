"""Verdict provenance: signal resolution, dispositions, redundancies."""

import pytest

from repro.core.invariants import CheckResult, Invariant, InvariantStatus, InvariantResult
from repro.core.signals import (
    Confidence,
    DrainVerdict,
    Finding,
    FindingSeverity,
    HardenedDrain,
    HardenedLinkStatus,
    HardenedState,
    HardenedValue,
    LinkVerdict,
)
from repro.obs import build_provenance


def violated(name, description="lhs == rhs", error=0.5):
    invariant = Invariant(name=name, description=description, lhs=1.0, rhs=2.0, tolerance=0.01)
    return InvariantResult(invariant, InvariantStatus.VIOLATED, error=error)


def check_with(name, *results):
    check = CheckResult(input_name=name)
    check.results.extend(results)
    return check


class TestSignalResolution:
    def test_row_sum_resolves_hardened_ext_in(self):
        hardened = HardenedState()
        hardened.ext_in["atla"] = HardenedValue(
            3.0, Confidence.CORROBORATED, source="avg of both ends"
        )
        record = build_provenance(
            check_with("demand", violated("demand/row-sum/atla")), hardened
        )
        assert not record.valid
        (fired,) = record.fired
        assert fired.kind == "demand/row-sum"
        assert fired.entity == "atla"
        (signal,) = fired.signals
        assert signal.signal == "ext_in/atla"
        assert signal.disposition == "confirmed"
        assert signal.confidence == "corroborated"
        assert signal.source == "avg of both ends"

    def test_col_sum_resolves_ext_out_and_repaired_disposition(self):
        hardened = HardenedState()
        hardened.ext_out["chic"] = HardenedValue(
            1.0, Confidence.REPAIRED, source="conservation solve"
        )
        record = build_provenance(
            check_with("demand", violated("demand/col-sum/chic")), hardened
        )
        assert record.fired[0].signals[0].disposition == "repaired"

    def test_topology_invariant_resolves_link_with_evidence_heuristic(self):
        hardened = HardenedState()
        hardened.links["atla~wash"] = HardenedLinkStatus(
            verdict=LinkVerdict.UP, evidence=("counters", "probes")
        )
        hardened.links["chin~nycm"] = HardenedLinkStatus(
            verdict=LinkVerdict.DOWN, evidence=("oper-status",)
        )
        record = build_provenance(
            check_with(
                "topology",
                violated("topology/live-iff-up/atla~wash"),
                violated("topology/live-iff-up/chin~nycm"),
            ),
            hardened,
        )
        first, second = record.fired
        assert first.signals[0].disposition == "confirmed"  # two evidence notes
        assert first.signals[0].confidence == "up"
        assert second.signals[0].disposition == "raw"  # single vantage point

    def test_drain_invariants_resolve_node_and_link_drains(self):
        hardened = HardenedState()
        hardened.node_drains["atla"] = HardenedDrain(
            verdict=DrainVerdict.DRAINED, evidence=("intent", "flows")
        )
        hardened.link_drains["atla~wash"] = HardenedDrain(
            verdict=DrainVerdict.SERVING, evidence=("flows",)
        )
        record = build_provenance(
            check_with(
                "drain",
                violated("drain/node-consistent/atla"),
                violated("drain/link-symmetric/atla~wash"),
            ),
            hardened,
        )
        node, link = record.fired
        assert node.signals[0].signal == "node_drains/atla"
        assert node.signals[0].disposition == "confirmed"
        assert link.signals[0].signal == "link_drains/atla~wash"
        assert link.signals[0].disposition == "raw"

    def test_missing_hardened_entry_is_unknown(self):
        record = build_provenance(
            check_with("demand", violated("demand/row-sum/ghost")), HardenedState()
        )
        (signal,) = record.fired[0].signals
        assert signal.disposition == "unknown"
        assert signal.source == "absent from hardened state"


class TestRedundanciesAndShape:
    def test_redundancies_cover_only_fired_entities(self):
        hardened = HardenedState()
        hardened.findings.append(
            Finding("R1_MISMATCH", FindingSeverity.WARNING, "atla-chic", "d", redundancy="R1")
        )
        hardened.findings.append(
            Finding("R2_REPAIR", FindingSeverity.INFO, "kscy", "d", redundancy="R2")
        )
        record = build_provenance(
            check_with("demand", violated("demand/row-sum/atla")), hardened
        )
        # The link-level finding matches node atla; kscy does not fire.
        assert record.redundancies == ("R1",)

    def test_valid_input_has_empty_provenance_lists(self):
        record = build_provenance(check_with("topology"), HardenedState())
        assert record.valid
        assert record.fired == ()
        assert record.redundancies == ()
        assert record.describe() == "topology: valid"

    def test_to_dict_is_json_shaped(self):
        import json

        hardened = HardenedState()
        hardened.ext_in["atla"] = HardenedValue(3.0, Confidence.REPORTED, source="gnmi")
        record = build_provenance(
            check_with("demand", violated("demand/row-sum/atla", error=0.25)), hardened
        )
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["input"] == "demand"
        assert payload["valid"] is False
        assert payload["num_violations"] == 1
        assert payload["fired"][0]["name"] == "demand/row-sum/atla"
        assert payload["fired"][0]["error"] == pytest.approx(0.25)
        assert payload["fired"][0]["signals"][0]["disposition"] == "raw"

    def test_describe_names_invariant_and_signal(self):
        hardened = HardenedState()
        hardened.ext_in["atla"] = HardenedValue(3.0, Confidence.REPORTED, source="gnmi")
        record = build_provenance(
            check_with("demand", violated("demand/row-sum/atla", error=0.25)), hardened
        )
        text = record.describe()
        assert "demand/row-sum/atla" in text
        assert "err=25.00%" in text
        assert "ext_in/atla (raw@reported)" in text


class TestPipelineIntegration:
    def test_reports_carry_provenance_for_every_input(self):
        from repro.scenarios.catalog import scenario_by_id

        world = scenario_by_id("S01").build(seed=1)
        outcome = world.run_epoch(timestamp=0.0)
        from repro.core.pipeline import Hodor

        report = Hodor(world.topology, config=world.hodor_config).validate(
            outcome.snapshot, outcome.inputs
        )
        assert set(report.provenance) == set(report.verdicts)
        for name, verdict in report.verdicts.items():
            record = report.provenance[name]
            assert record.valid == verdict.valid
            assert record.num_violations == verdict.num_violations
            if not record.valid:
                assert record.fired  # every flagged verdict names invariants
                for fired in record.fired:
                    assert fired.name
                    assert fired.signals  # ... and the signals that fed them
