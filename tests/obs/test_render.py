"""Trace loading and rendering: both export formats, one tree."""

import pytest

from repro.obs import ManualClock, Tracer, load_trace_file, render_trace

from tests.obs.test_trace import traced_epoch


def flagged_tracer():
    """Two epochs, one carrying a flagged verdict with provenance."""
    clock = ManualClock()
    tracer = Tracer(clock=clock)
    provenance = {
        "input": "topology",
        "valid": False,
        "num_violations": 1,
        "num_evaluated": 15,
        "fired": [
            {
                "name": "topology/live-iff-up/atla~wash",
                "kind": "topology/live-iff-up",
                "entity": "atla~wash",
                "description": "live iff up",
                "error": 1.0,
                "signals": [
                    {
                        "signal": "links/atla~wash",
                        "disposition": "confirmed",
                        "confidence": "up",
                        "source": "counters; probes",
                    }
                ],
            }
        ],
        "redundancies": ["R1"],
    }
    for epoch in range(2):
        with tracer.span("epoch", epoch=epoch, mode="full"):
            clock.tick(0.001)
            with tracer.span("check", category="stage"):
                clock.tick(0.002)
            tracer.instant("verdict", input="demand", valid=True)
            tracer.instant("verdict", input="topology", valid=False, provenance=provenance)
    return tracer


class TestLoadTraceFile:
    def test_chrome_and_jsonl_load_to_the_same_events(self, tmp_path):
        tracer = traced_epoch()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write_chrome_trace(str(chrome))
        tracer.write_jsonl(str(jsonl))
        from_chrome = load_trace_file(str(chrome))
        from_jsonl = load_trace_file(str(jsonl))
        # Chrome export rounds to whole tenths of microseconds; compare
        # structure exactly and times approximately.
        assert [e["name"] for e in from_chrome] == [e["name"] for e in from_jsonl]
        assert [e["parent"] for e in from_chrome] == [e["parent"] for e in from_jsonl]
        for chrome_event, jsonl_event in zip(from_chrome, from_jsonl):
            for key in ("t0", "t1", "t"):
                if key in jsonl_event:
                    assert chrome_event[key] == pytest.approx(jsonl_event[key], abs=1e-9)

    def test_unrecognized_format_raises(self, tmp_path):
        bad = tmp_path / "not_a_trace.json"
        bad.write_text('{"some": "object"}\n')
        with pytest.raises(ValueError, match="unrecognized trace format"):
            load_trace_file(str(bad))

    def test_empty_file_yields_no_events(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert load_trace_file(str(empty)) == []


class TestRenderTrace:
    def test_header_counts_spans_instants_epochs(self):
        text = render_trace(flagged_tracer().events())
        assert text.splitlines()[0] == "trace: 4 spans, 4 instants, 2 epoch spans"

    def test_tree_nests_stages_under_epochs(self):
        lines = render_trace(flagged_tracer().events()).splitlines()
        epoch_line = next(line for line in lines if line.lstrip().startswith("epoch"))
        check_line = next(line for line in lines if line.lstrip().startswith("check"))
        assert len(check_line) - len(check_line.lstrip()) > len(epoch_line) - len(
            epoch_line.lstrip()
        )

    def test_flagged_verdicts_render_provenance_block(self):
        text = render_trace(flagged_tracer().events())
        assert "topology: 1 violations / 15 invariants  [R1]" in text
        assert "topology/live-iff-up/atla~wash err=100.00% via links/atla~wash" in text
        assert "(confirmed@up)" in text

    def test_provenance_only_mode_hides_spans(self):
        text = render_trace(flagged_tracer().events(), provenance_only=True)
        assert "epoch" not in text.splitlines()[1]
        assert "topology: 1 violations" in text
        # Valid verdicts carry no provenance payload and are omitted.
        assert "demand" not in text

    def test_max_epochs_truncates(self):
        text = render_trace(flagged_tracer().events(), max_epochs=1)
        assert text.count("epoch 3.000 ms") == 1
        assert text.endswith("... truncated after 1 epochs")
