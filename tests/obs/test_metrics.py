"""Metrics registry: counter/gauge/histogram semantics and exposition."""

import math

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


def parse_exposition(text):
    """Parse a Prometheus text exposition into helps, types, and samples.

    Minimal but strict: every non-comment line must be
    ``name{labels} value`` with parseable labels and a float value.
    """
    helps, types, samples = {}, {}, {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name, help_text = line[len("# HELP "):].split(" ", 1)
            helps[name] = help_text
        elif line.startswith("# TYPE "):
            name, kind = line[len("# TYPE "):].split(" ", 1)
            types[name] = kind
        else:
            assert line and not line.startswith("#"), f"unexpected line: {line!r}"
            head, value = line.rsplit(" ", 1)
            labels = {}
            if "{" in head:
                name, _, body = head.partition("{")
                assert body.endswith("}")
                for pair in body[:-1].split(","):
                    key, _, raw = pair.partition("=")
                    assert raw.startswith('"') and raw.endswith('"')
                    labels[key] = raw[1:-1]
            else:
                name = head
            samples[(name, tuple(sorted(labels.items())))] = float(value)
    return helps, types, samples


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("events_total", "Events seen.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("events_total", "Events seen.")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_set_to_is_idempotent_snapshot_write(self):
        counter = MetricsRegistry().counter("events_total", "Events seen.")
        counter.set_to(7)
        counter.set_to(7)
        assert counter.value == 7.0
        with pytest.raises(ValueError):
            counter.set_to(-1)

    def test_labelled_counter_requires_labels(self):
        counter = MetricsRegistry().counter("by_stage_total", "x", labels=("stage",))
        with pytest.raises(ValueError):
            counter.inc()
        counter.labels(stage="collect").inc()
        with pytest.raises(ValueError):
            counter.labels(phase="collect")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth", "Queue depth.")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == pytest.approx(3.0)


class TestHistogram:
    def test_observations_fill_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        _, _, samples = parse_exposition(registry.render())
        assert samples[("lat_seconds_bucket", (("le", "0.01"),))] == 1.0
        assert samples[("lat_seconds_bucket", (("le", "0.1"),))] == 2.0
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 3.0
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 4.0
        assert samples[("lat_seconds_count", ())] == 4.0
        assert samples[("lat_seconds_sum", ())] == pytest.approx(5.555)

    def test_default_buckets_are_sorted_latency_bounds(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.0005)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", "x", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", "x", buckets=())


class TestRegistry:
    def test_registration_is_idempotent_for_matching_shape(self):
        registry = MetricsRegistry()
        first = registry.counter("events_total", "Events.")
        again = registry.counter("events_total", "Events.")
        assert first is again

    def test_shape_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events.")
        with pytest.raises(ValueError):
            registry.gauge("events_total", "Events.")
        with pytest.raises(ValueError):
            registry.counter("events_total", "Events.", labels=("stage",))

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "x")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "x", labels=("__reserved",))

    def test_every_sample_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "Counts a.").inc()
        registry.gauge("b_level", "Level of b.").set(1.0)
        registry.histogram("c_seconds", "C latency.").observe(0.2)
        helps, types, samples = parse_exposition(registry.render())
        for name, _ in samples:
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in types:
                    family = name[: -len(suffix)]
            assert family in helps, f"{name} lacks # HELP"
            assert family in types, f"{name} lacks # TYPE"
        assert types == {"a_total": "counter", "b_level": "gauge", "c_seconds": "histogram"}

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", labels=("k",)).labels(k='we"ird\\v').inc()
        rendered = registry.render()
        assert 'k="we\\"ird\\\\v"' in rendered

    def test_values_render_without_float_noise(self):
        registry = MetricsRegistry()
        registry.gauge("g", "g").set(2.0)
        _, _, samples = parse_exposition(registry.render())
        assert samples[("g", ())] == 2.0
        assert "\ng 2\n" in registry.render()

    def test_render_round_trips_through_parser(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.").inc(3)
        registry.gauge("ratio", "R.").set(1 / 3)
        _, _, samples = parse_exposition(registry.render())
        assert samples[("a_total", ())] == 3.0
        assert math.isclose(samples[("ratio", ())], 1 / 3)

    def test_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.").inc()
        path = tmp_path / "metrics.prom"
        registry.write(str(path))
        assert path.read_text() == registry.render()
