"""Property tests for metrics exposition and merge.

Two contracts the history layer now leans on:

1. **Exposition round-trip** -- ``registry.render()`` followed by
   :func:`repro.obs.metrics.parse_exposition` reproduces every sample
   exactly, for arbitrary label values (quotes, backslashes, newlines)
   and for the special float values (``+Inf``/``-Inf``/``NaN``).
2. **Histogram merge** -- merging two histograms bucket-wise equals
   observing both value streams into a single histogram; counter merge
   adds, gauge merge takes the incoming reading.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    parse_exposition,
)

# Printable-ish label values plus the characters the escaper handles.
label_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters="\r", max_codepoint=0x2FF
    ),
    max_size=12,
)
label_keys = st.sampled_from(["shard", "stage", "result", "rule"])
finite_values = st.floats(
    allow_nan=False, allow_infinity=False, min_value=0.0, max_value=1e12
)
observations = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, min_value=0.0, max_value=10.0),
    max_size=30,
)


def _sample_map(samples):
    return {(name, tuple(pairs)): value for name, pairs, value in samples}


class TestExpositionRoundTrip:
    @given(pairs=st.dictionaries(label_keys, label_values, max_size=3), value=finite_values)
    @settings(max_examples=80, deadline=None)
    def test_labelled_counter_round_trips(self, pairs, value):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "E.", labels=tuple(sorted(pairs)))
        (counter.labels(**pairs) if pairs else counter.labels()).inc(value)
        parsed = _sample_map(parse_exposition(registry.render()))
        key = ("events_total", tuple((k, pairs[k]) for k in sorted(pairs)))
        assert parsed[key] == pytest.approx(value, abs=0.0)

    @given(values=observations)
    @settings(max_examples=40, deadline=None)
    def test_histogram_round_trips(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "L.")
        histogram.labels()  # materialise the child even with no observations
        for value in values:
            histogram.observe(value)
        parsed = _sample_map(parse_exposition(registry.render()))
        assert parsed[("lat_seconds_count", ())] == len(values)
        assert parsed[("lat_seconds_sum", ())] == pytest.approx(
            math.fsum(values), rel=1e-9, abs=1e-12
        )
        # The implicit bucket is spelled +Inf and must parse back as such.
        assert parsed[("lat_seconds_bucket", (("le", "+Inf"),))] == len(values)

    def test_special_values_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("drift", "D.", labels=("series",)).labels(
            series="detection_rate"
        ).set(float("inf"))
        registry.gauge("drift", "D.", labels=("series",)).labels(
            series="repair_rate"
        ).set(float("-inf"))
        registry.gauge("drift", "D.", labels=("series",)).labels(
            series="unknown_rate"
        ).set(float("nan"))
        rendered = registry.render()
        assert "+Inf" in rendered and "-Inf" in rendered and "NaN" in rendered
        assert "inf\n" not in rendered  # repr() spelling must not leak
        parsed = _sample_map(parse_exposition(rendered))
        assert parsed[("drift", (("series", "detection_rate"),))] == float("inf")
        assert parsed[("drift", (("series", "repair_rate"),))] == float("-inf")
        assert math.isnan(parsed[("drift", (("series", "unknown_rate"),))])

    def test_hostile_label_values_round_trip(self):
        registry = MetricsRegistry()
        hostile = 'a\\b"c\nd\\ne,={}"'
        registry.counter("x_total", "X.", labels=("k",)).labels(k=hostile).inc()
        parsed = parse_exposition(registry.render())
        assert parsed == [("x_total", [("k", hostile)], 1.0)]


class TestMerge:
    @given(values_a=observations, values_b=observations)
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_equals_combined_stream(self, values_a, values_b):
        reg_a, reg_b, reg_both = (MetricsRegistry() for _ in range(3))
        for registry, values in ((reg_a, values_a), (reg_b, values_b)):
            histogram = registry.histogram("lat_seconds", "L.")
            for value in values:
                histogram.observe(value)
        combined = reg_both.histogram("lat_seconds", "L.")
        for value in values_a + values_b:
            combined.observe(value)
        reg_a.merge(reg_b)
        flat = lambda reg: {  # noqa: E731
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in reg.samples()
        }
        merged, combined = flat(reg_a), flat(reg_both)
        assert merged.keys() == combined.keys()
        for key, value in combined.items():
            # _sum differs by float associativity; counts are exact.
            assert merged[key] == pytest.approx(value, rel=1e-12, abs=1e-12)

    @given(a=finite_values, b=finite_values)
    @settings(max_examples=40, deadline=None)
    def test_counter_merge_adds_and_gauge_takes_incoming(self, a, b):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.counter("n_total", "N.").inc(a)
        reg_b.counter("n_total", "N.").inc(b)
        reg_a.gauge("level", "G.").set(a)
        reg_b.gauge("level", "G.").set(b)
        reg_a.merge(reg_b)
        assert reg_a.get("n_total").value == pytest.approx(a + b)
        assert reg_a.get("level").value == b

    def test_merge_brings_over_missing_families_by_copy(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_b.counter("only_total", "O.").inc(2)
        reg_a.merge(reg_b)
        assert reg_a.get("only_total").value == 2
        reg_b.get("only_total").inc(5)  # must not alias into reg_a
        assert reg_a.get("only_total").value == 2

    def test_merge_rejects_kind_and_bucket_mismatch(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.counter("m", "M.")
        reg_b.gauge("m", "M.")
        with pytest.raises(ValueError, match="already registered"):
            reg_a.merge(reg_b)
        reg_c, reg_d = MetricsRegistry(), MetricsRegistry()
        reg_c.histogram("h_seconds", "H.", buckets=(0.1, 1.0))
        reg_d.histogram("h_seconds", "H.", buckets=(0.5, 1.0))
        with pytest.raises(ValueError, match="bucket"):
            reg_c.merge(reg_d)

    def test_merge_rejects_label_mismatch(self):
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        reg_a.counter("m_total", "M.", labels=("x",))
        reg_b.counter("m_total", "M.", labels=("y",))
        with pytest.raises(ValueError, match="already registered"):
            reg_a.merge(reg_b)
