"""Tracer semantics: nesting, determinism, exports, and the null path."""

import json
import threading

import pytest

from repro.obs import ManualClock, NullTracer, TRACE_SCHEMA_VERSION, Tracer


def traced_epoch(clock=None):
    """A small, fully deterministic span tree driven by a manual clock."""
    clock = clock or ManualClock()
    tracer = Tracer(clock=clock)
    with tracer.span("epoch", epoch=0, mode="full") as epoch:
        clock.tick(0.001)
        with tracer.span("collect", category="stage"):
            clock.tick(0.002)
            with tracer.span("shard", category="shard", tid=1, shard=0, items=10):
                clock.tick(0.003)
        with tracer.span("check", category="stage"):
            clock.tick(0.004)
        tracer.instant("verdict", input="demand", valid=True)
        epoch.annotate(cache_hit=False)
    return tracer


class TestSpanTree:
    def test_nesting_assigns_parents_implicitly(self):
        tracer = traced_epoch()
        events = {e["name"]: e for e in tracer.events()}
        assert events["epoch"]["parent"] is None
        assert events["collect"]["parent"] == events["epoch"]["id"]
        assert events["shard"]["parent"] == events["collect"]["id"]
        assert events["check"]["parent"] == events["epoch"]["id"]
        assert events["verdict"]["parent"] == events["epoch"]["id"]

    def test_manual_clock_times_are_exact(self):
        tracer = traced_epoch()
        events = {e["name"]: e for e in tracer.events()}
        assert events["epoch"]["t0"] == 0.0
        assert events["epoch"]["t1"] == pytest.approx(0.010)
        assert events["collect"]["t0"] == pytest.approx(0.001)
        assert events["collect"]["t1"] == pytest.approx(0.006)
        assert events["shard"]["t1"] == pytest.approx(0.006)
        assert events["verdict"]["t"] == pytest.approx(0.010)

    def test_annotations_and_kwargs_land_in_args(self):
        tracer = traced_epoch()
        events = {e["name"]: e for e in tracer.events()}
        assert events["epoch"]["args"] == {"epoch": 0, "mode": "full", "cache_hit": False}
        assert events["shard"]["args"] == {"shard": 0, "items": 10}
        assert events["verdict"]["args"] == {"input": "demand", "valid": True}

    def test_explicit_parent_wins_for_pool_threads(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("stage") as stage:
            parent = tracer.current_id()

            def worker():
                # A pool thread has an empty stack; the explicit parent
                # keeps the slice under its dispatching stage.
                with tracer.span("slice", parent=parent, tid=2):
                    clock.tick(0.001)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        events = {e["name"]: e for e in tracer.events()}
        assert events["slice"]["parent"] == stage.span_id
        assert events["slice"]["tid"] == 2

    def test_current_id_outside_any_span_is_none(self):
        tracer = Tracer(clock=ManualClock())
        assert tracer.current_id() is None

    def test_manual_clock_rejects_negative_tick(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.tick(-0.5)


class TestExports:
    def test_jsonl_is_byte_stable_across_runs(self):
        assert traced_epoch().to_jsonl() == traced_epoch().to_jsonl()

    def test_jsonl_meta_line_and_shape(self):
        lines = traced_epoch().to_jsonl().splitlines()
        meta = json.loads(lines[0])
        assert meta == {
            "type": "meta",
            "schema_version": TRACE_SCHEMA_VERSION,
            "clock": "monotonic",
            "wall_anchor": 0.0,  # injected clock => stable anchor
        }
        events = [json.loads(line) for line in lines[1:]]
        assert {e["type"] for e in events} == {"span", "instant"}
        for event in events:
            assert set(event) >= {"type", "id", "parent", "name", "cat", "tid", "args"}

    def test_chrome_trace_schema(self):
        payload = traced_epoch().to_chrome_trace()
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert event["pid"] == 1
            assert "span_id" in event["args"]
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            else:
                assert event["s"] == "t"
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        epoch = next(e for e in spans if e["name"] == "epoch")
        assert epoch["ts"] == 0.0
        assert epoch["dur"] == pytest.approx(10_000.0)  # microseconds

    def test_write_round_trip(self, tmp_path):
        tracer = traced_epoch()
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write_chrome_trace(str(chrome))
        tracer.write_jsonl(str(jsonl))
        assert json.loads(chrome.read_text()) == json.loads(
            json.dumps(tracer.to_chrome_trace())
        )
        assert jsonl.read_text() == tracer.to_jsonl()

    def test_real_clock_records_wall_anchor(self):
        tracer = Tracer()
        assert tracer.wall_anchor > 0.0


class TestNullTracer:
    def test_null_tracer_is_disabled_and_shares_one_span(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        span_a = tracer.span("epoch", epoch=1)
        span_b = tracer.span("collect")
        assert span_a is span_b  # the shared constant: no allocation
        with span_a as span:
            span.annotate(anything="goes")
        tracer.instant("verdict", input="demand")
        assert tracer.current_id() is None
