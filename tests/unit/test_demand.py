"""Unit tests for demand matrices, generators, and perturbations."""


import pytest

from repro.net.demand import (
    DemandError,
    DemandMatrix,
    bimodal_demand,
    drop_ingress,
    gravity_demand,
    lognormal_demand,
    scale_entries,
    throttle,
    uniform_demand,
    zero_entries,
)

NODES = ["a", "b", "c", "d"]


class TestDemandMatrix:
    def test_empty_matrix_zero(self):
        matrix = DemandMatrix(NODES)
        assert matrix.total() == 0.0

    def test_get_set(self):
        matrix = DemandMatrix(NODES)
        matrix["a", "b"] = 5.0
        assert matrix["a", "b"] == 5.0
        assert matrix["b", "a"] == 0.0

    def test_diagonal_forced_zero_on_init(self):
        values = [[1.0] * 4 for _ in range(4)]
        matrix = DemandMatrix(NODES, values)
        assert matrix["a", "a"] == 0.0
        assert matrix.total() == 12.0

    def test_set_diagonal_rejected(self):
        matrix = DemandMatrix(NODES)
        with pytest.raises(DemandError):
            matrix["a", "a"] = 1.0

    def test_negative_rejected(self):
        matrix = DemandMatrix(NODES)
        with pytest.raises(DemandError):
            matrix["a", "b"] = -1.0

    def test_negative_init_rejected(self):
        values = [[0.0] * 4 for _ in range(4)]
        values[0][1] = -3.0
        with pytest.raises(DemandError):
            DemandMatrix(NODES, values)

    def test_wrong_shape_rejected(self):
        with pytest.raises(DemandError):
            DemandMatrix(NODES, [[0.0] * 3 for _ in range(3)])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(DemandError):
            DemandMatrix(["a", "a"])

    def test_empty_nodes_rejected(self):
        with pytest.raises(DemandError):
            DemandMatrix([])

    def test_row_and_column_sums(self):
        matrix = DemandMatrix(NODES)
        matrix["a", "b"] = 1.0
        matrix["a", "c"] = 2.0
        matrix["b", "c"] = 4.0
        assert matrix.row_sum("a") == 3.0
        assert matrix.column_sum("c") == 6.0

    def test_entries_excludes_diagonal(self):
        matrix = DemandMatrix(NODES)
        assert len(list(matrix.entries())) == 12

    def test_nonzero_entries(self):
        matrix = DemandMatrix(NODES)
        matrix["a", "b"] = 1.0
        assert matrix.nonzero_entries() == [("a", "b", 1.0)]

    def test_copy_independent(self):
        matrix = DemandMatrix(NODES)
        matrix["a", "b"] = 1.0
        clone = matrix.copy()
        clone["a", "b"] = 9.0
        assert matrix["a", "b"] == 1.0

    def test_scaled(self):
        matrix = uniform_demand(NODES, 2.0)
        assert matrix.scaled(0.5).total() == pytest.approx(matrix.total() / 2)

    def test_scaled_negative_rejected(self):
        with pytest.raises(DemandError):
            uniform_demand(NODES, 1.0).scaled(-1.0)

    def test_restricted_to(self):
        matrix = uniform_demand(NODES, 1.0)
        sub = matrix.restricted_to(["a", "b"])
        assert sub.nodes == ("a", "b")
        assert sub.total() == 2.0

    def test_restricted_to_unknown(self):
        with pytest.raises(DemandError):
            uniform_demand(NODES, 1.0).restricted_to(["a", "ghost"])

    def test_equality_and_allclose(self):
        first = uniform_demand(NODES, 1.0)
        second = uniform_demand(NODES, 1.0)
        assert first == second
        assert first.allclose(second)
        second["a", "b"] = 1.0000001
        assert first != second
        assert first.allclose(second, rel_tol=1e-3)

    def test_allclose_different_nodes(self):
        assert not uniform_demand(["a", "b"], 1.0).allclose(uniform_demand(["x", "y"], 1.0))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(uniform_demand(NODES, 1.0))

    def test_to_array_is_copy(self):
        matrix = uniform_demand(NODES, 1.0)
        array = matrix.to_array()
        array[0, 1] = 99.0
        assert matrix["a", "b"] == 1.0


class TestGenerators:
    def test_gravity_total(self):
        matrix = gravity_demand(NODES, total=10.0, seed=1)
        assert matrix.total() == pytest.approx(10.0)

    def test_gravity_reproducible(self):
        assert gravity_demand(NODES, 5.0, seed=3) == gravity_demand(NODES, 5.0, seed=3)

    def test_gravity_seed_changes_matrix(self):
        assert gravity_demand(NODES, 5.0, seed=3) != gravity_demand(NODES, 5.0, seed=4)

    def test_gravity_explicit_weights(self):
        matrix = gravity_demand(NODES, 10.0, seed=1, weights={"a": 0.0})
        assert matrix.row_sum("a") == 0.0
        assert matrix.column_sum("a") == 0.0

    def test_gravity_negative_weight_rejected(self):
        with pytest.raises(DemandError):
            gravity_demand(NODES, 10.0, weights={"a": -1.0})

    def test_gravity_negative_total_rejected(self):
        with pytest.raises(DemandError):
            gravity_demand(NODES, -1.0)

    def test_gravity_bad_spread_rejected(self):
        with pytest.raises(DemandError):
            gravity_demand(NODES, 1.0, weight_spread=0.5)

    def test_lognormal_total(self):
        matrix = lognormal_demand(NODES, total=8.0, seed=2)
        assert matrix.total() == pytest.approx(8.0)

    def test_lognormal_heavy_tail(self):
        matrix = lognormal_demand(list("abcdefghij"), total=100.0, sigma=2.0, seed=0)
        rates = sorted(r for _s, _d, r in matrix.nonzero_entries())
        assert rates[-1] / rates[0] > 50  # pronounced tail

    def test_lognormal_sigma_zero_uniform(self):
        matrix = lognormal_demand(NODES, total=12.0, sigma=0.0, seed=0)
        rates = {round(r, 9) for _s, _d, r in matrix.entries()}
        assert rates == {1.0}

    def test_uniform(self):
        matrix = uniform_demand(NODES, 2.0)
        assert matrix["a", "b"] == 2.0
        assert matrix.total() == 2.0 * 12

    def test_uniform_negative_rejected(self):
        with pytest.raises(DemandError):
            uniform_demand(NODES, -2.0)

    def test_bimodal_shares(self):
        matrix = bimodal_demand(NODES, total=100.0, elephant_fraction=0.25, elephant_share=0.8, seed=1)
        assert matrix.total() == pytest.approx(100.0)
        rates = sorted((r for _s, _d, r in matrix.nonzero_entries()), reverse=True)
        elephants = rates[:3]
        assert sum(elephants) == pytest.approx(80.0)

    @pytest.mark.parametrize("kwargs", [
        {"elephant_fraction": 0.0},
        {"elephant_fraction": 1.0},
        {"elephant_share": 0.0},
        {"elephant_share": 1.0},
    ])
    def test_bimodal_bad_params(self, kwargs):
        with pytest.raises(DemandError):
            bimodal_demand(NODES, 10.0, **kwargs)


class TestPerturbations:
    def test_zero_entries_count(self):
        matrix = uniform_demand(NODES, 1.0)
        perturbed = zero_entries(matrix, 3, seed=1)
        assert len(perturbed.nonzero_entries()) == 12 - 3
        assert matrix.total() == 12.0  # original untouched

    def test_zero_entries_too_many(self):
        with pytest.raises(DemandError):
            zero_entries(uniform_demand(NODES, 1.0), 13)

    def test_zero_entries_negative(self):
        with pytest.raises(DemandError):
            zero_entries(uniform_demand(NODES, 1.0), -1)

    def test_zero_entries_reproducible(self):
        matrix = gravity_demand(NODES, 10.0, seed=0)
        assert zero_entries(matrix, 2, seed=5) == zero_entries(matrix, 2, seed=5)

    def test_scale_entries(self):
        matrix = uniform_demand(NODES, 1.0)
        perturbed = scale_entries(matrix, 2, 3.0, seed=1)
        rates = sorted(r for _s, _d, r in perturbed.nonzero_entries())
        assert rates.count(3.0) == 2

    def test_scale_entries_bad_factor(self):
        with pytest.raises(DemandError):
            scale_entries(uniform_demand(NODES, 1.0), 1, -2.0)

    def test_drop_ingress(self):
        matrix = uniform_demand(NODES, 1.0)
        perturbed = drop_ingress(matrix, "a")
        assert perturbed.row_sum("a") == 0.0
        assert perturbed.column_sum("a") == 3.0  # inbound untouched

    def test_throttle(self):
        matrix = uniform_demand(NODES, 2.0)
        assert throttle(matrix, 0.5).total() == pytest.approx(matrix.total() / 2)

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_throttle_bad_fraction(self, fraction):
        with pytest.raises(DemandError):
            throttle(uniform_demand(NODES, 1.0), fraction)
