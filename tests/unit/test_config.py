"""Unit tests for HodorConfig."""

import pytest

from repro.core.config import HodorConfig, RiskProfile


class TestDefaults:
    def test_paper_thresholds(self):
        config = HodorConfig()
        assert config.tau_h == 0.02
        assert config.tau_e == 0.02

    def test_probes_and_repair_on(self):
        config = HodorConfig()
        assert config.use_probes
        assert config.use_counters_for_status
        assert config.enable_repair

    def test_balanced_profile_default(self):
        assert HodorConfig().risk_profile == RiskProfile.BALANCED


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("tau_h", -0.01),
        ("tau_h", 1.0),
        ("tau_e", -0.5),
        ("tau_e", 1.5),
        ("rate_floor", -1.0),
        ("max_staleness_s", 0.0),
        ("risk_profile", "yolo"),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            HodorConfig(**{field: value})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            HodorConfig().tau_h = 0.5


class TestOverrides:
    def test_with_overrides(self):
        config = HodorConfig().with_overrides(tau_e=0.05, use_probes=False)
        assert config.tau_e == 0.05
        assert not config.use_probes
        assert config.tau_h == 0.02  # untouched

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            HodorConfig().with_overrides(tau_h=2.0)

    def test_risk_profiles_enumerated(self):
        assert set(RiskProfile.ALL) == {
            RiskProfile.CONSERVATIVE,
            RiskProfile.BALANCED,
            RiskProfile.PERMISSIVE,
        }
