"""Unit tests for the telemetry collector (ground truth -> snapshot)."""

import pytest

from repro.net.demand import DemandMatrix
from repro.net.simulation import NetworkSimulator
from repro.net.topology import EXTERNAL_PEER
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter, coerce_rate
from repro.telemetry.probes import LinkHealth, ProbeEngine


@pytest.fixture
def line_truth(line5):
    demand = DemandMatrix(line5.node_names())
    demand["r0", "r4"] = 6.0
    demand["r2", "r0"] = 2.0
    return NetworkSimulator(line5, demand, strategy="single").run()


class TestCounters:
    def test_tx_matches_ground_truth_without_jitter(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        reading = snapshot.counter("r0", "r1")
        assert coerce_rate(reading.tx_rate) == pytest.approx(6.0)
        assert coerce_rate(reading.rx_rate) == pytest.approx(2.0)

    def test_link_symmetry_exact_without_jitter(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        tx = coerce_rate(snapshot.counter("r0", "r1").tx_rate)
        rx = coerce_rate(snapshot.counter("r1", "r0").rx_rate)
        assert tx == pytest.approx(rx)

    def test_jitter_bounded(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.01, seed=2)).collect(line_truth)
        tx = coerce_rate(snapshot.counter("r0", "r1").tx_rate)
        assert 6.0 * 0.99 <= tx <= 6.0 * 1.01

    def test_external_interface_rates(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        ext = snapshot.counter("r0", EXTERNAL_PEER)
        assert coerce_rate(ext.rx_rate) == pytest.approx(6.0)  # ingress
        assert coerce_rate(ext.tx_rate) == pytest.approx(2.0)  # egress

    def test_down_link_reports_zero_and_down(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(
            line_truth, health={"r0~r1": LinkHealth(up=False)}
        )
        assert coerce_rate(snapshot.counter("r0", "r1").tx_rate) == 0.0
        assert snapshot.status("r0", "r1").oper_up is False
        assert snapshot.status("r1", "r0").oper_up is False

    def test_timestamp_stamped(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth, timestamp=42.0)
        assert snapshot.timestamp == 42.0
        assert snapshot.counter("r0", "r1").timestamp == 42.0

    def test_sequence_increments_per_collection(self, line5, line_truth):
        collector = TelemetryCollector(Jitter(0.0))
        first = collector.collect(line_truth)
        second = collector.collect(line_truth)
        assert (
            second.counter("r0", "r1").sequence
            == first.counter("r0", "r1").sequence + 1
        )


class TestStatusAndIntent:
    def test_all_links_up_by_default(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        for key in snapshot.link_status:
            assert snapshot.link_status[key].oper_up in (True,)

    def test_drains_reflect_intent(self, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        assert all(drain is False for drain in snapshot.drains.values())

    def test_drops_reported(self, line5, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        assert coerce_rate(snapshot.drops["r1"]) == pytest.approx(0.0)

    def test_probes_absent_without_engine(self, line_truth):
        snapshot = TelemetryCollector(Jitter(0.0)).collect(line_truth)
        assert snapshot.probes == {}

    def test_probes_present_with_engine(self, line5, line_truth):
        collector = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0))
        snapshot = collector.collect(line_truth)
        assert len(snapshot.probes) == 2 * line5.num_links

    def test_admin_down_for_drained_link(self, line5):
        from repro.net.topology import Link

        line5.replace_link(Link("r0", "r1", capacity=100.0, drained=True))
        demand = DemandMatrix(line5.node_names())
        truth = NetworkSimulator(line5, demand).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        assert snapshot.link_status[("r0", "r1")].admin_up is False
        assert snapshot.link_drains[("r0", "r1")] is True
