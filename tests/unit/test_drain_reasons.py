"""Unit tests for the Section 4.3 drain-reasons extension."""

import pytest

from repro.core.drain_reasons import (
    DrainReason,
    parse_reason,
    reason_allows_traffic,
    reason_requires_faulty_link,
)


class TestParseReason:
    def test_missing_is_unspecified(self):
        assert parse_reason(None) == DrainReason.UNSPECIFIED
        assert parse_reason("") == DrainReason.UNSPECIFIED

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("maintenance", DrainReason.MAINTENANCE),
            ("FAULTY-LINK", DrainReason.FAULTY_LINK),
            ("  incident  ", DrainReason.INCIDENT),
            ("unspecified", DrainReason.UNSPECIFIED),
        ],
    )
    def test_string_parsing(self, text, expected):
        assert parse_reason(text) == expected

    def test_enum_passthrough(self):
        assert parse_reason(DrainReason.MAINTENANCE) == DrainReason.MAINTENANCE

    def test_garbage_is_none(self):
        assert parse_reason("because-i-said-so") is None
        assert parse_reason(42) is None


class TestReasonSemantics:
    def test_traffic_allowed(self):
        assert reason_allows_traffic(DrainReason.MAINTENANCE)
        assert reason_allows_traffic(DrainReason.INCIDENT)
        assert not reason_allows_traffic(DrainReason.FAULTY_LINK)
        assert not reason_allows_traffic(DrainReason.UNSPECIFIED)

    def test_faulty_link_requirement(self):
        assert reason_requires_faulty_link(DrainReason.FAULTY_LINK)
        assert not reason_requires_faulty_link(DrainReason.MAINTENANCE)


class TestCollectionOfReasons:
    def test_reason_collected(self, abilene_topo, clean_snapshot):
        from repro.core import SignalCollector

        snapshot = clean_snapshot.copy()
        snapshot.drains["kscy"] = True
        snapshot.drain_reasons["kscy"] = "maintenance"
        state = SignalCollector().collect(snapshot)
        assert state.drain_reasons["kscy"] == DrainReason.MAINTENANCE

    def test_malformed_reason_flagged(self, clean_snapshot):
        from repro.core import SignalCollector

        snapshot = clean_snapshot.copy()
        snapshot.drains["kscy"] = True
        snapshot.drain_reasons["kscy"] = "???"
        state = SignalCollector().collect(snapshot)
        assert state.drain_reasons["kscy"] is None
        assert any(f.code == "MALFORMED_DRAIN_REASON" for f in state.findings)


class TestHardeningWithReasons:
    def _snapshot_with_drain(self, clean_snapshot, reason):
        snapshot = clean_snapshot.copy()
        snapshot.drains["kscy"] = True
        if reason is not None:
            snapshot.drain_reasons["kscy"] = reason
        return snapshot

    def test_maintenance_drain_carrying_is_info(self, abilene_topo, clean_snapshot):
        from repro.core import FindingSeverity, Hodor

        snapshot = self._snapshot_with_drain(clean_snapshot, "maintenance")
        hardened = Hodor(abilene_topo).harden(snapshot)
        findings = [f for f in hardened.findings if f.code == "DRAINED_BUT_CARRYING"]
        assert findings and findings[0].severity == FindingSeverity.INFO

    def test_unexplained_drain_carrying_is_warning(self, abilene_topo, clean_snapshot):
        from repro.core import FindingSeverity, Hodor

        snapshot = self._snapshot_with_drain(clean_snapshot, None)
        hardened = Hodor(abilene_topo).harden(snapshot)
        findings = [f for f in hardened.findings if f.code == "DRAINED_BUT_CARRYING"]
        assert findings and findings[0].severity == FindingSeverity.WARNING

    def test_reason_recorded_in_hardened_drain(self, abilene_topo, clean_snapshot):
        from repro.core import Hodor

        snapshot = self._snapshot_with_drain(clean_snapshot, "incident")
        hardened = Hodor(abilene_topo).harden(snapshot)
        assert hardened.node_drains["kscy"].reason == DrainReason.INCIDENT
        assert "reason:incident" in hardened.node_drains["kscy"].evidence


class TestReasonCorroboration:
    def test_false_faulty_link_claim_disproven(self, abilene_topo, clean_snapshot):
        """Erroneous automation claims a faulty link on a healthy
        router: the reason invariant must be violated."""
        from repro.control import DrainService
        from repro.core import DrainChecker, Hodor
        from repro.faults import FaultInjector, SpuriousDrain

        fault = SpuriousDrain(["kscy"], claimed_reason="faulty-link")
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        result = DrainChecker().check(view, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "drain/reason-supported/kscy" in violated

    def test_true_faulty_link_claim_corroborated(self, abilene_topo, abilene_demand):
        """A genuine faulty-link drain passes the reason invariant."""
        from repro.control import DrainService
        from repro.core import DrainChecker, Hodor
        from repro.faults import FaultInjector, SpuriousDrain
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry import Jitter, LinkHealth, ProbeEngine, TelemetryCollector

        target = "kscy"
        bad_link = abilene_topo.link_between(target, "ipls")
        health = {bad_link.name: LinkHealth(up=True, forwarding=False)}
        blackholes = list(bad_link.directions())
        truth = NetworkSimulator(abilene_topo, abilene_demand, blackholes=blackholes).run()
        snapshot = TelemetryCollector(
            Jitter(0.0), probe_engine=ProbeEngine(seed=0)
        ).collect(truth, health=health)
        fault = SpuriousDrain([target], claimed_reason="faulty-link")
        snapshot, _ = FaultInjector([fault]).inject(snapshot)

        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        result = DrainChecker().check(view, hardened)
        reason_results = [
            r for r in result.results if r.invariant.name == f"drain/reason-supported/{target}"
        ]
        assert reason_results and not reason_results[0].violated
