"""Unit tests for the bundled topology zoo."""

import pytest

from repro.net.routing import shortest_path
from repro.topologies import (
    abilene,
    b4,
    fig3_demand,
    fig3_network,
    geant,
    gnp_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)


class TestAbilene:
    def test_shape(self):
        topo = abilene()
        assert topo.num_nodes == 12
        assert topo.num_links == 15
        assert topo.is_connected()

    def test_oc48_spur(self):
        topo = abilene()
        assert topo.link_between("atla", "atlam").capacity == 2.5

    def test_backbone_capacity(self):
        topo = abilene()
        assert topo.link_between("chin", "nycm").capacity == 10.0

    def test_capacity_scale(self):
        topo = abilene(capacity_scale=2.0)
        assert topo.link_between("chin", "nycm").capacity == 20.0

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            abilene(capacity_scale=0.0)

    def test_sites_populated(self):
        assert abilene().node("nycm").site == "New York"


class TestB4:
    def test_shape(self):
        topo = b4()
        assert topo.num_nodes == 12
        assert topo.is_connected()

    def test_two_vendor_populations(self):
        vendors = {node.vendor for node in b4().nodes()}
        assert vendors == {"vendor-a", "vendor-b"}

    def test_transcontinental_paths_exist(self):
        topo = b4()
        path = shortest_path(topo, "us-w1", "asia-s1")
        assert path.hops >= 2


class TestGeant:
    def test_shape(self):
        topo = geant()
        assert topo.num_nodes == 22
        assert topo.is_connected()

    def test_larger_than_abilene(self):
        assert geant().num_links > abilene().num_links


class TestFig3:
    def test_structure(self):
        topo = fig3_network()
        assert topo.num_nodes == 3
        assert topo.num_links == 2

    def test_demand_reproduces_figure_numbers(self):
        demand = fig3_demand()
        assert demand.row_sum("A") == 76.0  # ext ingress at A
        assert demand.row_sum("B") == 23.0
        assert demand.column_sum("B") == 24.0
        assert demand.column_sum("C") == 75.0


class TestSynthetic:
    def test_line(self):
        topo = line_topology(4)
        assert topo.num_links == 3
        assert topo.is_connected()

    def test_line_rejects_zero(self):
        with pytest.raises(ValueError):
            line_topology(0)

    def test_ring(self):
        topo = ring_topology(5)
        assert topo.num_links == 5
        assert all(topo.degree(n) == 2 for n in topo.node_names())

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_star(self):
        topo = star_topology(6)
        assert topo.degree("hub") == 6
        assert topo.num_nodes == 7

    def test_grid(self):
        topo = grid_topology(3, 4)
        assert topo.num_nodes == 12
        assert topo.num_links == 3 * 3 + 2 * 4  # 17
        assert topo.is_connected()

    def test_grid_bad_dims(self):
        with pytest.raises(ValueError):
            grid_topology(0, 3)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_waxman_always_connected(self, seed):
        assert waxman_topology(25, seed=seed).is_connected()

    def test_waxman_reproducible(self):
        first = waxman_topology(20, seed=5)
        second = waxman_topology(20, seed=5)
        assert first == second

    def test_waxman_bad_params(self):
        with pytest.raises(ValueError):
            waxman_topology(10, alpha=0.0)
        with pytest.raises(ValueError):
            waxman_topology(10, beta=-1.0)

    @pytest.mark.parametrize("p", [0.0, 0.1, 0.9])
    def test_gnp_connected(self, p):
        assert gnp_topology(15, p=p, seed=2).is_connected()

    def test_gnp_bad_p(self):
        with pytest.raises(ValueError):
            gnp_topology(10, p=1.5)


class TestFatTree:
    def test_k4_shape(self):
        from repro.topologies import fat_tree_topology

        fabric = fat_tree_topology(k=4)
        # (k/2)^2 cores + k pods x (k/2 agg + k/2 edge) = 4 + 16 = 20
        assert fabric.num_nodes == 20
        # per pod: 4 agg-edge + 4 agg-core = 8; x4 pods = 32
        assert fabric.num_links == 32
        assert fabric.is_connected()

    def test_edge_switch_degree(self):
        from repro.topologies import fat_tree_topology

        fabric = fat_tree_topology(k=4)
        assert fabric.degree("edge0-0") == 2  # k/2 agg uplinks
        assert fabric.degree("agg0-0") == 4  # k/2 edges + k/2 cores
        assert fabric.degree("core0-0") == 4  # one per pod

    def test_path_diversity_between_pods(self):
        from repro.net.routing import ecmp_paths
        from repro.topologies import fat_tree_topology

        fabric = fat_tree_topology(k=4)
        paths = ecmp_paths(fabric, "edge0-0", "edge1-0", max_paths=8)
        assert len(paths) >= 2  # classic fat-tree multipath

    @pytest.mark.parametrize("k", [0, 3, 5])
    def test_invalid_k(self, k):
        from repro.topologies import fat_tree_topology

        with pytest.raises(ValueError):
            fat_tree_topology(k=k)

    def test_k6_scales(self):
        from repro.topologies import fat_tree_topology

        fabric = fat_tree_topology(k=6)
        assert fabric.num_nodes == 9 + 6 * 6
        assert fabric.is_connected()
