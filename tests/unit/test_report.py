"""Unit tests for validation reports."""

from repro.core.invariants import CheckResult, Invariant, InvariantResult, InvariantStatus
from repro.core.report import InputVerdict, ValidationReport
from repro.core.signals import Finding, FindingSeverity, HardenedState


def violated_result(name: str) -> InvariantResult:
    invariant = Invariant(name, "lhs == rhs", 1.0, 2.0, 0.0)
    return InvariantResult(invariant, InvariantStatus.VIOLATED, 0.5)


def make_report(**verdicts) -> ValidationReport:
    report = ValidationReport(timestamp=5.0, hardened=HardenedState())
    for name, valid in verdicts.items():
        report.verdicts[name] = InputVerdict(name, valid, 0 if valid else 1, 10)
    return report


class TestVerdicts:
    def test_all_valid(self):
        report = make_report(demand=True, topology=True, drain=True)
        assert report.all_valid
        assert report.invalid_inputs() == []

    def test_invalid_listed_sorted(self):
        report = make_report(demand=False, topology=True, drain=False)
        assert not report.all_valid
        assert report.invalid_inputs() == ["demand", "drain"]

    def test_empty_report_valid(self):
        assert make_report().all_valid


class TestDetectedAnything:
    def test_clean_report_detects_nothing(self):
        assert not make_report(demand=True).detected_anything()

    def test_violation_detected(self):
        assert make_report(demand=False).detected_anything()

    def test_warning_finding_detected(self):
        report = make_report(demand=True)
        report.hardened.findings.append(
            Finding("R1_COUNTER_MISMATCH", FindingSeverity.WARNING, "a->b", "gap")
        )
        assert report.detected_anything()

    def test_info_finding_not_detected(self):
        report = make_report(demand=True)
        report.hardened.findings.append(
            Finding("R2_REPAIRED", FindingSeverity.INFO, "a->b", "fixed")
        )
        assert not report.detected_anything()

    def test_critical_findings_filter(self):
        report = make_report()
        report.hardened.findings.append(
            Finding("X", FindingSeverity.CRITICAL, "y", "z")
        )
        assert len(report.critical_findings()) == 1


class TestRender:
    def test_render_contains_verdicts(self):
        report = make_report(demand=False, topology=True)
        report.checks["demand"] = CheckResult("demand", results=[violated_result("d/x")])
        text = report.render()
        assert "FAIL" in text and "OK" in text
        assert "d/x" in text

    def test_render_truncates_long_violation_lists(self):
        report = make_report(demand=False)
        report.checks["demand"] = CheckResult(
            "demand", results=[violated_result(f"d/{i}") for i in range(15)]
        )
        text = report.render()
        assert "... 5 more" in text

    def test_render_shows_noteworthy_findings(self):
        report = make_report(demand=True)
        report.hardened.findings.append(
            Finding("R1_COUNTER_MISMATCH", FindingSeverity.WARNING, "a->b", "gap 30%")
        )
        assert "R1_COUNTER_MISMATCH" in report.render()
