"""Unit tests for counter readings and rate coercion."""


import pytest

from repro.telemetry.counters import (
    CounterReading,
    Jitter,
    MalformedValueError,
    coerce_rate,
)


class TestCoerceRate:
    def test_float_passthrough(self):
        assert coerce_rate(3.5) == 3.5

    def test_int(self):
        assert coerce_rate(7) == 7.0

    def test_none_is_missing(self):
        assert coerce_rate(None) is None

    def test_numeric_string(self):
        assert coerce_rate("12.25") == 12.25

    def test_padded_string(self):
        assert coerce_rate("  8 ") == 8.0

    def test_garbage_string(self):
        with pytest.raises(MalformedValueError):
            coerce_rate("ERR:OVERFLOW")

    def test_negative(self):
        with pytest.raises(MalformedValueError):
            coerce_rate(-1.0)

    def test_negative_string(self):
        with pytest.raises(MalformedValueError):
            coerce_rate("-4")

    def test_nan(self):
        with pytest.raises(MalformedValueError):
            coerce_rate(float("nan"))

    def test_inf(self):
        with pytest.raises(MalformedValueError):
            coerce_rate(float("inf"))

    def test_bool_rejected(self):
        with pytest.raises(MalformedValueError):
            coerce_rate(True)

    def test_unsupported_type(self):
        with pytest.raises(MalformedValueError):
            coerce_rate([1, 2])


class TestCounterReading:
    def test_copy_is_independent(self):
        reading = CounterReading(rx_rate=1.0, tx_rate=2.0, sequence=5)
        clone = reading.copy()
        clone.rx_rate = 99.0
        assert reading.rx_rate == 1.0
        assert clone.sequence == 5


class TestJitter:
    def test_zero_jitter_identity(self):
        jitter = Jitter(0.0)
        rng = jitter.rng()
        assert jitter.apply(5.0, rng) == 5.0

    def test_bounded(self):
        jitter = Jitter(0.02, seed=1)
        rng = jitter.rng()
        for _ in range(200):
            sample = jitter.apply(100.0, rng)
            assert 98.0 <= sample <= 102.0

    def test_reproducible(self):
        first = Jitter(0.01, seed=9)
        second = Jitter(0.01, seed=9)
        rng1, rng2 = first.rng(), second.rng()
        assert [first.apply(1.0, rng1) for _ in range(10)] == [
            second.apply(1.0, rng2) for _ in range(10)
        ]

    @pytest.mark.parametrize("magnitude", [-0.1, 1.0, 2.0])
    def test_bad_magnitude(self, magnitude):
        with pytest.raises(ValueError):
            Jitter(magnitude)

    def test_zero_rate_stays_zero(self):
        jitter = Jitter(0.05, seed=2)
        assert jitter.apply(0.0, jitter.rng()) == 0.0
