"""Unit tests for the hardening step (R1 detect + R2 repair + status + drains)."""

import pytest

from repro.core.config import HodorConfig
from repro.core.pipeline import Hodor
from repro.core.signals import Confidence, DrainVerdict, FindingSeverity, LinkVerdict
from repro.faults.base import FaultInjector
from repro.faults.intent_faults import InconsistentLinkDrain, SpuriousDrain
from repro.faults.router_faults import (
    MissingTelemetry,
    UnitChangeTelemetry,
    WrongLinkStatus,
)


def harden(topo, snapshot, config=None):
    return Hodor(topo, config).harden(snapshot)


class TestR1Detection:
    def test_clean_snapshot_all_corroborated(self, abilene_topo, clean_snapshot):
        state = harden(abilene_topo, clean_snapshot)
        for value in state.edge_flows.values():
            assert value.confidence == Confidence.CORROBORATED
        assert state.unknown_edges() == []

    def test_noisy_snapshot_within_tau_h(self, abilene_topo, noisy_snapshot):
        state = harden(abilene_topo, noisy_snapshot)
        assert state.unknown_edges() == []

    def test_mismatch_flagged(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].tx_rate = 999.0
        state = harden(abilene_topo, snapshot, HodorConfig(enable_repair=False))
        assert ("atla", "hstn") in state.unknown_edges()
        assert any(f.code == "R1_COUNTER_MISMATCH" for f in state.findings)

    def test_missing_one_side_flagged(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector(
            [MissingTelemetry(interfaces=[("atla", "hstn")])]
        ).inject(clean_snapshot)
        state = harden(abilene_topo, snapshot, HodorConfig(enable_repair=False))
        # that interface's tx measured a->h; its rx measured h->a
        assert ("atla", "hstn") in state.unknown_edges()
        assert ("hstn", "atla") in state.unknown_edges()
        assert any(f.code == "R1_ONE_MISSING" for f in state.findings)

    def test_corroborated_value_is_average(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        tx = snapshot.counters[("atla", "hstn")].tx_rate
        snapshot.counters[("hstn", "atla")].rx_rate = tx * 1.01  # within tau_h
        state = harden(abilene_topo, snapshot)
        assert state.edge_flows[("atla", "hstn")].value == pytest.approx(tx * 1.005)

    def test_zero_traffic_pairs_agree(self, abilene_topo):
        from repro.net.demand import DemandMatrix
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter

        truth = NetworkSimulator(abilene_topo, DemandMatrix(abilene_topo.node_names())).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        state = harden(abilene_topo, snapshot)
        assert state.unknown_edges() == []


class TestR2Repair:
    def test_single_corruption_repaired(self, abilene_topo, clean_snapshot, abilene_truth):
        snapshot = clean_snapshot.copy()
        true_value = abilene_truth.flow_on("atla", "hstn")
        snapshot.counters[("atla", "hstn")].tx_rate = true_value * 4
        state = harden(abilene_topo, snapshot)
        repaired = state.edge_flows[("atla", "hstn")]
        assert repaired.confidence == Confidence.REPAIRED
        assert repaired.value == pytest.approx(true_value, rel=1e-6)

    def test_culprit_named(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].tx_rate = 999.0
        state = harden(abilene_topo, snapshot)
        culprits = [f for f in state.findings if f.code == "R2_CULPRIT"]
        assert len(culprits) == 1
        assert "tx@atla->hstn" in culprits[0].subject

    def test_repair_disabled_leaves_unknown(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].tx_rate = 999.0
        state = harden(abilene_topo, snapshot, HodorConfig(enable_repair=False))
        assert not state.edge_flows[("atla", "hstn")].known

    def test_missing_external_ingress_repaired(
        self, abilene_topo, clean_snapshot, abilene_truth
    ):
        from repro.net.topology import EXTERNAL_PEER

        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", EXTERNAL_PEER)].rx_rate = None
        state = harden(abilene_topo, snapshot)
        assert state.ext_in["atla"].confidence == Confidence.REPAIRED
        assert state.ext_in["atla"].value == pytest.approx(
            abilene_truth.ext_in["atla"], rel=1e-6
        )

    def test_whole_external_reading_missing_is_underdetermined(
        self, abilene_topo, clean_snapshot
    ):
        # ext_in and ext_out share one conservation equation: with both
        # gone, only their difference is determined -- neither may be
        # "repaired" with a guess.
        from repro.net.topology import EXTERNAL_PEER

        snapshot = clean_snapshot.copy()
        del snapshot.counters[("atla", EXTERNAL_PEER)]
        state = harden(abilene_topo, snapshot)
        assert not state.ext_in["atla"].known
        assert not state.ext_out["atla"].known
        assert any(f.code == "MISSING_EXTERNAL_COUNTERS" for f in state.findings)
        assert any(f.code == "R2_UNDERDETERMINED" for f in state.findings)

    def test_widespread_corruption_withholds_repairs(self, abilene_topo, clean_snapshot):
        # Corrupt many counters on *both* sides so knowns themselves
        # violate conservation -> repairs must be withheld.
        snapshot, _ = FaultInjector(
            [UnitChangeTelemetry(count=10, factor=7.0)], seed=3
        ).inject(clean_snapshot)
        state = harden(abilene_topo, snapshot)
        critical = [f.code for f in state.findings if f.severity == FindingSeverity.CRITICAL]
        if "R2_INCONSISTENT" in critical:
            # Knowns already violate conservation: no repair may be trusted.
            assert state.repaired_edges() == []
        else:
            # The system stayed solvable: whatever was repaired must be
            # accurate, and nothing silently wrong may appear.
            for edge in state.repaired_edges():
                true_rate = self._truth_rate(abilene_topo, edge)
                assert state.edge_flows[edge].value == pytest.approx(
                    true_rate, rel=0.02, abs=1e-6
                )

    @staticmethod
    def _truth_rate(topo, edge):
        from repro.net.demand import gravity_demand
        from repro.net.simulation import NetworkSimulator

        demand = gravity_demand(
            topo.node_names(), total=30.0, seed=7, weights={"atlam": 0.15}
        )
        truth = NetworkSimulator(topo, demand).run()
        return truth.flow_on(*edge)


class TestStatusHardening:
    def test_clean_links_up(self, abilene_topo, clean_snapshot):
        state = harden(abilene_topo, clean_snapshot)
        assert all(s.verdict == LinkVerdict.UP for s in state.links.values())

    def test_status_conflict_flagged(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector(
            [WrongLinkStatus([("atla", "hstn")], report_up=False)]
        ).inject(clean_snapshot)
        state = harden(abilene_topo, snapshot)
        assert any(f.code == "R1_STATUS_MISMATCH" for f in state.findings)
        # counters + probes say traffic flows -> balanced resolves up
        assert state.links["atla~hstn"].verdict == LinkVerdict.UP

    def test_semantic_failure_critical(self, abilene_topo, abilene_demand):
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter
        from repro.telemetry.probes import LinkHealth, ProbeEngine

        health = {"atla~hstn": LinkHealth(up=True, forwarding=False)}
        blackholes = [("atla", "hstn"), ("hstn", "atla")]
        truth = NetworkSimulator(abilene_topo, abilene_demand, blackholes=blackholes).run()
        collector = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0))
        snapshot = collector.collect(truth, health=health)
        state = harden(abilene_topo, snapshot)
        assert any(f.code == "SEMANTIC_LINK_FAILURE" for f in state.findings)
        assert not state.links["atla~hstn"].usable


class TestDrainHardening:
    def test_clean_drains_serving(self, abilene_topo, clean_snapshot):
        state = harden(abilene_topo, clean_snapshot)
        assert all(
            drain.verdict == DrainVerdict.SERVING for drain in state.node_drains.values()
        )

    def test_drained_but_carrying_warned(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector([SpuriousDrain(["kscy"])]).inject(clean_snapshot)
        state = harden(abilene_topo, snapshot)
        assert state.node_drains["kscy"].verdict == DrainVerdict.DRAINED
        assert state.node_drains["kscy"].carrying_traffic
        warnings = [f for f in state.findings if f.code == "DRAINED_BUT_CARRYING"]
        assert warnings and warnings[0].severity == FindingSeverity.WARNING

    def test_missing_drain_conflicted(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        del snapshot.drains["kscy"]
        state = harden(abilene_topo, snapshot)
        assert state.node_drains["kscy"].verdict == DrainVerdict.CONFLICTED
        assert any(f.code == "DRAIN_MISSING" for f in state.findings)

    def test_link_drain_symmetry_violation(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector(
            [InconsistentLinkDrain([("atla", "hstn")])]
        ).inject(clean_snapshot)
        state = harden(abilene_topo, snapshot)
        assert state.link_drains["atla~hstn"].verdict == DrainVerdict.CONFLICTED
        assert any(f.code == "R1_DRAIN_MISMATCH" for f in state.findings)

    def test_agreed_link_drain(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_drains[("atla", "hstn")] = True
        snapshot.link_drains[("hstn", "atla")] = True
        state = harden(abilene_topo, snapshot)
        assert state.link_drains["atla~hstn"].verdict == DrainVerdict.DRAINED
