"""Unit tests for router-level self-correction (Section 6 direction)."""

import pytest

from repro.faults.base import FaultInjector
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    MalformedTelemetry,
    ZeroedDuplicateTelemetry,
)
from repro.telemetry.counters import coerce_rate
from repro.telemetry.self_correct import peer_exchange_correct


class TestCleanSnapshot:
    def test_no_corrections_on_clean_data(self, abilene_topo, clean_snapshot):
        corrected, corrections = peer_exchange_correct(clean_snapshot, abilene_topo)
        assert corrections == []

    def test_jitter_within_tau_untouched(self, abilene_topo, noisy_snapshot):
        _corrected, corrections = peer_exchange_correct(noisy_snapshot, abilene_topo)
        assert corrections == []

    def test_input_not_mutated(self, abilene_topo, clean_snapshot):
        before = clean_snapshot.counter("atla", "hstn").rx_rate
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].rx_rate = 0.0
        peer_exchange_correct(snapshot, abilene_topo)
        assert snapshot.counters[("atla", "hstn")].rx_rate == 0.0
        assert clean_snapshot.counter("atla", "hstn").rx_rate == before


class TestCorrection:
    def test_zeroed_rx_corrected_from_peer(self, abilene_topo, clean_snapshot, abilene_truth):
        fault = ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        corrected, corrections = peer_exchange_correct(snapshot, abilene_topo)

        assert len(corrections) == 1
        fix = corrections[0]
        assert (fix.node, fix.peer, fix.side) == ("atla", "hstn", "rx")
        assert fix.old_value == 0.0
        restored = coerce_rate(corrected.counter("atla", "hstn").rx_rate)
        assert restored == pytest.approx(abilene_truth.flow_on("hstn", "atla"), rel=1e-9)

    def test_missing_value_filled_from_peer(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].tx_rate = None
        corrected, corrections = peer_exchange_correct(snapshot, abilene_topo)
        assert len(corrections) == 1
        assert corrections[0].old_value is None
        assert coerce_rate(corrected.counter("atla", "hstn").tx_rate) is not None

    def test_malformed_both_sides_left_alone(self, abilene_topo, clean_snapshot):
        fault = MalformedTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        # rx at atla side malformed AND tx malformed; peer readings fine:
        # the holes get filled from the peer copies.
        corrected, corrections = peer_exchange_correct(snapshot, abilene_topo)
        sides = {(c.node, c.side) for c in corrections}
        assert ("atla", "rx") in sides or ("atla", "tx") in sides

    def test_never_guesses_when_unlocalizable(self, abilene_topo, clean_snapshot):
        """Symmetric corruption (both routers scale everything) leaves
        both local balances intact -- self-correction must do nothing
        rather than 'correct' toward the wrong value."""
        fault = CorrelatedCounterFault(["atla", "hstn"], factor=0.5)
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        _corrected, corrections = peer_exchange_correct(snapshot, abilene_topo)
        tampered = {("atla", "hstn"), ("hstn", "atla")}
        assert all((c.node, c.peer) not in tampered for c in corrections)


class TestPreventionPipeline:
    def test_zeroed_telemetry_outage_prevented_at_source(self):
        """With self-correction in the telemetry path, the S01 zeroed
        counters never reach the control plane: the counter-liveness
        topology service sees healthy counters and keeps the links."""
        from repro.control.topo_service import TopologyService
        from repro.scenarios import scenario_by_id

        world = scenario_by_id("S01").build(seed=1)
        truth = world.steady_state()
        snapshot = world.collector.collect(truth, health=world.link_health)
        faulted, _ = world.injector.inject(snapshot)

        buggy_service = TopologyService(world.topology, infer_faulty_from_counters=True)
        assert buggy_service.build(faulted).num_links < world.topology.num_links

        corrected, corrections = peer_exchange_correct(faulted, world.topology)
        assert corrections
        assert buggy_service.build(corrected).num_links == world.topology.num_links
