"""Unit tests for the SDN controller."""

import pytest

from repro.control.controller import SdnController
from repro.control.inputs import ControllerInputs, DrainView
from repro.net.demand import DemandMatrix
from repro.topologies.synthetic import ring_topology


def make_inputs(topo, demand=None, drains=None):
    return ControllerInputs(
        topology=topo,
        demand=demand or DemandMatrix(topo.node_names()),
        drains=drains or DrainView(),
    )


class TestServingTopology:
    def test_no_drains_full_graph(self):
        topo = ring_topology(4)
        serving = SdnController().serving_topology(make_inputs(topo))
        assert serving.num_nodes == 4
        assert serving.num_links == 4

    def test_drained_node_removed(self):
        topo = ring_topology(4)
        drains = DrainView(nodes={"r0": True})
        serving = SdnController().serving_topology(make_inputs(topo, drains=drains))
        assert not serving.has_node("r0")
        assert serving.num_links == 2  # r0's two links gone

    def test_drained_link_removed(self):
        topo = ring_topology(4)
        drains = DrainView(links={"r0~r1": True})
        serving = SdnController().serving_topology(make_inputs(topo, drains=drains))
        assert serving.link_between("r0", "r1") is None
        assert serving.num_links == 3


class TestProgram:
    def test_routes_around_drained_node(self):
        topo = ring_topology(4)
        demand = DemandMatrix(topo.node_names())
        demand["r1", "r3"] = 2.0
        drains = DrainView(nodes={"r0": True})
        assignment = SdnController().program(make_inputs(topo, demand, drains))
        path = assignment.rules[("r1", "r3")][0].path
        assert "r0" not in path.nodes

    def test_demand_to_drained_node_unrouted(self):
        topo = ring_topology(4)
        demand = DemandMatrix(topo.node_names())
        demand["r1", "r0"] = 2.0
        drains = DrainView(nodes={"r0": True})
        assignment = SdnController().program(make_inputs(topo, demand, drains))
        assert assignment.unrouted == {("r1", "r0"): 2.0}

    def test_invalid_k_paths(self):
        with pytest.raises(ValueError):
            SdnController(k_paths=0)


class TestDrainView:
    def test_helpers(self):
        view = DrainView(nodes={"a": True, "b": False}, links={"a~b": True})
        assert view.drained_nodes() == ["a"]
        assert view.drained_links() == ["a~b"]
        assert view.is_node_drained("a")
        assert not view.is_node_drained("missing")
        assert view.is_link_drained("a~b")
        assert not view.is_link_drained("x~y")
