"""Unit tests for aggregation-bug configurations (Section 2.2)."""

import pytest

from repro.faults.aggregation_faults import (
    IgnoredDrain,
    LivenessMisreport,
    PartialTopologyStitch,
    StaleTopology,
)
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)


class TestTopologyBugs:
    def test_partial_stitch_freezes_node_set(self):
        bug = PartialTopologyStitch(["a", "b"])
        assert bug.missing_nodes == frozenset({"a", "b"})

    def test_liveness_misreport_defaults_down(self):
        bug = LivenessMisreport(["x~y"])
        assert bug.report_up is False
        assert bug.links == frozenset({"x~y"})

    def test_ignored_drain(self):
        assert IgnoredDrain(["kscy"]).nodes == frozenset({"kscy"})

    def test_stale_topology_is_marker(self):
        assert "stale" in StaleTopology().description


class TestDemandBugs:
    def test_partial_defaults(self):
        bug = PartialDemandAggregation(drop_fraction=0.3)
        assert bug.drop_fraction == 0.3
        assert bug.drop_pairs == frozenset()

    def test_partial_explicit_pairs(self):
        bug = PartialDemandAggregation(drop_pairs=[("a", "b")])
        assert ("a", "b") in bug.drop_pairs

    @pytest.mark.parametrize("fraction", [-0.1, 1.5])
    def test_partial_bad_fraction(self, fraction):
        with pytest.raises(ValueError):
            PartialDemandAggregation(drop_fraction=fraction)

    def test_double_count_validation(self):
        with pytest.raises(ValueError):
            DoubleCountedDemand(fraction=2.0)
        with pytest.raises(ValueError):
            DoubleCountedDemand(multiplier=-1.0)

    @pytest.mark.parametrize("fraction", [-0.5, 1.01])
    def test_throttle_validation(self, fraction):
        with pytest.raises(ValueError):
            ThrottledDemandMismatch(admitted_fraction=fraction)

    def test_bugs_hashable(self):
        # Frozen dataclasses must be usable in sets (scenario configs).
        bugs = {
            PartialTopologyStitch(["a"]),
            LivenessMisreport(["x~y"]),
            IgnoredDrain(["b"]),
            ThrottledDemandMismatch(0.5),
        }
        assert len(bugs) == 4
