"""Unit tests for JSON serialization of validation artifacts."""

import json

import pytest

from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.control.metrics import assess_health
from repro.core import (
    Hodor,
    finding_to_dict,
    hardened_state_to_dict,
    health_report_to_dict,
    validation_report_to_dict,
)
from repro.net.demand import zero_entries
from repro.net.simulation import NetworkSimulator


@pytest.fixture
def report(abilene_topo, clean_snapshot, abilene_demand):
    plane = ControlPlane(abilene_topo)
    inputs = plane.compute_inputs(clean_snapshot, records_from_matrix(abilene_demand, seed=1))
    return Hodor(abilene_topo).validate(clean_snapshot, inputs)


@pytest.fixture
def failing_report(abilene_topo, clean_snapshot, abilene_demand):
    bad = zero_entries(abilene_demand, 3, seed=4)
    return Hodor(abilene_topo).validate_demand(clean_snapshot, bad)


class TestRoundTrip:
    def test_clean_report_json_safe(self, report):
        payload = validation_report_to_dict(report)
        encoded = json.dumps(payload)  # must not raise
        decoded = json.loads(encoded)
        assert decoded["all_valid"] is True
        assert decoded["invalid_inputs"] == []
        assert set(decoded["verdicts"]) == {"demand", "topology", "drain"}

    def test_failing_report_carries_violations(self, failing_report):
        payload = validation_report_to_dict(failing_report)
        assert payload["all_valid"] is False
        assert "demand" in payload["invalid_inputs"]
        violations = payload["checks"]["demand"]["violations"]
        assert violations
        first = violations[0]
        assert first["status"] == "violated"
        assert first["name"].startswith("demand/")
        assert isinstance(first["error"], float)

    def test_hardening_payload(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].tx_rate = 999.0
        hardened = Hodor(abilene_topo).harden(snapshot)
        payload = hardened_state_to_dict(hardened)
        json.dumps(payload)
        codes = {f["code"] for f in payload["findings"]}
        assert "R1_COUNTER_MISMATCH" in codes
        assert payload["num_repaired_edges"] == 1
        assert payload["links"]["atla~hstn"]["usable"] is True

    def test_values_opt_in(self, abilene_topo, clean_snapshot):
        hardened = Hodor(abilene_topo).harden(clean_snapshot)
        thin = hardened_state_to_dict(hardened)
        fat = hardened_state_to_dict(hardened, include_values=True)
        assert "edge_flows" not in thin
        assert "atla->hstn" in fat["edge_flows"]
        assert fat["edge_flows"]["atla->hstn"]["confidence"] == "corroborated"

    def test_finding_dict_fields(self, failing_report):
        for finding in failing_report.hardening_findings:
            payload = finding_to_dict(finding)
            assert set(payload) == {"code", "severity", "subject", "detail", "redundancy"}

    def test_health_report(self, abilene_topo, abilene_demand):
        truth = NetworkSimulator(abilene_topo, abilene_demand).run()
        payload = health_report_to_dict(assess_health(truth, abilene_demand))
        json.dumps(payload)
        assert payload["severity"] == "ok"
        assert 0 <= payload["mlu"] <= 1.5
