"""Unit tests for the topology model."""

import pytest

from repro.net.topology import (
    EXTERNAL_PEER,
    Interface,
    Link,
    Node,
    Topology,
    TopologyError,
)


def build_triangle() -> Topology:
    topo = Topology("tri")
    for name in ("a", "b", "c"):
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b", capacity=10.0))
    topo.add_link(Link("b", "c", capacity=20.0))
    topo.add_link(Link("c", "a", capacity=30.0))
    return topo


class TestNode:
    def test_defaults(self):
        node = Node("r1")
        assert node.site == ""
        assert not node.drained
        assert node.vendor == "vendor-a"

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            Node("")

    def test_frozen(self):
        node = Node("r1")
        with pytest.raises(AttributeError):
            node.drained = True


class TestLink:
    def test_canonical_name_order_independent(self):
        assert Link("x", "y").name == Link("y", "x").name == "x~y"

    def test_other_endpoint(self):
        link = Link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(TopologyError):
            Link("a", "b").other("c")

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("a", "a")

    @pytest.mark.parametrize("capacity", [0.0, -1.0, float("inf")])
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(TopologyError):
            Link("a", "b", capacity=capacity)

    def test_directions(self):
        assert Link("a", "b").directions() == (("a", "b"), ("b", "a"))


class TestInterface:
    def test_wan_interface(self):
        iface = Interface("a", "b")
        assert not iface.is_external
        assert iface.name == "a->b"

    def test_external_interface(self):
        iface = Interface("a", EXTERNAL_PEER)
        assert iface.is_external
        assert iface.name == "a:ext"


class TestTopologyConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("a"))
        with pytest.raises(TopologyError):
            topo.add_node(Node("a"))

    def test_reserved_name_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_node(Node(EXTERNAL_PEER))

    def test_link_requires_existing_nodes(self):
        topo = Topology()
        topo.add_node(Node("a"))
        with pytest.raises(TopologyError):
            topo.add_link(Link("a", "ghost"))

    def test_duplicate_link_rejected(self):
        topo = build_triangle()
        with pytest.raises(TopologyError):
            topo.add_link(Link("b", "a"))

    def test_remove_link(self):
        topo = build_triangle()
        removed = topo.remove_link("a", "b")
        assert removed.name == "a~b"
        assert topo.link_between("a", "b") is None
        assert topo.num_links == 2

    def test_remove_missing_link_raises(self):
        topo = build_triangle()
        topo.remove_link("a", "b")
        with pytest.raises(TopologyError):
            topo.remove_link("a", "b")

    def test_replace_node_flips_drain(self):
        topo = build_triangle()
        topo.replace_node(Node("a", drained=True))
        assert topo.node("a").drained

    def test_replace_unknown_node_raises(self):
        topo = build_triangle()
        with pytest.raises(TopologyError):
            topo.replace_node(Node("ghost"))

    def test_replace_link(self):
        topo = build_triangle()
        topo.replace_link(Link("a", "b", capacity=99.0, drained=True))
        link = topo.link_between("a", "b")
        assert link.capacity == 99.0
        assert link.drained


class TestTopologyQueries:
    def test_neighbors(self):
        topo = build_triangle()
        assert sorted(topo.neighbors("a")) == ["b", "c"]

    def test_neighbors_unknown_node(self):
        with pytest.raises(TopologyError):
            build_triangle().neighbors("zz")

    def test_degree(self):
        assert build_triangle().degree("b") == 2

    def test_directed_edges_two_per_link(self):
        topo = build_triangle()
        edges = list(topo.directed_edges())
        assert len(edges) == 6
        assert ("a", "b") in edges and ("b", "a") in edges

    def test_directed_edges_deterministic(self):
        topo = build_triangle()
        assert list(topo.directed_edges()) == list(topo.directed_edges())

    def test_interfaces_include_external(self):
        topo = build_triangle()
        interfaces = list(topo.interfaces())
        external = [i for i in interfaces if i.is_external]
        assert len(external) == 3
        assert len(interfaces) == 9

    def test_interfaces_without_external(self):
        topo = build_triangle()
        assert all(not i.is_external for i in topo.interfaces(include_external=False))

    def test_total_capacity_counts_both_directions(self):
        assert build_triangle().total_capacity() == 2 * (10 + 20 + 30)

    def test_contains(self):
        topo = build_triangle()
        assert "a" in topo
        assert "zz" not in topo

    def test_node_lookup_unknown_raises(self):
        with pytest.raises(TopologyError):
            build_triangle().node("zz")

    def test_link_lookup_unknown_raises(self):
        with pytest.raises(TopologyError):
            build_triangle().link("zz~yy")


class TestConnectivity:
    def test_triangle_connected(self):
        assert build_triangle().is_connected()

    def test_disconnected(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        assert not topo.is_connected()

    def test_empty_topology_connected(self):
        assert Topology().is_connected()


class TestDerivedViews:
    def test_copy_is_independent(self):
        topo = build_triangle()
        duplicate = topo.copy()
        duplicate.remove_link("a", "b")
        assert topo.link_between("a", "b") is not None

    def test_copy_equal(self):
        topo = build_triangle()
        assert topo.copy() == topo

    def test_without_drained_removes_node_and_links(self):
        topo = build_triangle()
        topo.replace_node(Node("a", drained=True))
        serving = topo.without_drained()
        assert not serving.has_node("a")
        assert serving.num_links == 1  # only b~c remains

    def test_without_drained_removes_drained_link(self):
        topo = build_triangle()
        topo.replace_link(Link("a", "b", drained=True))
        serving = topo.without_drained()
        assert serving.link_between("a", "b") is None
        assert serving.num_links == 2

    def test_to_networkx(self):
        graph = build_triangle().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert graph["a"]["b"]["capacity"] == 10.0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(build_triangle())

    def test_eq_other_type(self):
        assert build_triangle() != 42
