"""Unit tests for the ground-truth simulator and its fluid drop model."""

import pytest

from repro.net.demand import DemandMatrix
from repro.net.simulation import NetworkSimulator, SimulationError
from repro.net.topology import Link, Node, Topology


def two_hop(capacity: float = 10.0) -> Topology:
    topo = Topology("twohop")
    for name in "abc":
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b", capacity=capacity))
    topo.add_link(Link("b", "c", capacity=capacity))
    return topo


class TestBasicAccounting:
    def test_edge_flow_matches_demand(self):
        topo = two_hop()
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 4.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.flow_on("a", "b") == pytest.approx(4.0)
        assert truth.flow_on("b", "c") == pytest.approx(4.0)
        assert truth.flow_on("b", "a") == 0.0

    def test_external_rates(self):
        topo = two_hop()
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 4.0
        demand["b", "c"] = 1.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.ext_in["a"] == pytest.approx(4.0)
        assert truth.ext_in["b"] == pytest.approx(1.0)
        assert truth.ext_out["c"] == pytest.approx(5.0)

    def test_conservation_holds_everywhere(self, abilene_truth, abilene_topo):
        for node in abilene_topo.node_names():
            assert abilene_truth.conservation_residual(node) == pytest.approx(0.0, abs=1e-9)

    def test_delivered_equals_demand_when_unsaturated(self):
        topo = two_hop()
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 4.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.delivered[("a", "c")] == pytest.approx(4.0)
        assert truth.loss_rate() == 0.0

    def test_utilization_and_mlu(self):
        topo = two_hop(capacity=8.0)
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "b"] = 4.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.utilization("a", "b") == pytest.approx(0.5)
        assert truth.max_link_utilization() == pytest.approx(0.5)

    def test_utilization_unknown_edge(self):
        topo = two_hop()
        truth = NetworkSimulator(topo, DemandMatrix(["a", "b", "c"])).run()
        with pytest.raises(Exception):
            truth.utilization("a", "c")


class TestDrops:
    def test_oversubscribed_link_drops(self):
        topo = two_hop(capacity=3.0)
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "b"] = 5.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.flow_on("a", "b") == pytest.approx(3.0)
        assert truth.dropped["a"] == pytest.approx(2.0)
        assert truth.loss_rate() == pytest.approx(2.0 / 5.0)

    def test_cascade_drops_attributed_upstream(self):
        # a->b has capacity 3, b->c has 10: the drop happens at a only.
        topo = Topology("cascade")
        for name in "abc":
            topo.add_node(Node(name))
        topo.add_link(Link("a", "b", capacity=3.0))
        topo.add_link(Link("b", "c", capacity=10.0))
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 5.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.dropped["a"] == pytest.approx(2.0)
        assert truth.dropped["b"] == pytest.approx(0.0)
        assert truth.flow_on("b", "c") == pytest.approx(3.0)

    def test_conservation_holds_with_drops(self):
        topo = two_hop(capacity=3.0)
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 5.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        for node in "abc":
            assert truth.conservation_residual(node) == pytest.approx(0.0, abs=1e-9)

    def test_proportional_sharing_on_contention(self):
        # Two flows share a 4-unit link; each offered 4 -> each gets 2.
        topo = Topology("contend")
        for name in "abcd":
            topo.add_node(Node(name))
        topo.add_link(Link("a", "b", capacity=100.0))
        topo.add_link(Link("d", "b", capacity=100.0))
        topo.add_link(Link("b", "c", capacity=4.0))
        demand = DemandMatrix(["a", "b", "c", "d"])
        demand["a", "c"] = 4.0
        demand["d", "c"] = 4.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert truth.delivered[("a", "c")] == pytest.approx(2.0)
        assert truth.delivered[("d", "c")] == pytest.approx(2.0)

    def test_congested_edges_reported(self):
        topo = two_hop(capacity=3.0)
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "b"] = 5.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        assert ("a", "b") in truth.congested_edges()


class TestBlackholes:
    def test_blackhole_swallows_traffic(self):
        topo = two_hop()
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 4.0
        truth = NetworkSimulator(
            topo, demand, strategy="single", blackholes=[("b", "c")]
        ).run()
        assert truth.flow_on("a", "b") == pytest.approx(4.0)
        assert truth.flow_on("b", "c") == 0.0
        assert truth.dropped["b"] == pytest.approx(4.0)
        assert truth.delivered[("a", "c")] == 0.0

    def test_blackhole_conservation(self):
        topo = two_hop()
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 4.0
        truth = NetworkSimulator(
            topo, demand, strategy="single", blackholes=[("b", "c")]
        ).run()
        for node in "abc":
            assert truth.conservation_residual(node) == pytest.approx(0.0, abs=1e-9)

    def test_blackhole_on_missing_edge_rejected(self):
        topo = two_hop()
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, DemandMatrix(["a", "b", "c"]), blackholes=[("a", "c")])


class TestEvaluateExternalAssignment:
    def test_flow_over_missing_edge_rejected(self, line5):
        from repro.net.flows import FlowAssignment, FlowRule
        from repro.net.routing import Path

        assignment = FlowAssignment()
        assignment.rules[("r0", "r2")] = [FlowRule(Path(("r0", "r2")), 1.0)]
        simulator = NetworkSimulator(line5, DemandMatrix(line5.node_names()))
        with pytest.raises(SimulationError):
            simulator.evaluate(assignment)

    def test_zero_demand_network_idle(self, line5):
        truth = NetworkSimulator(line5, DemandMatrix(line5.node_names())).run()
        assert truth.max_link_utilization() == 0.0
        assert truth.total_delivered() == 0.0
        assert truth.loss_rate() == 0.0

    def test_drained_node_carries_nothing(self):
        topo = two_hop()
        topo.replace_node(Node("b", drained=True))
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 4.0
        truth = NetworkSimulator(topo, demand).run()
        assert truth.flow_on("a", "b") == 0.0
        assert truth.assignment.unrouted == {("a", "c"): 4.0}
