"""Unit tests for the active-probe engine (R4)."""

import pytest

from repro.telemetry.probes import LinkHealth, ProbeEngine


class TestLinkHealth:
    def test_defaults_healthy(self):
        assert LinkHealth().carries_traffic

    def test_down_cannot_carry(self):
        assert not LinkHealth(up=False).carries_traffic

    def test_blackhole_cannot_carry(self):
        assert not LinkHealth(up=True, forwarding=False).carries_traffic


class TestProbeEngine:
    def test_probes_every_directed_adjacency(self, line5):
        results = ProbeEngine().run(line5, {})
        assert len(results) == 2 * line5.num_links
        assert all(result.ok for result in results.values())

    def test_down_link_fails_both_directions(self, line5):
        results = ProbeEngine().run(line5, {"r0~r1": LinkHealth(up=False)})
        assert not results[("r0", "r1")].ok
        assert not results[("r1", "r0")].ok
        assert results[("r1", "r2")].ok

    def test_blackhole_fails_probe(self, line5):
        results = ProbeEngine().run(
            line5, {"r1~r2": LinkHealth(up=True, forwarding=False)}
        )
        assert not results[("r1", "r2")].ok

    def test_failed_probe_has_no_rtt(self, line5):
        results = ProbeEngine().run(line5, {"r0~r1": LinkHealth(up=False)})
        assert results[("r0", "r1")].rtt_ms is None

    def test_successful_probe_rtt_near_base(self, line5):
        results = ProbeEngine(base_rtt_ms=10.0, seed=4).run(line5, {})
        for result in results.values():
            assert 8.0 <= result.rtt_ms <= 12.0

    def test_loss_probability_drops_some(self, line5):
        results = ProbeEngine(loss_probability=0.5, seed=0).run(line5, {})
        outcomes = [result.ok for result in results.values()]
        assert any(outcomes) and not all(outcomes)

    def test_reproducible(self, line5):
        first = ProbeEngine(loss_probability=0.3, seed=7).run(line5, {})
        second = ProbeEngine(loss_probability=0.3, seed=7).run(line5, {})
        assert [r.ok for r in first.values()] == [r.ok for r in second.values()]

    @pytest.mark.parametrize("loss", [-0.1, 1.0])
    def test_bad_loss_probability(self, loss):
        with pytest.raises(ValueError):
            ProbeEngine(loss_probability=loss)
