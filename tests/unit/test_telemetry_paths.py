"""Unit tests for OpenConfig-style signal paths."""

import pytest

from repro.telemetry.paths import SIGNAL_REGISTRY, PathError, SignalKind, SignalPath


class TestSignalPath:
    @pytest.mark.parametrize(
        "kind",
        [
            SignalKind.RX_RATE,
            SignalKind.TX_RATE,
            SignalKind.OPER_STATUS,
            SignalKind.ADMIN_STATUS,
            SignalKind.LINK_DRAIN,
            SignalKind.PROBE,
        ],
    )
    def test_interface_scoped_roundtrip(self, kind):
        path = SignalPath(kind, "atla", "hstn")
        assert SignalPath.parse(path.render()) == path

    @pytest.mark.parametrize(
        "kind", [SignalKind.DRAIN, SignalKind.DRAIN_REASON, SignalKind.NODE_DROPS]
    )
    def test_node_scoped_roundtrip(self, kind):
        path = SignalPath(kind, "atla")
        assert SignalPath.parse(path.render()) == path

    def test_node_scoped_rejects_peer(self):
        with pytest.raises(PathError):
            SignalPath(SignalKind.DRAIN, "atla", "hstn")

    def test_interface_scoped_requires_peer(self):
        with pytest.raises(PathError):
            SignalPath(SignalKind.RX_RATE, "atla")

    def test_parse_garbage(self):
        with pytest.raises(PathError):
            SignalPath.parse("/this/is/not/a/signal")

    def test_parse_empty(self):
        with pytest.raises(PathError):
            SignalPath.parse("")

    def test_str_is_render(self):
        path = SignalPath(SignalKind.RX_RATE, "a", "b")
        assert str(path) == path.render()

    def test_render_contains_node_and_peer(self):
        rendered = SignalPath(SignalKind.TX_RATE, "nodeX", "peerY").render()
        assert "nodeX" in rendered and "peerY" in rendered

    def test_registry_covers_every_kind(self):
        assert set(SIGNAL_REGISTRY) == set(SignalKind)

    def test_registry_descriptions_nonempty(self):
        for _template, description in SIGNAL_REGISTRY.values():
            assert description

    def test_distinct_paths_for_distinct_kinds(self):
        node_only = (SignalKind.DRAIN, SignalKind.DRAIN_REASON, SignalKind.NODE_DROPS)
        rendered = {
            SignalPath(kind, "a", "b").render()
            for kind in SignalKind
            if kind not in node_only
        }
        assert len(rendered) == len(SignalKind) - len(node_only)
        rendered_node_only = {SignalPath(kind, "a").render() for kind in node_only}
        assert len(rendered_node_only) == len(node_only)
