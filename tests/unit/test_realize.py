"""Unit tests for traffic realization (believed vs actual demand)."""

import pytest

from repro.net.demand import DemandMatrix
from repro.net.flows import FlowAssignment, FlowRule
from repro.net.realize import realize_traffic
from repro.net.routing import Path
from repro.topologies.synthetic import ring_topology


def programmed_line():
    assignment = FlowAssignment()
    assignment.rules[("r0", "r2")] = [FlowRule(Path(("r0", "r1", "r2")), 4.0)]
    return assignment


class TestScaling:
    def test_true_rate_scales_programmed_paths(self, line5):
        demand = DemandMatrix(line5.node_names())
        demand["r0", "r2"] = 8.0  # hosts send double the believed 4.0
        realized = realize_traffic(programmed_line(), demand, line5)
        rules = realized.rules[("r0", "r2")]
        assert len(rules) == 1
        assert rules[0].rate == pytest.approx(8.0)

    def test_split_proportions_preserved(self):
        topo = ring_topology(4)
        programmed = FlowAssignment()
        programmed.rules[("r0", "r2")] = [
            FlowRule(Path(("r0", "r1", "r2")), 3.0),
            FlowRule(Path(("r0", "r3", "r2")), 1.0),
        ]
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r2"] = 8.0
        realized = realize_traffic(programmed, demand, topo)
        rates = sorted(rule.rate for rule in realized.rules[("r0", "r2")])
        assert rates == [pytest.approx(2.0), pytest.approx(6.0)]

    def test_total_matches_true_demand(self, line5):
        demand = DemandMatrix(line5.node_names())
        demand["r0", "r2"] = 8.0
        demand["r3", "r4"] = 2.0  # not programmed at all
        realized = realize_traffic(programmed_line(), demand, line5)
        assert realized.total_rate() == pytest.approx(10.0)


class TestFallback:
    def test_unprogrammed_pair_uses_default_route(self, line5):
        demand = DemandMatrix(line5.node_names())
        demand["r3", "r4"] = 2.0
        realized = realize_traffic(FlowAssignment(), demand, line5)
        rules = realized.rules[("r3", "r4")]
        assert rules[0].path.nodes == ("r3", "r4")
        assert rules[0].rate == 2.0

    def test_zero_believed_rate_falls_back(self, line5):
        programmed = FlowAssignment()
        programmed.rules[("r0", "r2")] = [FlowRule(Path(("r0", "r1", "r2")), 0.0)]
        demand = DemandMatrix(line5.node_names())
        demand["r0", "r2"] = 5.0
        realized = realize_traffic(programmed, demand, line5)
        assert realized.rate_for("r0", "r2") == pytest.approx(5.0)

    def test_no_live_path_is_unrouted(self, line5):
        live = line5.copy()
        live.remove_link("r1", "r2")
        demand = DemandMatrix(line5.node_names())
        demand["r0", "r4"] = 2.0
        realized = realize_traffic(FlowAssignment(), demand, live)
        assert realized.unrouted == {("r0", "r4"): 2.0}

    def test_unknown_node_is_unrouted(self, line5):
        demand = DemandMatrix(["r0", "ghost"])
        demand["r0", "ghost"] = 1.0
        realized = realize_traffic(FlowAssignment(), demand, line5)
        assert realized.unrouted == {("r0", "ghost"): 1.0}

    def test_programmed_paths_kept_even_if_dead(self, line5):
        # The controller programmed through a link that is actually
        # dead; realization does NOT reroute -- the packets chase the
        # programmed forwarding state and die at the blackhole.  The
        # live topology only matters for unprogrammed traffic.
        live = line5.copy()
        live.remove_link("r1", "r2")
        demand = DemandMatrix(line5.node_names())
        demand["r0", "r2"] = 4.0
        realized = realize_traffic(programmed_line(), demand, live)
        assert realized.rules[("r0", "r2")][0].path.nodes == ("r0", "r1", "r2")
