"""Unit tests for the gNMI-style access facade."""

import pytest

from repro.telemetry.gnmi import GnmiError, GnmiFacade
from repro.telemetry.paths import PathError, SignalKind, SignalPath


@pytest.fixture
def facade(clean_snapshot):
    return GnmiFacade(clean_snapshot)


class TestGet:
    def test_counter_rates(self, facade, clean_snapshot):
        path = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
        assert facade.get(path) == clean_snapshot.counter("atla", "hstn").tx_rate
        path = SignalPath(SignalKind.RX_RATE, "atla", "hstn").render()
        assert facade.get(path) == clean_snapshot.counter("atla", "hstn").rx_rate

    def test_statuses(self, facade):
        path = SignalPath(SignalKind.OPER_STATUS, "atla", "hstn").render()
        assert facade.get(path) is True
        path = SignalPath(SignalKind.ADMIN_STATUS, "atla", "hstn").render()
        assert facade.get(path) is True

    def test_drain_and_drops(self, facade):
        assert facade.get(SignalPath(SignalKind.DRAIN, "atla").render()) is False
        drops = facade.get(SignalPath(SignalKind.NODE_DROPS, "atla").render())
        assert drops == pytest.approx(0.0)

    def test_probe(self, facade):
        assert facade.get(SignalPath(SignalKind.PROBE, "atla", "hstn").render()) is True

    def test_link_drain(self, facade):
        path = SignalPath(SignalKind.LINK_DRAIN, "atla", "hstn").render()
        assert facade.get(path) is False

    def test_missing_data(self, facade):
        path = SignalPath(SignalKind.TX_RATE, "atla", "nycm").render()  # no such link
        with pytest.raises(GnmiError):
            facade.get(path)

    def test_invalid_path(self, facade):
        with pytest.raises(PathError):
            facade.get("/not/a/real/path")

    def test_raw_values_not_coerced(self, clean_snapshot):
        clean_snapshot.counters[("atla", "hstn")].tx_rate = "GARBAGE"
        facade = GnmiFacade(clean_snapshot)
        path = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
        assert facade.get(path) == "GARBAGE"  # transport does not interpret


class TestBatchAndWalk:
    def test_get_many_skips_missing(self, facade):
        good = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
        bad = SignalPath(SignalKind.TX_RATE, "atla", "nycm").render()
        result = facade.get_many([good, bad, "/broken"])
        assert good in result
        assert bad not in result

    def test_walk_covers_snapshot(self, facade, clean_snapshot):
        paths = facade.walk()
        assert len(paths) == clean_snapshot.signal_count()
        for path in paths:
            facade.get(path)  # every walked path must be answerable

    def test_walk_filtered(self, facade, clean_snapshot):
        paths = facade.walk(kinds=[SignalKind.DRAIN])
        assert len(paths) == len(clean_snapshot.drains)
        assert all("drain" in p for p in paths)

    def test_subscribe_yields_pairs(self, facade):
        wanted = facade.walk(kinds=[SignalKind.PROBE])[:5]
        updates = dict(facade.subscribe(wanted))
        assert set(updates) == set(wanted)
        assert all(isinstance(value, bool) for value in updates.values())

    def test_subscribe_order_is_deterministic(self, facade):
        wanted = facade.walk()
        shuffled = list(reversed(wanted[1::2])) + wanted[::2]

        def coordinates(rendered):
            parsed = SignalPath.parse(rendered)
            return (parsed.kind.value, parsed.node, parsed.peer or "")

        expected = sorted(wanted, key=coordinates)
        assert [path for path, _ in facade.subscribe(shuffled)] == expected
        # Any permutation of the subscription yields the identical stream.
        assert list(facade.subscribe(shuffled)) == list(facade.subscribe(wanted))

    def test_subscribe_collapses_duplicates_and_skips_missing(self, facade):
        good = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
        missing = SignalPath(SignalKind.TX_RATE, "atla", "nycm").render()
        updates = list(facade.subscribe([good, missing, good, "/broken", good]))
        assert [path for path, _ in updates] == [good]
