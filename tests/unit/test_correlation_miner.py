"""Unit tests for the Section 3.1 unsupervised-mining baseline."""

import pytest

from repro.baselines.correlation_miner import CorrelationMiner, MinedInvariant
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Node
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.paths import SignalKind, SignalPath
from repro.topologies.abilene import abilene


class TestMinedInvariant:
    def test_holds_within_tolerance(self):
        invariant = MinedInvariant("a", "b", 0.02)
        assert invariant.holds({"a": 100.0, "b": 101.0}, floor=1e-6)
        assert invariant.holds({"a": 100.0, "b": 110.0}, floor=1e-6) is False

    def test_missing_signal_is_none(self):
        invariant = MinedInvariant("a", "b", 0.02)
        assert invariant.holds({"a": 1.0}, floor=1e-6) is None

    def test_both_tiny_hold(self):
        invariant = MinedInvariant("a", "b", 0.02)
        assert invariant.holds({"a": 0.0, "b": 0.0}, floor=1e-6)


class TestMinerMechanics:
    def test_requires_min_epochs(self):
        miner = CorrelationMiner(min_epochs=3)
        miner.observe({"a": 1.0, "b": 1.0})
        with pytest.raises(RuntimeError):
            miner.mine()

    def test_mines_persistent_equality(self):
        miner = CorrelationMiner(min_epochs=3)
        for scale in (1.0, 2.0, 3.0):
            miner.observe({"a": scale, "b": scale * 1.005, "c": scale * 10})
        mined = miner.mine()
        assert MinedInvariant("a", "b", 0.02) in mined
        assert all({inv.left, inv.right} != {"a", "c"} for inv in mined)

    def test_one_counterexample_kills_candidate(self):
        miner = CorrelationMiner(min_epochs=3)
        miner.observe({"a": 1.0, "b": 1.0})
        miner.observe({"a": 2.0, "b": 2.0})
        miner.observe({"a": 3.0, "b": 4.5})
        assert miner.mine() == []

    def test_check_flags_broken_invariant(self):
        miner = CorrelationMiner(min_epochs=2)
        miner.observe({"a": 1.0, "b": 1.0})
        miner.observe({"a": 5.0, "b": 5.0})
        violations = miner.check({"a": 10.0, "b": 2.0})
        assert len(violations) == 1
        assert violations[0].left_value == 10.0

    @pytest.mark.parametrize("kwargs", [{"tolerance": -0.1}, {"tolerance": 1.0}, {"min_epochs": 0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            CorrelationMiner(**kwargs)


class TestOnRealTelemetry:
    def _bundles(self, topo, epochs=4, drained=()):
        for name in drained:
            node = topo.node(name)
            topo.replace_node(Node(name, site=node.site, drained=True))
        bundles = []
        for epoch in range(epochs):
            demand = gravity_demand(
                topo.node_names(), total=30.0 * (1 + 0.1 * epoch), seed=epoch
            )
            if drained:
                reduced = demand.copy()
                for name in drained:
                    for other in demand.nodes:
                        if other != name:
                            reduced[name, other] = 0.0
                            reduced[other, name] = 0.0
                demand = reduced
            truth = NetworkSimulator(topo, demand).run()
            snapshot = TelemetryCollector(Jitter(0.003, seed=epoch)).collect(truth)
            bundles.append(snapshot.flatten())
        return bundles

    def test_rediscovers_r1_symmetry(self):
        """From clean history the miner finds the true tx/rx pairs."""
        topo = abilene()
        miner = CorrelationMiner(tolerance=0.02, min_epochs=3)
        for bundle in self._bundles(topo):
            miner.observe(bundle)
        mined = {(inv.left, inv.right) for inv in miner.mine()}
        tx = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
        rx = SignalPath(SignalKind.RX_RATE, "hstn", "atla").render()
        assert (min(tx, rx), max(tx, rx)) in mined

    def test_paper_criticism_spurious_pop_invariants(self):
        """Trained while a region is drained, the miner learns that the
        region's counters are 'always equal' (all zero) -- and floods
        false positives the moment the region is undrained.  This is
        verbatim the Section 3.1 failure mode."""
        drained = ("sttl", "snva")
        trained_topo = abilene()
        miner = CorrelationMiner(tolerance=0.02, min_epochs=3)
        for bundle in self._bundles(trained_topo, drained=drained):
            miner.observe(bundle)

        mined = miner.mine()
        spurious = [
            inv
            for inv in mined
            if "sttl" in inv.left and "snva" in inv.right or "snva" in inv.left and "sttl" in inv.right
        ]
        assert spurious, "expected cross-router equalities inside the drained region"

        # Undrain: a correct, healthy epoch now violates the learned set.
        healthy_topo = abilene()
        healthy_bundle = self._bundles(healthy_topo, epochs=1)[0]
        violations = miner.check(healthy_bundle)
        assert violations, "undraining must break the spurious invariants"

    def test_hodor_accepts_what_the_miner_rejects(self):
        """The same undrained epoch passes Hodor's validation -- the
        expert-knowledge approach does not inherit the spurious
        invariants."""
        from repro.core import Hodor

        drained_topo = abilene()
        miner = CorrelationMiner(tolerance=0.02, min_epochs=3)
        for bundle in self._bundles(drained_topo, drained=("sttl", "snva")):
            miner.observe(bundle)

        healthy_topo = abilene()
        demand = gravity_demand(healthy_topo.node_names(), total=30.0, seed=9)
        truth = NetworkSimulator(healthy_topo, demand).run()
        snapshot = TelemetryCollector(Jitter(0.003, seed=9)).collect(truth)

        assert not miner.passed(snapshot.flatten())
        report = Hodor(healthy_topo).validate_demand(snapshot, demand)
        assert report.all_valid
