"""Unit tests for response policies."""


from repro.control.inputs import ControllerInputs, DrainView
from repro.core.policy import AlertOnlyPolicy, RejectAndFallbackPolicy
from repro.core.report import InputVerdict, ValidationReport
from repro.core.signals import Finding, FindingSeverity, HardenedState
from repro.net.demand import DemandMatrix
from repro.topologies.synthetic import line_topology


def make_inputs(tag: str) -> ControllerInputs:
    topo = line_topology(3)
    topo.name = tag
    return ControllerInputs(
        topology=topo, demand=DemandMatrix(topo.node_names()), drains=DrainView()
    )


def make_report(valid: bool, critical: bool = False) -> ValidationReport:
    hardened = HardenedState()
    if critical:
        hardened.findings.append(
            Finding("R2_NEGATIVE_SOLUTION", FindingSeverity.CRITICAL, "x", "boom")
        )
    report = ValidationReport(timestamp=0.0, hardened=hardened)
    report.verdicts["demand"] = InputVerdict("demand", valid, 0 if valid else 3, 24)
    return report


class TestAlertOnly:
    def test_valid_inputs_no_alerts(self):
        decision = AlertOnlyPolicy().decide(make_inputs("fresh"), make_report(True), None)
        assert decision.accepted
        assert not decision.fell_back
        assert decision.alerts == []

    def test_invalid_inputs_alert_but_accept(self):
        decision = AlertOnlyPolicy().decide(make_inputs("fresh"), make_report(False), None)
        assert decision.accepted
        assert decision.inputs.topology.name == "fresh"
        assert any("demand" in alert for alert in decision.alerts)

    def test_critical_findings_alerted(self):
        decision = AlertOnlyPolicy().decide(
            make_inputs("fresh"), make_report(True, critical=True), None
        )
        assert any("R2_NEGATIVE_SOLUTION" in alert for alert in decision.alerts)


class TestRejectAndFallback:
    def test_valid_inputs_accepted(self):
        decision = RejectAndFallbackPolicy().decide(
            make_inputs("fresh"), make_report(True), make_inputs("old")
        )
        assert decision.accepted
        assert decision.inputs.topology.name == "fresh"

    def test_invalid_inputs_fall_back(self):
        decision = RejectAndFallbackPolicy().decide(
            make_inputs("fresh"), make_report(False), make_inputs("old")
        )
        assert not decision.accepted
        assert decision.fell_back
        assert decision.inputs.topology.name == "old"
        assert decision.alerts

    def test_no_last_good_uses_fresh_with_alert(self):
        decision = RejectAndFallbackPolicy().decide(
            make_inputs("fresh"), make_report(False), None
        )
        assert decision.accepted
        assert not decision.fell_back
        assert decision.inputs.topology.name == "fresh"
        assert any("no last-known-good" in alert for alert in decision.alerts)
