"""Unit tests for router-level signal faults (Section 2.1)."""


import pytest

from repro.faults.base import FaultInjector
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    DelayedTelemetry,
    FormatChangeTelemetry,
    MalformedTelemetry,
    MissingTelemetry,
    RandomCounterCorruption,
    UnitChangeTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)
from repro.telemetry.counters import MalformedValueError, coerce_rate


class TestZeroedDuplicate:
    def test_targets_explicit_interface(self, clean_snapshot):
        fault = ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")])
        snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.counter("atla", "hstn").rx_rate == 0.0
        assert len(records) == 1
        assert records[0].signal == "rx"

    def test_original_untouched(self, clean_snapshot):
        before = clean_snapshot.counter("atla", "hstn").rx_rate
        fault = ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")])
        FaultInjector([fault]).inject(clean_snapshot)
        assert clean_snapshot.counter("atla", "hstn").rx_rate == before

    def test_random_count(self, clean_snapshot):
        fault = ZeroedDuplicateTelemetry(count=3)
        _snapshot, records = FaultInjector([fault], seed=5).inject(clean_snapshot)
        assert len(records) == 3

    def test_reproducible_by_seed(self, clean_snapshot):
        fault = ZeroedDuplicateTelemetry(count=2)
        _s1, first = FaultInjector([fault], seed=9).inject(clean_snapshot)
        _s2, second = FaultInjector([fault], seed=9).inject(clean_snapshot)
        assert [(r.node, r.peer) for r in first] == [(r.node, r.peer) for r in second]

    def test_sequence_number_reused(self, clean_snapshot):
        before = clean_snapshot.counter("atla", "hstn").sequence
        fault = ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.counter("atla", "hstn").sequence == max(0, before - 1)

    def test_missing_interface_skipped(self, clean_snapshot):
        fault = ZeroedDuplicateTelemetry(interfaces=[("ghost", "atla")])
        _snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert records == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ZeroedDuplicateTelemetry(count=-1)


class TestMalformed:
    def test_values_unparseable(self, clean_snapshot):
        fault = MalformedTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        with pytest.raises(MalformedValueError):
            coerce_rate(snapshot.counter("atla", "hstn").rx_rate)

    def test_custom_garbage(self, clean_snapshot):
        fault = MalformedTelemetry(interfaces=[("atla", "hstn")], garbage={"bad": 1})
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.counter("atla", "hstn").tx_rate == {"bad": 1}


class TestFormatChange:
    def test_parseable_but_truncated(self, clean_snapshot):
        fault = FormatChangeTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        value = snapshot.counter("atla", "hstn").tx_rate
        assert isinstance(value, str)
        assert coerce_rate(value) == float(int(coerce_rate(value)))


class TestUnitChange:
    def test_scales_rates(self, clean_snapshot):
        before = coerce_rate(clean_snapshot.counter("atla", "hstn").tx_rate)
        fault = UnitChangeTelemetry(interfaces=[("atla", "hstn")], factor=1000.0)
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        assert coerce_rate(snapshot.counter("atla", "hstn").tx_rate) == pytest.approx(
            before * 1000.0
        )

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            UnitChangeTelemetry(factor=0.0)


class TestDelayed:
    def test_timestamp_pushed_back_and_drifted(self, clean_snapshot):
        fault = DelayedTelemetry(
            interfaces=[("atla", "hstn")], delay_s=300.0, drift=0.5
        )
        before = coerce_rate(clean_snapshot.counter("atla", "hstn").tx_rate)
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        reading = snapshot.counter("atla", "hstn")
        assert reading.timestamp == clean_snapshot.counter("atla", "hstn").timestamp - 300.0
        assert coerce_rate(reading.tx_rate) == pytest.approx(before * 0.5)

    @pytest.mark.parametrize("kwargs", [{"delay_s": -1.0}, {"drift": -0.5}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            DelayedTelemetry(**kwargs)


class TestMissing:
    def test_silent_router(self, clean_snapshot):
        fault = MissingTelemetry(nodes=["atla"])
        snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.counter("atla", "hstn") is None
        assert "atla" not in snapshot.drains
        assert any(r.node == "atla" and r.peer is None for r in records)

    def test_single_interface_lost(self, clean_snapshot):
        fault = MissingTelemetry(interfaces=[("atla", "hstn")])
        snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.counter("atla", "hstn") is None
        assert snapshot.counter("hstn", "atla") is not None
        assert len(records) == 1

    def test_missing_target_no_record(self, clean_snapshot):
        fault = MissingTelemetry(interfaces=[("ghost", "x")])
        _snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert records == []


class TestWrongLinkStatus:
    def test_forces_down(self, clean_snapshot):
        fault = WrongLinkStatus([("atla", "hstn")], report_up=False)
        snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.status("atla", "hstn").oper_up is False
        assert snapshot.status("hstn", "atla").oper_up is True  # peer untouched
        assert records[0].signal == "oper_status"

    def test_forces_up(self, clean_snapshot):
        down = WrongLinkStatus([("atla", "hstn"), ("hstn", "atla")], report_up=False)
        up = WrongLinkStatus([("atla", "hstn")], report_up=True)
        snapshot, _ = FaultInjector([down, up]).inject(clean_snapshot)
        assert snapshot.status("atla", "hstn").oper_up is True
        assert snapshot.status("hstn", "atla").oper_up is False


class TestRandomCorruption:
    def test_zero_mode(self, clean_snapshot):
        fault = RandomCounterCorruption(2, mode="zero", side="rx")
        snapshot, records = FaultInjector([fault], seed=3).inject(clean_snapshot)
        assert len(records) == 2
        for record in records:
            assert snapshot.counter(record.node, record.peer).rx_rate == 0.0

    def test_scale_mode(self, clean_snapshot):
        fault = RandomCounterCorruption(1, mode="scale", side="tx", factor=2.0)
        snapshot, records = FaultInjector([fault], seed=3).inject(clean_snapshot)
        record = records[0]
        before = coerce_rate(clean_snapshot.counter(record.node, record.peer).tx_rate)
        after = coerce_rate(snapshot.counter(record.node, record.peer).tx_rate)
        assert after == pytest.approx(before * 2.0)

    def test_missing_mode(self, clean_snapshot):
        fault = RandomCounterCorruption(1, mode="missing", side="both")
        snapshot, records = FaultInjector([fault], seed=3).inject(clean_snapshot)
        node, peer = records[0].node, records[0].peer
        assert snapshot.counter(node, peer).rx_rate is None
        assert snapshot.counter(node, peer).tx_rate is None

    def test_external_excluded_by_default(self, clean_snapshot):
        from repro.net.topology import EXTERNAL_PEER

        fault = RandomCounterCorruption(100, mode="zero")
        _snapshot, records = FaultInjector([fault], seed=3).inject(clean_snapshot)
        assert all(record.peer != EXTERNAL_PEER for record in records)

    @pytest.mark.parametrize(
        "kwargs",
        [{"mode": "explode"}, {"side": "middle"}, {"count": -1}],
    )
    def test_bad_params(self, kwargs):
        args = {"count": 1}
        args.update(kwargs)
        with pytest.raises(ValueError):
            RandomCounterCorruption(**args)


class TestCorrelated:
    def test_scales_all_counters_of_affected_nodes(self, clean_snapshot):
        fault = CorrelatedCounterFault(["atla"], factor=0.5)
        before = coerce_rate(clean_snapshot.counter("atla", "hstn").tx_rate)
        snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert coerce_rate(snapshot.counter("atla", "hstn").tx_rate) == pytest.approx(
            before * 0.5
        )
        assert all(record.node == "atla" for record in records)

    def test_unaffected_nodes_untouched(self, clean_snapshot):
        fault = CorrelatedCounterFault(["atla"], factor=0.5)
        before = coerce_rate(clean_snapshot.counter("hstn", "atla").tx_rate)
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        assert coerce_rate(snapshot.counter("hstn", "atla").tx_rate) == before

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            CorrelatedCounterFault(["a"], factor=-1.0)


class TestInjectorStacking:
    def test_faults_apply_in_order(self, clean_snapshot):
        first = UnitChangeTelemetry(interfaces=[("atla", "hstn")], factor=2.0)
        second = UnitChangeTelemetry(interfaces=[("atla", "hstn")], factor=3.0)
        before = coerce_rate(clean_snapshot.counter("atla", "hstn").tx_rate)
        snapshot, records = FaultInjector([first, second]).inject(clean_snapshot)
        assert coerce_rate(snapshot.counter("atla", "hstn").tx_rate) == pytest.approx(
            before * 6.0
        )
        assert len(records) == 2

    def test_add_fault(self, clean_snapshot):
        injector = FaultInjector()
        injector.add(ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")]))
        assert len(injector.faults) == 1
        _snapshot, records = injector.inject(clean_snapshot)
        assert len(records) == 1
