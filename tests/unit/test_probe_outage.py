"""Unit tests for the ProbeOutage fault and graceful R4 degradation."""


from repro.core import Hodor, HodorConfig, LinkVerdict
from repro.faults import FaultInjector, ProbeOutage


class TestProbeOutageFault:
    def test_all_probes_fail(self, clean_snapshot):
        snapshot, records = FaultInjector([ProbeOutage()]).inject(clean_snapshot)
        assert all(not result.ok for result in snapshot.probes.values())
        assert len(records) == len(snapshot.probes)

    def test_scoped_to_nodes(self, clean_snapshot):
        snapshot, records = FaultInjector([ProbeOutage(["atla"])]).inject(clean_snapshot)
        assert all(record.node == "atla" for record in records)
        assert not snapshot.probe("atla", "hstn").ok
        assert snapshot.probe("hstn", "atla").ok

    def test_already_failed_probes_not_recorded(self, clean_snapshot):
        once, _ = FaultInjector([ProbeOutage(["atla"])]).inject(clean_snapshot)
        _twice, records = FaultInjector([ProbeOutage(["atla"])]).inject(once)
        assert records == []


class TestGracefulDegradation:
    def test_loaded_links_stay_up_without_probes(self, abilene_topo, clean_snapshot):
        """Counters outvote a dead probe agent: loaded links stay usable
        and validation does not collapse into mass alarms."""
        snapshot, _ = FaultInjector([ProbeOutage()]).inject(clean_snapshot)
        hardened = Hodor(abilene_topo).harden(snapshot)
        loaded = [
            name
            for name, status in hardened.links.items()
            if status.verdict == LinkVerdict.UP and status.forwarding
        ]
        assert loaded, "links with traffic must survive a probe outage"

    def test_idle_links_degrade_to_unusable_not_down(self, abilene_topo):
        """An idle link with failed probes reads as up-but-unproven:
        probe loss must not fabricate physical down verdicts."""
        from repro.net.demand import DemandMatrix
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry import Jitter, ProbeEngine, TelemetryCollector

        truth = NetworkSimulator(abilene_topo, DemandMatrix(abilene_topo.node_names())).run()
        snapshot = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(truth)
        snapshot, _ = FaultInjector([ProbeOutage()]).inject(snapshot)
        hardened = Hodor(abilene_topo).harden(snapshot)
        for status in hardened.links.values():
            assert status.verdict != LinkVerdict.DOWN

    def test_probes_disabled_config_equivalent(self, abilene_topo, clean_snapshot):
        """Running with probes administratively disabled is at least as
        quiet as running through a probe outage."""
        snapshot, _ = FaultInjector([ProbeOutage()]).inject(clean_snapshot)
        with_outage = Hodor(abilene_topo).harden(snapshot)
        without_probes = Hodor(
            abilene_topo, HodorConfig(use_probes=False)
        ).harden(clean_snapshot)
        up_outage = sum(
            1 for s in with_outage.links.values() if s.verdict == LinkVerdict.UP
        )
        up_disabled = sum(
            1 for s in without_probes.links.values() if s.verdict == LinkVerdict.UP
        )
        assert up_outage == up_disabled
