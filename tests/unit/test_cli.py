"""Unit tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "repaired value : 76" in out
        assert "R1_COUNTER_MISMATCH" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "S01" in out and "S16" in out

    def test_perturb_small(self, capsys):
        assert main(["perturb", "--trials", "20", "--matrices", "3", "--max-zeroed", "2"]) == 0
        out = capsys.readouterr().out
        assert "detection rate" in out

    def test_scale_small(self, capsys):
        assert main(["scale", "--sizes", "8", "12"]) == 0
        out = capsys.readouterr().out
        assert "validate (ms)" in out

    def test_drains_small(self, capsys):
        assert main(["drains", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fresh-drain-with-reason" in out

    def test_hardening_small(self, capsys):
        assert main(["hardening", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "correlated vendor bug" in out

    def test_thresholds_small(self, capsys):
        assert main(["thresholds", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "tau_h" in out

    def test_replay(self, capsys):
        assert main(["replay", "--history", "3"]) == 0
        out = capsys.readouterr().out
        assert "hodor_detection_rate" in out


class TestReportCommand:
    def test_quick_report_to_stdout(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "# Hodor reproduction" in out
        assert "E2 —" in out and "E9 —" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "RESULTS.md"
        assert main(["report", "--quick", "--output", str(target)]) == 0
        assert "full measured report" in target.read_text()
