"""Unit tests for the statistical anomaly-detection baseline."""

import math

import pytest

from repro.baselines.anomaly import DemandAnomalyBaseline, EwmaDetector
from repro.net.demand import gravity_demand, uniform_demand, zero_entries


class TestEwmaDetector:
    def test_warmup_returns_none(self):
        detector = EwmaDetector(min_observations=5)
        for value in (1.0, 1.1, 0.9):
            detector.observe(value)
        assert detector.zscore(5.0) is None
        assert not detector.is_anomalous(5.0)

    def test_stable_series_flags_outlier(self):
        detector = EwmaDetector(alpha=0.3, z_threshold=3.0)
        for value in (10.0, 10.1, 9.9, 10.05, 9.95, 10.0, 10.1):
            detector.observe(value)
        assert detector.is_anomalous(20.0)
        assert not detector.is_anomalous(10.02)

    def test_constant_series_zero_variance(self):
        detector = EwmaDetector()
        for _ in range(10):
            detector.observe(5.0)
        assert detector.zscore(5.0) == 0.0
        assert math.isinf(detector.zscore(6.0))

    def test_mean_tracks(self):
        detector = EwmaDetector(alpha=0.5)
        for value in (0.0, 10.0, 10.0, 10.0, 10.0, 10.0):
            detector.observe(value)
        assert detector.mean > 8.0

    @pytest.mark.parametrize("kwargs", [{"alpha": 0.0}, {"alpha": 1.5}, {"z_threshold": 0.0}])
    def test_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            EwmaDetector(**kwargs)


class TestDemandAnomalyBaseline:
    NODES = ["a", "b", "c", "d"]

    def _trained(self, demand, epochs=8, wiggles=(0.98, 1.0, 1.02)):
        baseline = DemandAnomalyBaseline(min_observations=3)
        for epoch in range(epochs):
            baseline.observe(demand.scaled(wiggles[epoch % len(wiggles)]))
        return baseline

    def test_in_distribution_passes(self):
        demand = gravity_demand(self.NODES, total=20.0, seed=1)
        baseline = self._trained(demand)
        assert baseline.passed(demand.scaled(1.01))

    def test_zeroed_entry_flagged(self):
        demand = gravity_demand(self.NODES, total=20.0, seed=1)
        baseline = self._trained(demand)
        flags = baseline.check(zero_entries(demand, 2, seed=3))
        assert len(flags) == 2
        assert all(flag.value == 0.0 for flag in flags)

    def test_unseen_pair_ignored(self):
        baseline = DemandAnomalyBaseline(min_observations=2)
        baseline.observe(uniform_demand(["a", "b"], 1.0))
        baseline.observe(uniform_demand(["a", "b"], 1.0))
        other = uniform_demand(["x", "y"], 99.0)
        assert baseline.passed(other)  # no detectors for those pairs

    def test_paper_criticism_structural_shift_passes(self):
        """A matrix uniformly scaled by a modest factor stays within
        each entry's historical spread, even though row sums no longer
        match what the network carries -- the gap Hodor closes."""
        demand = gravity_demand(self.NODES, total=20.0, seed=1)
        baseline = self._trained(demand, wiggles=(0.9, 1.0, 1.1))
        assert baseline.passed(demand.scaled(1.1))
