"""Unit tests for drain-intent faults (Section 2.1)."""


from repro.faults.base import FaultInjector
from repro.faults.intent_faults import InconsistentLinkDrain, MissedDrain, SpuriousDrain
from repro.net.topology import Node


class TestSpuriousDrain:
    def test_reports_drained(self, clean_snapshot):
        snapshot, records = FaultInjector([SpuriousDrain(["atla"])]).inject(clean_snapshot)
        assert snapshot.drains["atla"] is True
        assert records[0].signal == "drain"

    def test_unknown_node_skipped(self, clean_snapshot):
        _snapshot, records = FaultInjector([SpuriousDrain(["ghost"])]).inject(clean_snapshot)
        assert records == []

    def test_multiple_nodes(self, clean_snapshot):
        snapshot, records = FaultInjector(
            [SpuriousDrain(["atla", "kscy"])]
        ).inject(clean_snapshot)
        assert snapshot.drains["atla"] and snapshot.drains["kscy"]
        assert len(records) == 2


class TestMissedDrain:
    def test_hides_drain(self, abilene_topo, abilene_demand):
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter

        abilene_topo.replace_node(Node("atla", site="Atlanta", drained=True))
        truth = NetworkSimulator(abilene_topo, abilene_demand).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        assert snapshot.drains["atla"] is True

        faulted, records = FaultInjector([MissedDrain(["atla"])]).inject(snapshot)
        assert faulted.drains["atla"] is False
        assert records[0].detail == "hides an intended drain"


class TestInconsistentLinkDrain:
    def test_flips_one_endpoint_only(self, clean_snapshot):
        fault = InconsistentLinkDrain([("atla", "hstn")])
        snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert snapshot.link_drains[("atla", "hstn")] is True
        assert snapshot.link_drains[("hstn", "atla")] is False
        assert records[0].signal == "link_drain"

    def test_flip_is_involutive(self, clean_snapshot):
        fault = InconsistentLinkDrain([("atla", "hstn")])
        snapshot, _ = FaultInjector([fault, fault]).inject(clean_snapshot)
        assert snapshot.link_drains[("atla", "hstn")] is False

    def test_unknown_interface_skipped(self, clean_snapshot):
        fault = InconsistentLinkDrain([("ghost", "x")])
        _snapshot, records = FaultInjector([fault]).inject(clean_snapshot)
        assert records == []
