"""Unit tests for the demand dynamic checker (2v invariants)."""

import pytest

from repro.core.config import HodorConfig
from repro.core.demand_check import DemandChecker
from repro.core.pipeline import Hodor
from repro.net.demand import DemandMatrix, zero_entries


@pytest.fixture
def hardened(abilene_topo, clean_snapshot):
    return Hodor(abilene_topo).harden(clean_snapshot)


class TestInvariantGeneration:
    def test_two_invariants_per_router(self, abilene_topo, abilene_demand, hardened):
        result = DemandChecker().check(abilene_demand, hardened)
        assert len(result.results) == 2 * abilene_topo.num_nodes

    def test_clean_demand_passes(self, abilene_demand, hardened):
        result = DemandChecker().check(abilene_demand, hardened)
        assert result.passed
        assert result.num_skipped == 0

    def test_names_identify_router_and_side(self, abilene_demand, hardened):
        result = DemandChecker().check(abilene_demand, hardened)
        names = {r.invariant.name for r in result.results}
        assert "demand/row-sum/atla" in names
        assert "demand/col-sum/atla" in names


class TestDetection:
    def test_zeroed_entries_detected(self, abilene_demand, hardened):
        perturbed = zero_entries(abilene_demand, 3, seed=1)
        result = DemandChecker().check(perturbed, hardened)
        assert not result.passed

    def test_scaled_matrix_detected(self, abilene_demand, hardened):
        result = DemandChecker().check(abilene_demand.scaled(1.5), hardened)
        assert not result.passed
        # every router's row and column sums are off
        assert len(result.violations) > 10

    def test_violation_names_ingress_router(self, abilene_demand, hardened):
        perturbed = abilene_demand.copy()
        row = perturbed.row_sum("kscy")
        for dst in perturbed.nodes:
            if dst != "kscy":
                perturbed["kscy", dst] = 0.0
        assert row > 0
        result = DemandChecker().check(perturbed, hardened)
        violated_names = {v.invariant.name for v in result.violations}
        assert "demand/row-sum/kscy" in violated_names

    def test_tolerance_respected(self, abilene_demand, hardened):
        barely = abilene_demand.scaled(1.015)  # inside tau_e = 2%
        assert DemandChecker(HodorConfig(tau_e=0.02)).check(barely, hardened).passed
        assert not DemandChecker(HodorConfig(tau_e=0.005)).check(barely, hardened).passed


class TestMissingInformation:
    def test_unknown_external_counters_skip(self, abilene_topo, abilene_demand, clean_snapshot):
        from repro.net.topology import EXTERNAL_PEER

        snapshot = clean_snapshot.copy()
        del snapshot.counters[("atla", EXTERNAL_PEER)]
        hardened = Hodor(abilene_topo).harden(snapshot)
        result = DemandChecker().check(abilene_demand, hardened)
        assert result.num_skipped == 2  # atla row + col
        assert any("skipped" in note for note in result.notes)

    def test_router_missing_from_matrix(self, abilene_topo, abilene_demand, hardened):
        smaller_nodes = [n for n in abilene_demand.nodes if n != "kscy"]
        smaller = abilene_demand.restricted_to(smaller_nodes)
        result = DemandChecker().check(smaller, hardened)
        # kscy carries external traffic but the matrix says zero
        violated = {v.invariant.name for v in result.violations}
        assert "demand/row-sum/kscy" in violated
        assert any("kscy" in note for note in result.notes)

    def test_idle_missing_router_accepted(self, abilene_topo, clean_snapshot):
        # A router absent from the matrix that truly has no external
        # traffic must NOT be flagged (the rate floor prevents
        # divide-around-zero noise).
        from repro.net.demand import DemandMatrix
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter

        demand = DemandMatrix(abilene_topo.node_names())
        demand["atla", "hstn"] = 5.0
        truth = NetworkSimulator(abilene_topo, demand).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        hardened = Hodor(abilene_topo).harden(snapshot)
        active_only = demand.restricted_to(["atla", "hstn"])
        result = DemandChecker().check(active_only, hardened)
        assert result.passed
