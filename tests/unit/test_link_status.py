"""Unit tests for the link-status truth table (Section 4.2)."""


from repro.core.config import HodorConfig, RiskProfile
from repro.core.link_status import LinkEvidence, combine_link_evidence
from repro.core.signals import LinkVerdict


def evidence(status_a=True, status_b=True, rates=(5.0, 5.0, 5.0, 5.0), probe_ab=None, probe_ba=None):
    return LinkEvidence(
        status_a=status_a,
        status_b=status_b,
        rates=rates,
        probe_ab=probe_ab,
        probe_ba=probe_ba,
    )


class TestConsensusHelpers:
    def test_status_agree_up(self):
        assert evidence().status_consensus() == "up"

    def test_status_agree_down(self):
        assert evidence(status_a=False, status_b=False).status_consensus() == "down"

    def test_status_conflict(self):
        assert evidence(status_a=True, status_b=False).status_consensus() == "conflict"

    def test_status_one_missing_uses_other(self):
        assert evidence(status_a=None, status_b=True).status_consensus() == "up"
        assert evidence(status_a=None, status_b=False).status_consensus() == "down"

    def test_status_both_missing(self):
        assert evidence(status_a=None, status_b=None).status_consensus() == "unknown"

    def test_counters_active(self):
        assert evidence().counters_active(1e-3) is True
        assert evidence(rates=(0.0, 0.0, 0.0, 0.0)).counters_active(1e-3) is False
        assert evidence(rates=()).counters_active(1e-3) is None
        assert evidence(rates=(None, None)).counters_active(1e-3) is None

    def test_probe_consensus(self):
        assert evidence(probe_ab=True, probe_ba=True).probe_consensus() == "ok"
        assert evidence(probe_ab=True, probe_ba=False).probe_consensus() == "fail"
        assert evidence().probe_consensus() == "unknown"
        assert evidence(probe_ab=True).probe_consensus() == "ok"


class TestHealthyLink:
    def test_clean_up(self):
        status = combine_link_evidence(evidence(probe_ab=True, probe_ba=True))
        assert status.verdict == LinkVerdict.UP
        assert status.forwarding is True
        assert status.usable

    def test_clean_down(self):
        status = combine_link_evidence(
            evidence(status_a=False, status_b=False, rates=(0.0,) * 4, probe_ab=False, probe_ba=False)
        )
        assert status.verdict == LinkVerdict.DOWN
        assert not status.usable


class TestPaperExample:
    """'If one side reports up and the other down, but rate counters
    are all large and a probe succeeds, the link is likely up.'"""

    def test_conflict_resolved_up_by_counters_and_probe(self):
        status = combine_link_evidence(
            evidence(status_a=True, status_b=False, probe_ab=True, probe_ba=True)
        )
        assert status.verdict == LinkVerdict.UP
        assert status.forwarding is True

    def test_conflict_with_idle_counters_and_failed_probe_is_down(self):
        status = combine_link_evidence(
            evidence(
                status_a=True,
                status_b=False,
                rates=(0.0,) * 4,
                probe_ab=False,
                probe_ba=False,
            )
        )
        assert status.verdict == LinkVerdict.DOWN

    def test_conflict_without_evidence_suspect(self):
        status = combine_link_evidence(
            evidence(status_a=True, status_b=False, rates=()),
            HodorConfig(use_probes=False),
        )
        assert status.verdict == LinkVerdict.SUSPECT


class TestSemanticFailure:
    def test_up_but_not_forwarding(self):
        status = combine_link_evidence(
            evidence(rates=(0.0,) * 4, probe_ab=False, probe_ba=False)
        )
        assert status.verdict == LinkVerdict.UP
        assert status.forwarding is False
        assert not status.usable  # usable requires forwarding

    def test_active_counters_outvote_single_probe_loss(self):
        status = combine_link_evidence(evidence(probe_ab=False, probe_ba=True))
        assert status.forwarding is True

    def test_down_status_with_traffic_is_suspect(self):
        status = combine_link_evidence(
            evidence(status_a=False, status_b=False, probe_ab=True, probe_ba=True)
        )
        assert status.verdict == LinkVerdict.SUSPECT


class TestRiskProfiles:
    def test_permissive_trusts_traffic_over_status(self):
        status = combine_link_evidence(
            evidence(status_a=False, status_b=False, probe_ab=True, probe_ba=True),
            HodorConfig(risk_profile=RiskProfile.PERMISSIVE),
        )
        assert status.verdict == LinkVerdict.UP

    def test_conservative_suspects_conflicts_despite_evidence(self):
        status = combine_link_evidence(
            evidence(status_a=True, status_b=False, probe_ab=True, probe_ba=True),
            HodorConfig(risk_profile=RiskProfile.CONSERVATIVE),
        )
        assert status.verdict == LinkVerdict.SUSPECT

    def test_conservative_suspects_failed_probe_on_idle_up_link(self):
        status = combine_link_evidence(
            evidence(rates=(0.0,) * 4, probe_ab=False, probe_ba=False),
            HodorConfig(risk_profile=RiskProfile.CONSERVATIVE),
        )
        assert status.verdict == LinkVerdict.SUSPECT


class TestAblations:
    def test_probes_ignored_when_disabled(self):
        status = combine_link_evidence(
            evidence(rates=(0.0,) * 4, probe_ab=False, probe_ba=False),
            HodorConfig(use_probes=False),
        )
        # without probes: status up, counters idle -> still up,
        # forwarding unknown-ish (False from idle counters)
        assert status.verdict == LinkVerdict.UP
        assert "probe:fail" not in status.evidence

    def test_counters_ignored_when_disabled(self):
        status = combine_link_evidence(
            evidence(status_a=False, status_b=False),
            HodorConfig(use_counters_for_status=False, use_probes=False),
        )
        assert status.verdict == LinkVerdict.DOWN

    def test_evidence_notes_present(self):
        status = combine_link_evidence(evidence(probe_ab=True, probe_ba=True))
        assert "status:up" in status.evidence
        assert "counters:active" in status.evidence
        assert "probe:ok" in status.evidence


class TestUnknownStatus:
    def test_unknown_with_traffic_up(self):
        status = combine_link_evidence(evidence(status_a=None, status_b=None, probe_ab=True))
        assert status.verdict == LinkVerdict.UP

    def test_unknown_idle_down(self):
        status = combine_link_evidence(
            evidence(status_a=None, status_b=None, rates=(0.0,) * 4, probe_ab=False)
        )
        assert status.verdict == LinkVerdict.DOWN

    def test_unknown_no_evidence_suspect(self):
        status = combine_link_evidence(
            evidence(status_a=None, status_b=None, rates=()),
            HodorConfig(use_probes=False),
        )
        assert status.verdict == LinkVerdict.SUSPECT
