"""Unit tests for the drain dynamic checker (Section 4.3)."""

import pytest

from repro.control.drain_service import DrainService
from repro.control.inputs import DrainView
from repro.core.pipeline import Hodor
from repro.core.drain_check import DrainChecker
from repro.faults.aggregation_faults import IgnoredDrain
from repro.faults.base import FaultInjector
from repro.faults.intent_faults import InconsistentLinkDrain, SpuriousDrain
from repro.net.topology import Node


@pytest.fixture
def hardened(abilene_topo, clean_snapshot):
    return Hodor(abilene_topo).harden(clean_snapshot)


class TestCleanDrains:
    def test_consistent_view_passes(self, abilene_topo, clean_snapshot, hardened):
        view = DrainService(abilene_topo).build(clean_snapshot)
        result = DrainChecker().check(view, hardened)
        assert result.passed

    def test_legit_drain_consistent(self, abilene_topo, abilene_demand):
        from repro.net.demand import DemandMatrix
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter

        topo = abilene_topo
        topo.replace_node(Node("kscy", site="Kansas City", drained=True))
        demand = DemandMatrix(topo.node_names())
        demand["atla", "hstn"] = 5.0
        truth = NetworkSimulator(topo, demand).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        hardened = Hodor(topo).harden(snapshot)
        view = DrainService(topo).build(snapshot)
        result = DrainChecker().check(view, hardened)
        assert result.passed


class TestNodeConsistency:
    def test_ignored_drain_detected(self, abilene_topo, clean_snapshot):
        # The router reports drained; the buggy drain service hides it.
        snapshot, _ = FaultInjector([SpuriousDrain(["kscy"])]).inject(clean_snapshot)
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo, [IgnoredDrain({"kscy"})]).build(snapshot)
        result = DrainChecker().check(view, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "drain/node-consistent/kscy" in violated

    def test_conflicted_hardened_state_skipped(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        del snapshot.drains["kscy"]
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainView(nodes={"kscy": False})
        result = DrainChecker().check(view, hardened)
        skipped = [
            r for r in result.results if r.invariant.name == "drain/node-consistent/kscy"
        ]
        assert skipped and skipped[0].status.value == "skipped"

    def test_fresh_preemptive_drain_noted_not_violated(self, abilene_topo, clean_snapshot):
        # Reported drained + input drained + still carrying = note.
        snapshot, _ = FaultInjector([SpuriousDrain(["kscy"])]).inject(clean_snapshot)
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        result = DrainChecker().check(view, hardened)
        assert result.passed  # the checker itself does not violate
        assert any("kscy" in note for note in result.notes)


class TestNodeCapability:
    def test_serving_router_with_dead_links_flagged(self, abilene_topo, abilene_demand):
        """Paper case 1: should be drained, is not, cannot carry."""
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter
        from repro.telemetry.probes import LinkHealth, ProbeEngine

        target = "dnvr"
        health = {
            abilene_topo.link_between(target, peer).name: LinkHealth(up=False)
            for peer in abilene_topo.neighbors(target)
        }
        blackholes = [
            direction
            for name in health
            for direction in abilene_topo.link(name).directions()
        ]
        truth = NetworkSimulator(abilene_topo, abilene_demand, blackholes=blackholes).run()
        snapshot = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(
            truth, health=health
        )
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo).build(snapshot)  # says serving
        result = DrainChecker().check(view, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert f"drain/node-capable/{target}" in violated


class TestLinkSymmetry:
    def test_inconsistent_link_drain_violates_symmetry(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector(
            [InconsistentLinkDrain([("atla", "hstn")])]
        ).inject(clean_snapshot)
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        result = DrainChecker().check(view, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "drain/link-symmetric/atla~hstn" in violated

    def test_agreed_link_drain_consistent(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_drains[("atla", "hstn")] = True
        snapshot.link_drains[("hstn", "atla")] = True
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        result = DrainChecker().check(view, hardened)
        assert result.passed

    def test_link_drain_mismatch_with_input(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_drains[("atla", "hstn")] = True
        snapshot.link_drains[("hstn", "atla")] = True
        hardened = Hodor(abilene_topo).harden(snapshot)
        view = DrainView(links={"atla~hstn": False})  # input disagrees
        result = DrainChecker().check(view, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "drain/link-consistent/atla~hstn" in violated
