"""Unit tests for topology/demand serialization round-trips."""

import json

import pytest

from repro.net import (
    demand_from_dict,
    demand_to_dict,
    gravity_demand,
    topology_from_dict,
    topology_to_dict,
)
from repro.net.demand import lognormal_demand
from repro.net.topology import Link, Node
from repro.topologies import abilene, b4, fat_tree_topology, waxman_topology


class TestTopologyRoundTrip:
    @pytest.mark.parametrize("factory", [abilene, b4, lambda: waxman_topology(15, seed=3)])
    def test_roundtrip_equal(self, factory):
        topology = factory()
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert rebuilt == topology
        assert rebuilt.name == topology.name

    def test_json_safe(self):
        payload = topology_to_dict(abilene())
        json.loads(json.dumps(payload))

    def test_preserves_intent_fields(self):
        topology = abilene()
        node = topology.node("kscy")
        topology.replace_node(
            Node("kscy", site=node.site, drained=True, drain_reason="maintenance")
        )
        topology.replace_link(Link("atla", "hstn", capacity=10.0, drained=True))
        rebuilt = topology_from_dict(topology_to_dict(topology))
        assert rebuilt.node("kscy").drained
        assert rebuilt.node("kscy").drain_reason == "maintenance"
        assert rebuilt.link_between("atla", "hstn").drained

    def test_defaults_tolerated(self):
        payload = {
            "nodes": [{"name": "a"}, {"name": "b"}],
            "links": [{"a": "a", "b": "b", "capacity": 5.0}],
        }
        rebuilt = topology_from_dict(payload)
        assert rebuilt.num_nodes == 2
        assert rebuilt.link_between("a", "b").capacity == 5.0

    def test_missing_fields_raise(self):
        with pytest.raises(KeyError):
            topology_from_dict({"nodes": [{"site": "x"}], "links": []})


class TestDemandRoundTrip:
    def test_sparse_roundtrip(self):
        demand = lognormal_demand(["a", "b", "c", "d"], total=40.0, seed=2)
        rebuilt = demand_from_dict(demand_to_dict(demand, sparse=True))
        assert rebuilt.allclose(demand)

    def test_dense_roundtrip(self):
        demand = gravity_demand(["a", "b", "c"], total=9.0, seed=1)
        rebuilt = demand_from_dict(demand_to_dict(demand, sparse=False))
        assert rebuilt.allclose(demand)

    def test_sparse_omits_zeros(self):
        demand = gravity_demand(["a", "b", "c"], total=9.0, seed=1)
        demand["a", "b"] = 0.0
        payload = demand_to_dict(demand, sparse=True)
        assert len(payload["entries"]) == len(demand.nonzero_entries())

    def test_json_safe(self):
        demand = gravity_demand(abilene().node_names(), total=30.0, seed=4)
        json.loads(json.dumps(demand_to_dict(demand)))

    def test_fat_tree_roundtrip(self):
        fabric = fat_tree_topology(k=4)
        assert topology_from_dict(topology_to_dict(fabric)) == fabric
