"""Unit tests for the topology instrumentation service."""

import pytest

from repro.control.topo_service import TopologyService
from repro.faults.aggregation_faults import (
    IgnoredDrain,
    LivenessMisreport,
    PartialTopologyStitch,
    StaleTopology,
)
from repro.faults.base import FaultInjector
from repro.faults.router_faults import (
    MalformedTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)


class TestCleanStitching:
    def test_full_topology_when_all_up(self, abilene_topo, clean_snapshot):
        view = TopologyService(abilene_topo).build(clean_snapshot)
        assert view.num_links == abilene_topo.num_links
        assert view.num_nodes == abilene_topo.num_nodes

    def test_capacities_from_reference(self, abilene_topo, clean_snapshot):
        view = TopologyService(abilene_topo).build(clean_snapshot)
        assert view.link_between("atla", "atlam").capacity == 2.5

    def test_one_end_down_excludes_link(self, abilene_topo, clean_snapshot):
        fault = WrongLinkStatus([("atla", "hstn")], report_up=False)
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        view = TopologyService(abilene_topo).build(snapshot)
        assert view.link_between("atla", "hstn") is None
        assert view.num_links == abilene_topo.num_links - 1

    def test_missing_status_treated_down(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        del snapshot.link_status[("atla", "hstn")]
        view = TopologyService(abilene_topo).build(snapshot)
        assert view.link_between("atla", "hstn") is None

    def test_malformed_status_treated_down(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_status[("atla", "hstn")].oper_up = "banana"
        view = TopologyService(abilene_topo).build(snapshot)
        assert view.link_between("atla", "hstn") is None

    def test_string_up_status_accepted(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_status[("atla", "hstn")].oper_up = "UP"
        view = TopologyService(abilene_topo).build(snapshot)
        assert view.link_between("atla", "hstn") is not None


class TestBugs:
    def test_partial_stitch_drops_touching_links(self, abilene_topo, clean_snapshot):
        service = TopologyService(abilene_topo, [PartialTopologyStitch({"kscy"})])
        view = service.build(clean_snapshot)
        assert view.link_between("kscy", "dnvr") is None
        assert view.link_between("kscy", "ipls") is None
        assert view.link_between("atla", "wash") is not None

    def test_liveness_misreport_down(self, abilene_topo, clean_snapshot):
        service = TopologyService(
            abilene_topo, [LivenessMisreport({"atla~hstn"}, report_up=False)]
        )
        view = service.build(clean_snapshot)
        assert view.link_between("atla", "hstn") is None

    def test_liveness_misreport_up_overrides_down_status(
        self, abilene_topo, clean_snapshot
    ):
        fault = WrongLinkStatus(
            [("atla", "hstn"), ("hstn", "atla")], report_up=False
        )
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        service = TopologyService(
            abilene_topo, [LivenessMisreport({"atla~hstn"}, report_up=True)]
        )
        view = service.build(snapshot)
        assert view.link_between("atla", "hstn") is not None

    def test_stale_topology_reports_everything(self, abilene_topo, clean_snapshot):
        fault = WrongLinkStatus([("atla", "hstn")], report_up=False)
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        view = TopologyService(abilene_topo, [StaleTopology()]).build(snapshot)
        assert view.num_links == abilene_topo.num_links

    def test_unsupported_bug_rejected(self, abilene_topo):
        with pytest.raises(TypeError):
            TopologyService(abilene_topo, [IgnoredDrain({"a"})])


class TestCounterLiveness:
    def test_disabled_by_default(self, abilene_topo, clean_snapshot):
        fault = ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        view = TopologyService(abilene_topo).build(snapshot)
        assert view.link_between("atla", "hstn") is not None

    def test_zeroed_rx_marks_link_faulty(self, abilene_topo, clean_snapshot):
        fault = ZeroedDuplicateTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        service = TopologyService(abilene_topo, infer_faulty_from_counters=True)
        view = service.build(snapshot)
        assert view.link_between("atla", "hstn") is None

    def test_malformed_counters_mark_link_faulty(self, abilene_topo, clean_snapshot):
        fault = MalformedTelemetry(interfaces=[("atla", "hstn")])
        snapshot, _ = FaultInjector([fault]).inject(clean_snapshot)
        service = TopologyService(abilene_topo, infer_faulty_from_counters=True)
        view = service.build(snapshot)
        assert view.link_between("atla", "hstn") is None

    def test_healthy_links_survive_counter_liveness(self, abilene_topo, clean_snapshot):
        service = TopologyService(abilene_topo, infer_faulty_from_counters=True)
        view = service.build(clean_snapshot)
        assert view.num_links == abilene_topo.num_links

    def test_idle_link_not_faulty(self, abilene_topo):
        # A link with zero traffic on both sides is idle, not faulty.
        from repro.net.demand import DemandMatrix
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter

        truth = NetworkSimulator(abilene_topo, DemandMatrix(abilene_topo.node_names())).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        service = TopologyService(abilene_topo, infer_faulty_from_counters=True)
        assert service.build(snapshot).num_links == abilene_topo.num_links
