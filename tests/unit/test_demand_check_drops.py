"""Unit tests for drop-aware egress checking in the demand checker.

The egress equality D-column-sum == external egress only holds on a
loss-free network; these tests pin the refinement that keeps the
checker sound under congestion.
"""

import pytest

from repro.core import Hodor
from repro.net.demand import DemandMatrix, gravity_demand, zero_entries
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies.abilene import abilene
from repro.topologies.synthetic import line_topology


def validate(topo, demand, input_demand=None):
    truth = NetworkSimulator(topo, demand).run()
    snapshot = TelemetryCollector(Jitter(0.005, seed=3)).collect(truth)
    hodor = Hodor(topo)
    return hodor.validate_demand(snapshot, input_demand or demand)


class TestCongestedNetwork:
    @pytest.fixture(scope="class")
    def congested(self):
        topo = abilene()
        # Unweighted gravity saturates the 2.5G atlam spur -> real loss.
        demand = gravity_demand(topo.node_names(), total=40.0, seed=11)
        truth = NetworkSimulator(topo, demand).run()
        assert truth.loss_rate() > 0.01  # precondition: lossy epoch
        return topo, demand

    def test_correct_demand_accepted_despite_loss(self, congested):
        topo, demand = congested
        report = validate(topo, demand)
        assert report.verdicts["demand"].valid

    def test_loss_allowance_noted(self, congested):
        topo, demand = congested
        report = validate(topo, demand)
        assert any("in-network" in note for note in report.checks["demand"].notes)

    def test_perturbed_demand_still_detected(self, congested):
        topo, demand = congested
        report = validate(topo, demand, input_demand=zero_entries(demand, 4, seed=2))
        assert not report.verdicts["demand"].valid

    def test_ingress_invariants_keep_full_precision(self, congested):
        """Drops never excuse an ingress mismatch -- demand enters the
        network before any drop happens."""
        topo, demand = congested
        inflated = demand.copy()
        src, dst, rate = max(demand.nonzero_entries(), key=lambda e: e[2])
        inflated[src, dst] = rate * 1.5
        report = validate(topo, demand, input_demand=inflated)
        violated = {v.invariant.name for v in report.checks["demand"].violations}
        assert f"demand/row-sum/{src}" in violated


class TestLossFreeNetwork:
    def test_no_allowance_without_drops(self):
        topo = line_topology(4, capacity=1000.0)
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r3"] = 5.0
        report = validate(topo, demand)
        assert report.verdicts["demand"].valid
        assert not any("in-network" in note for note in report.checks["demand"].notes)

    def test_small_zeroed_entry_detected_at_full_precision(self):
        topo = line_topology(4, capacity=1000.0)
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r3"] = 5.0
        demand["r1", "r3"] = 0.5
        missing = demand.copy()
        missing["r1", "r3"] = 0.0
        report = validate(topo, demand, input_demand=missing)
        assert not report.verdicts["demand"].valid


class TestAllowanceBound:
    def test_tolerance_capped(self):
        """Even absurd loss cannot push tolerance past the 95% cap --
        total garbage egress always stays detectable."""
        topo = line_topology(3, capacity=1.0)  # tiny pipes, huge demand
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r2"] = 100.0
        truth = NetworkSimulator(topo, demand).run()
        snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
        hodor = Hodor(topo)
        wild = DemandMatrix(topo.node_names())
        wild["r0", "r2"] = 100.0
        wild["r1", "r2"] = 5000.0  # absurd extra demand into r2
        report = hodor.validate_demand(snapshot, wild)
        assert not report.verdicts["demand"].valid
