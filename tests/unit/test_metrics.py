"""Unit tests for network health metrics."""

import pytest

from repro.control.metrics import HealthReport, Severity, assess_health
from repro.net.demand import DemandMatrix
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Link, Node, Topology


def two_hop(capacity: float) -> Topology:
    topo = Topology()
    for name in "abc":
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b", capacity=capacity))
    topo.add_link(Link("b", "c", capacity=capacity))
    return topo


def run_and_assess(capacity: float, rate: float) -> HealthReport:
    topo = two_hop(capacity)
    demand = DemandMatrix(["a", "b", "c"])
    if rate:
        demand["a", "c"] = rate
    truth = NetworkSimulator(topo, demand, strategy="single").run()
    return assess_health(truth, demand)


class TestSeverity:
    def test_ordering(self):
        assert Severity.OUTAGE.at_least(Severity.CONGESTED)
        assert Severity.CONGESTED.at_least(Severity.CONGESTED)
        assert not Severity.OK.at_least(Severity.DEGRADED)


class TestAssessHealth:
    def test_idle_network_ok(self):
        report = run_and_assess(capacity=10.0, rate=0.0)
        assert report.severity == Severity.OK
        assert report.mlu == 0.0
        assert report.delivered_fraction == 1.0

    def test_moderate_load_ok(self):
        report = run_and_assess(capacity=10.0, rate=5.0)
        assert report.severity == Severity.OK
        assert report.mlu == pytest.approx(0.5)

    def test_high_utilization_degraded(self):
        report = run_and_assess(capacity=10.0, rate=9.5)
        assert report.severity == Severity.DEGRADED

    def test_saturation_congested_or_worse(self):
        report = run_and_assess(capacity=10.0, rate=10.2)
        assert report.severity in (Severity.CONGESTED, Severity.OUTAGE)
        assert report.congested_links

    def test_heavy_loss_outage(self):
        report = run_and_assess(capacity=10.0, rate=15.0)
        assert report.severity == Severity.OUTAGE
        assert report.is_outage()
        assert report.loss_rate > 0.05

    def test_undelivered_demand_is_outage(self):
        # Demand the network never admits (unrouted) counts against
        # delivery even with zero in-network loss.
        topo = two_hop(10.0)
        demand = DemandMatrix(["a", "b", "c"])
        demand["a", "c"] = 5.0
        truth = NetworkSimulator(topo, demand, strategy="single").run()
        bigger_demand = DemandMatrix(["a", "b", "c"])
        bigger_demand["a", "c"] = 20.0  # true demand much larger
        report = assess_health(truth, bigger_demand)
        assert report.severity == Severity.OUTAGE
        assert report.delivered_fraction == pytest.approx(0.25)

    def test_summary_renders(self):
        report = run_and_assess(capacity=10.0, rate=5.0)
        text = report.summary()
        assert "ok" in text and "mlu" in text
