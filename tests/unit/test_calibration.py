"""Unit tests for tau_h calibration (footnote 2's procedure)."""

import pytest

from repro.core import HodorConfig, Hodor, calibrate_tau_h
from repro.faults import FaultInjector, MalformedTelemetry
from repro.net import NetworkSimulator, gravity_demand
from repro.telemetry import Jitter, TelemetryCollector
from repro.topologies import abilene


def history(jitter: float, epochs: int = 8):
    topo = abilene()
    snapshots = []
    for epoch in range(epochs):
        demand = gravity_demand(
            topo.node_names(),
            total=30.0 * (1 + 0.05 * (epoch % 4)),
            seed=epoch,
            weights={"atlam": 0.15},
        )
        truth = NetworkSimulator(topo, demand).run()
        snapshots.append(TelemetryCollector(Jitter(jitter, seed=epoch)).collect(truth))
    return topo, snapshots


class TestPaperOperatingPoint:
    def test_one_percent_jitter_recovers_two_percent(self):
        """Footnote 2 reproduced: calibrating on history with ~1%
        per-reading noise lands within a hair of the paper's 2%."""
        topo, snapshots = history(jitter=0.01)
        result = calibrate_tau_h(snapshots, topo)
        assert 0.015 <= result.recommended_tau_h <= 0.03

    def test_quieter_telemetry_tighter_threshold(self):
        topo, quiet = history(jitter=0.002)
        topo2, noisy = history(jitter=0.02)
        tight = calibrate_tau_h(quiet, topo)
        loose = calibrate_tau_h(noisy, topo2)
        assert tight.recommended_tau_h < loose.recommended_tau_h

    def test_calibrated_threshold_produces_no_false_flags(self):
        """Closing the loop: harden a fresh clean epoch with the
        calibrated threshold and nothing gets flagged."""
        topo, snapshots = history(jitter=0.01)
        result = calibrate_tau_h(snapshots, topo)
        demand = gravity_demand(
            topo.node_names(), total=33.0, seed=99, weights={"atlam": 0.15}
        )
        truth = NetworkSimulator(topo, demand).run()
        fresh = TelemetryCollector(Jitter(0.01, seed=99)).collect(truth)
        hodor = Hodor(topo, HodorConfig(tau_h=min(0.5, result.recommended_tau_h)))
        hardened = hodor.harden(fresh)
        assert hardened.unknown_edges() == []


class TestMechanics:
    def test_result_fields_consistent(self):
        topo, snapshots = history(jitter=0.01, epochs=3)
        result = calibrate_tau_h(snapshots, topo, quantile=0.99, safety_margin=1.5)
        assert result.recommended_tau_h == pytest.approx(result.quantile_gap * 1.5)
        assert result.quantile_gap <= result.max_gap
        assert result.samples == 3 * 2 * topo.num_links

    def test_malformed_readings_skipped(self):
        topo, snapshots = history(jitter=0.01, epochs=2)
        corrupted, _ = FaultInjector(
            [MalformedTelemetry(interfaces=[("atla", "hstn")])]
        ).inject(snapshots[0])
        result = calibrate_tau_h([corrupted, snapshots[1]], topo)
        # the malformed pair contributes nothing, everything else does
        assert result.samples < 2 * 2 * topo.num_links

    def test_idle_pairs_skipped(self):
        from repro.net.demand import DemandMatrix

        topo = abilene()
        truth = NetworkSimulator(topo, DemandMatrix(topo.node_names())).run()
        snapshot = TelemetryCollector(Jitter(0.01, seed=0)).collect(truth)
        with pytest.raises(ValueError):
            calibrate_tau_h([snapshot], topo)  # all pairs idle -> nothing to measure

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            calibrate_tau_h([], abilene())

    @pytest.mark.parametrize("kwargs", [{"quantile": 0.0}, {"quantile": 1.5}, {"safety_margin": 0.5}])
    def test_bad_params(self, kwargs):
        topo, snapshots = history(jitter=0.01, epochs=2)
        with pytest.raises(ValueError):
            calibrate_tau_h(snapshots, topo, **kwargs)
