"""Unit tests for the topology dynamic checker."""

import pytest

from repro.control.topo_service import TopologyService
from repro.core.pipeline import Hodor
from repro.core.topology_check import TopologyChecker
from repro.faults.aggregation_faults import LivenessMisreport, PartialTopologyStitch
from repro.net.topology import Link


@pytest.fixture
def hardened(abilene_topo, clean_snapshot):
    return Hodor(abilene_topo).harden(clean_snapshot)


class TestCleanTopology:
    def test_correct_view_passes(self, abilene_topo, clean_snapshot, hardened):
        view = TopologyService(abilene_topo).build(clean_snapshot)
        result = TopologyChecker().check(view, hardened)
        assert result.passed
        assert result.num_evaluated == abilene_topo.num_links

    def test_one_invariant_per_link(self, abilene_topo, clean_snapshot, hardened):
        view = TopologyService(abilene_topo).build(clean_snapshot)
        result = TopologyChecker().check(view, hardened)
        names = {r.invariant.name for r in result.results}
        assert f"topology/live-iff-up/atla~hstn" in names


class TestMissingLinks:
    def test_partial_stitch_detected(self, abilene_topo, clean_snapshot, hardened):
        service = TopologyService(abilene_topo, [PartialTopologyStitch({"kscy"})])
        view = service.build(clean_snapshot)
        result = TopologyChecker().check(view, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "topology/live-iff-up/ipls~kscy" in violated
        assert len(result.violations) == 3  # kscy has 3 links

    def test_liveness_down_detected(self, abilene_topo, clean_snapshot, hardened):
        service = TopologyService(
            abilene_topo, [LivenessMisreport({"atla~hstn"}, report_up=False)]
        )
        view = service.build(clean_snapshot)
        result = TopologyChecker().check(view, hardened)
        assert {v.invariant.name for v in result.violations} == {
            "topology/live-iff-up/atla~hstn"
        }


class TestPhantomLinks:
    def test_link_unknown_to_hardening_flagged(self, hardened, abilene_topo):
        phantom = abilene_topo.copy()
        phantom.add_link(Link("atla", "chin", capacity=10.0))  # does not exist
        result = TopologyChecker().check(phantom, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "topology/unknown-link/atla~chin" in violated

    def test_dead_link_believed_live(self, abilene_topo, abilene_demand):
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter
        from repro.telemetry.probes import LinkHealth, ProbeEngine

        health = {"atla~hstn": LinkHealth(up=False)}
        blackholes = [("atla", "hstn"), ("hstn", "atla")]
        truth = NetworkSimulator(abilene_topo, abilene_demand, blackholes=blackholes).run()
        snapshot = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(
            truth, health=health
        )
        hardened = Hodor(abilene_topo).harden(snapshot)
        # A stale/buggy service view that still includes the dead link:
        believed = abilene_topo.copy()
        result = TopologyChecker().check(believed, hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "topology/live-iff-up/atla~hstn" in violated


class TestSemanticForwarding:
    def test_blackholed_link_in_view_flagged(self, abilene_topo, abilene_demand):
        from repro.net.simulation import NetworkSimulator
        from repro.telemetry.collector import TelemetryCollector
        from repro.telemetry.counters import Jitter
        from repro.telemetry.probes import LinkHealth, ProbeEngine

        health = {"atla~hstn": LinkHealth(up=True, forwarding=False)}
        blackholes = [("atla", "hstn"), ("hstn", "atla")]
        truth = NetworkSimulator(abilene_topo, abilene_demand, blackholes=blackholes).run()
        snapshot = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(
            truth, health=health
        )
        hardened = Hodor(abilene_topo).harden(snapshot)
        result = TopologyChecker().check(abilene_topo.copy(), hardened)
        violated = {v.invariant.name for v in result.violations}
        assert "topology/forwarding/atla~hstn" in violated


class TestSuspectHandling:
    def test_suspect_links_skipped_with_note(self, abilene_topo, clean_snapshot):
        from repro.core.config import HodorConfig

        snapshot = clean_snapshot.copy()
        # Create a pure status conflict with no counters or probes to
        # arbitrate -> suspect verdict.
        snapshot.link_status[("atla", "hstn")].oper_up = False
        del snapshot.counters[("atla", "hstn")]
        del snapshot.counters[("hstn", "atla")]
        snapshot.probes.pop(("atla", "hstn"), None)
        snapshot.probes.pop(("hstn", "atla"), None)
        hardened = Hodor(abilene_topo, HodorConfig(enable_repair=False)).harden(snapshot)
        view = abilene_topo.copy()
        result = TopologyChecker().check(view, hardened)
        assert any("suspect" in note for note in result.notes)
        assert result.num_skipped >= 1
