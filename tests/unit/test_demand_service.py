"""Unit tests for the demand instrumentation service."""

import pytest

from repro.control.demand_service import DemandRecord, DemandService, records_from_matrix
from repro.faults.aggregation_faults import IgnoredDrain
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)
from repro.net.demand import gravity_demand, uniform_demand

NODES = ["a", "b", "c"]


class TestDemandRecord:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            DemandRecord("a", "b", -1.0)

    def test_self_demand_rejected(self):
        with pytest.raises(ValueError):
            DemandRecord("a", "a", 1.0)


class TestRecordsFromMatrix:
    def test_sum_recovers_matrix(self):
        matrix = gravity_demand(NODES, total=9.0, seed=2)
        records = records_from_matrix(matrix, shards_per_pair=4, seed=1)
        rebuilt = DemandService(NODES).build(records)
        assert rebuilt.allclose(matrix, rel_tol=1e-9)

    def test_shard_count(self):
        matrix = uniform_demand(NODES, 1.0)
        records = records_from_matrix(matrix, shards_per_pair=3, seed=0)
        # 6 pairs x up-to-3 shards (zero-width shards dropped)
        assert len(records) <= 18
        assert len(records) >= 6

    def test_single_shard(self):
        matrix = uniform_demand(NODES, 2.0)
        records = records_from_matrix(matrix, shards_per_pair=1)
        assert len(records) == 6
        assert all(record.rate == 2.0 for record in records)

    def test_bad_shards(self):
        with pytest.raises(ValueError):
            records_from_matrix(uniform_demand(NODES, 1.0), shards_per_pair=0)


class TestCleanAggregation:
    def test_records_for_unknown_routers_dropped(self):
        service = DemandService(NODES)
        matrix = service.build([DemandRecord("a", "b", 1.0), DemandRecord("x", "y", 5.0)])
        assert matrix.total() == 1.0

    def test_multiple_records_sum(self):
        service = DemandService(NODES)
        matrix = service.build(
            [DemandRecord("a", "b", 1.0), DemandRecord("a", "b", 2.5)]
        )
        assert matrix["a", "b"] == 3.5

    def test_empty_records(self):
        assert DemandService(NODES).build([]).total() == 0.0


class TestBugs:
    def test_partial_drops_fraction(self):
        matrix = uniform_demand(NODES, 2.0)
        records = records_from_matrix(matrix, shards_per_pair=1)
        service = DemandService(NODES, [PartialDemandAggregation(drop_fraction=1.0)])
        assert service.build(records).total() == 0.0

    def test_partial_explicit_pairs(self):
        records = [DemandRecord("a", "b", 1.0), DemandRecord("b", "c", 2.0)]
        service = DemandService(
            NODES, [PartialDemandAggregation(drop_pairs=[("a", "b")])]
        )
        matrix = service.build(records)
        assert matrix["a", "b"] == 0.0
        assert matrix["b", "c"] == 2.0

    def test_partial_reproducible(self):
        matrix = uniform_demand(NODES, 2.0)
        records = records_from_matrix(matrix, shards_per_pair=3, seed=5)
        bug = PartialDemandAggregation(drop_fraction=0.5, seed=42)
        first = DemandService(NODES, [bug]).build(records)
        second = DemandService(NODES, [bug]).build(records)
        assert first == second

    def test_double_count_scales_subset(self):
        records = [DemandRecord("a", "b", 1.0)]
        service = DemandService(NODES, [DoubleCountedDemand(fraction=1.0, multiplier=2.0)])
        assert service.build(records)["a", "b"] == 2.0

    def test_throttle_does_not_change_measurement(self):
        # The throttling bug corrupts the *network*, not the measurement.
        records = [DemandRecord("a", "b", 4.0)]
        service = DemandService(NODES, [ThrottledDemandMismatch(admitted_fraction=0.5)])
        assert service.build(records)["a", "b"] == 4.0

    def test_unsupported_bug_rejected(self):
        with pytest.raises(TypeError):
            DemandService(NODES, [IgnoredDrain({"a"})])
