"""Unit tests for network snapshots."""


from repro.telemetry.counters import CounterReading
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot, ProbeResult


def small_snapshot() -> NetworkSnapshot:
    snapshot = NetworkSnapshot(timestamp=100.0)
    snapshot.counters[("a", "b")] = CounterReading(rx_rate=1.0, tx_rate=2.0)
    snapshot.counters[("b", "a")] = CounterReading(rx_rate=2.0, tx_rate=1.0)
    snapshot.link_status[("a", "b")] = LinkStatusReport(oper_up=True)
    snapshot.link_status[("b", "a")] = LinkStatusReport(oper_up=True)
    snapshot.drains["a"] = False
    snapshot.drains["b"] = True
    snapshot.drops["a"] = 0.0
    snapshot.link_drains[("a", "b")] = False
    snapshot.probes[("a", "b")] = ProbeResult(ok=True, rtt_ms=3.0)
    return snapshot


class TestQueries:
    def test_nodes(self):
        assert small_snapshot().nodes() == ["a", "b"]

    def test_interface_keys_sorted_union(self):
        snapshot = small_snapshot()
        assert snapshot.interface_keys() == [("a", "b"), ("b", "a")]

    def test_counter_lookup(self):
        snapshot = small_snapshot()
        assert snapshot.counter("a", "b").tx_rate == 2.0
        assert snapshot.counter("x", "y") is None

    def test_status_lookup(self):
        assert small_snapshot().status("a", "b").oper_up is True
        assert small_snapshot().status("zz", "a") is None

    def test_probe_lookup(self):
        assert small_snapshot().probe("a", "b").ok
        assert small_snapshot().probe("b", "a") is None

    def test_interfaces_of(self):
        assert small_snapshot().interfaces_of("a") == [("a", "b")]

    def test_signal_count(self):
        snapshot = small_snapshot()
        # 2 counters x2 + 2 statuses x2 + 2 drains + 1 link drain + 1 drop + 1 probe
        assert snapshot.signal_count() == 4 + 4 + 2 + 1 + 1 + 1


class TestMutation:
    def test_copy_deep_for_counters(self):
        snapshot = small_snapshot()
        clone = snapshot.copy()
        clone.counters[("a", "b")].rx_rate = 99.0
        assert snapshot.counters[("a", "b")].rx_rate == 1.0

    def test_copy_independent_maps(self):
        snapshot = small_snapshot()
        clone = snapshot.copy()
        clone.drains["a"] = True
        assert snapshot.drains["a"] is False

    def test_drop_node_removes_everything(self):
        snapshot = small_snapshot()
        snapshot.drop_node("a")
        assert "a" not in snapshot.drains
        assert "a" not in snapshot.drops
        assert snapshot.counter("a", "b") is None
        assert snapshot.status("a", "b") is None
        assert snapshot.probe("a", "b") is None
        # b's signals survive
        assert snapshot.counter("b", "a") is not None

    def test_drop_unknown_node_noop(self):
        snapshot = small_snapshot()
        snapshot.drop_node("ghost")
        assert snapshot.nodes() == ["a", "b"]


class TestReportCopies:
    def test_status_copy(self):
        report = LinkStatusReport(oper_up=True, admin_up=False)
        clone = report.copy()
        clone.oper_up = False
        assert report.oper_up is True
