"""SnapshotDelta: validation-aware, defensive epoch diffing."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.counters import CounterReading
from repro.telemetry.delta import (
    SnapshotDelta,
    _changed_counters,
    _changed_keys,
    _counters_equal,
)
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot, ProbeResult

from tests.engine.conftest import random_epoch


def _snapshot(timestamp=0.0, **families):
    return NetworkSnapshot(timestamp=timestamp, **families)


def _reading(rx=1.0, tx=2.0, **kwargs):
    return CounterReading(rx_rate=rx, tx_rate=tx, **kwargs)


class TestCounterFamily:
    def test_identical_snapshots_are_empty(self):
        old = _snapshot(counters={("a", "b"): _reading()})
        new = _snapshot(counters={("a", "b"): _reading()})
        delta = SnapshotDelta.between(old, new)
        assert delta.is_empty()
        assert delta.total_changed() == 0

    def test_rate_change_dirties_the_interface(self):
        old = _snapshot(counters={("a", "b"): _reading(rx=1.0)})
        new = _snapshot(counters={("a", "b"): _reading(rx=1.5)})
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}

    def test_sequence_and_window_are_validation_invisible(self):
        """Collection never reads sequence/window_s, so bumps don't dirty."""
        old = _snapshot(counters={("a", "b"): _reading(window_s=5.0, sequence=1)})
        new = _snapshot(counters={("a", "b"): _reading(window_s=9.0, sequence=7)})
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).is_empty()

    def test_added_and_removed_keys_both_dirty(self):
        old = _snapshot(counters={("a", "b"): _reading(), ("b", "a"): _reading()})
        new = _snapshot(counters={("b", "a"): _reading(), ("c", "d"): _reading()})
        assert SnapshotDelta.between(old, new).counters == {("a", "b"), ("c", "d")}

    def test_type_change_dirties_even_when_eq_agrees(self):
        old = _snapshot(counters={("a", "b"): _reading(rx=1.0)})
        new = _snapshot(counters={("a", "b"): _reading(rx=True)})  # 1.0 == True
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}

    def test_raising_eq_counts_as_changed(self):
        class Hostile:
            def __eq__(self, other):
                raise RuntimeError("malformed telemetry")

        old = _snapshot(counters={("a", "b"): _reading(rx=Hostile())})
        new = _snapshot(counters={("a", "b"): _reading(rx=Hostile())})
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}

    def test_same_nan_object_is_unchanged(self):
        """An epoch replaying the identical NaN object reuses its verdict."""
        nan = float("nan")
        old = _snapshot(counters={("a", "b"): _reading(rx=nan)})
        new = _snapshot(counters={("a", "b"): _reading(rx=nan)})
        assert SnapshotDelta.between(old, new).is_empty()

    def test_distinct_nan_objects_stay_changed(self):
        """NaN != NaN keeps a NaN reading dirty -- the safe direction."""
        old = _snapshot(counters={("a", "b"): _reading(rx=float("nan"))})
        new = _snapshot(counters={("a", "b"): _reading(rx=math.nan * 1.0)})
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}


class TestStalenessSignature:
    def test_aging_across_the_bound_dirties(self):
        """Unchanged bytes, but collection's staleness verdict flips."""
        reading = dict(rx=1.0, tx=2.0, timestamp=0.0)
        old = _snapshot(timestamp=30.0, counters={("a", "b"): _reading(**reading)})
        new = _snapshot(timestamp=90.0, counters={("a", "b"): _reading(**reading)})
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).counters == {
            ("a", "b")
        }

    def test_fresh_on_both_sides_is_clean(self):
        reading = dict(rx=1.0, tx=2.0, timestamp=0.0)
        old = _snapshot(timestamp=10.0, counters={("a", "b"): _reading(**reading)})
        new = _snapshot(timestamp=40.0, counters={("a", "b"): _reading(**reading)})
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).is_empty()

    def test_stale_with_same_rendered_age_is_clean(self):
        """The STALE_READING finding renders the age; equal text == equal."""
        old = _snapshot(
            timestamp=100.0, counters={("a", "b"): _reading(timestamp=0.0)}
        )
        new = _snapshot(
            timestamp=130.0, counters={("a", "b"): _reading(timestamp=30.0)}
        )
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).is_empty()

    def test_stale_with_different_rendered_age_dirties(self):
        old = _snapshot(
            timestamp=100.0, counters={("a", "b"): _reading(timestamp=0.0)}
        )
        new = _snapshot(
            timestamp=200.0, counters={("a", "b"): _reading(timestamp=0.0)}
        )
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).counters == {
            ("a", "b")
        }

    def test_without_bound_staleness_is_ignored(self):
        reading = dict(rx=1.0, tx=2.0, timestamp=0.0)
        old = _snapshot(timestamp=30.0, counters={("a", "b"): _reading(**reading)})
        new = _snapshot(timestamp=9000.0, counters={("a", "b"): _reading(**reading)})
        assert SnapshotDelta.between(old, new).is_empty()


class TestOtherFamilies:
    def test_status_flip_dirties(self):
        old = _snapshot(link_status={("a", "b"): LinkStatusReport(oper_up=True)})
        new = _snapshot(link_status={("a", "b"): LinkStatusReport(oper_up=False)})
        assert SnapshotDelta.between(old, new).statuses == {("a", "b")}

    def test_probe_flip_and_rtt_change_dirty(self):
        old = _snapshot(
            probes={("a", "b"): ProbeResult(ok=True, rtt_ms=1.0),
                    ("b", "a"): ProbeResult(ok=True, rtt_ms=1.0)}
        )
        new = _snapshot(
            probes={("a", "b"): ProbeResult(ok=False, rtt_ms=1.0),
                    ("b", "a"): ProbeResult(ok=True, rtt_ms=2.0)}
        )
        assert SnapshotDelta.between(old, new).probes == {("a", "b"), ("b", "a")}

    def test_router_families_dirty_independently(self):
        old = _snapshot(
            drains={"a": False, "b": False},
            drain_reasons={"a": ""},
            drops={"a": 0.0},
            link_drains={("a", "b"): False},
        )
        new = _snapshot(
            drains={"a": True, "b": False},
            drain_reasons={"a": "maintenance"},
            drops={"a": 0.0},
            link_drains={("a", "b"): True},
        )
        delta = SnapshotDelta.between(old, new)
        assert delta.drains == {"a"}
        assert delta.drain_reasons == {"a"}
        assert delta.drops == frozenset()
        assert delta.link_drains == {("a", "b")}

    def test_touched_routers_spans_every_family(self):
        old = _snapshot(
            counters={("a", "x"): _reading()},
            drains={"b": False},
            probes={("c", "d"): ProbeResult(ok=True)},
        )
        new = _snapshot(
            counters={("a", "x"): _reading(rx=9.0)},
            drains={"b": True},
            probes={("c", "d"): ProbeResult(ok=False)},
        )
        assert SnapshotDelta.between(old, new).touched_routers() == {"a", "b", "c"}


class TestUnrolledCountersAgreeWithReference:
    """The hot-path ``_changed_counters`` vs the generic predicate."""

    @pytest.mark.parametrize("size,seed", [(8, 1), (12, 2)])
    @pytest.mark.parametrize("staleness", [None, 60.0, 0.5])
    def test_real_world_snapshots(self, size, seed, staleness):
        _topology, snap_a, _inputs = random_epoch(size, seed)
        _topology, snap_b, _inputs = random_epoch(size, seed + 100)
        snap_b = NetworkSnapshot(
            timestamp=snap_a.timestamp + 30.0,
            counters=dict(snap_b.counters),
        )
        fast = _changed_counters(snap_a, snap_b, staleness)
        reference = _changed_keys(
            snap_a.counters,
            snap_b.counters,
            lambda a, b: _counters_equal(snap_a, snap_b, a, b, staleness),
        )
        assert fast == reference

    def test_hostile_values(self):
        class Hostile:
            def __eq__(self, other):
                raise RuntimeError("no")

        nan = float("nan")
        old = _snapshot(
            counters={
                ("a", "b"): _reading(rx=nan, tx=Hostile()),
                ("b", "a"): _reading(rx="3.0", tx=None),
                ("c", "d"): _reading(),
            }
        )
        new = _snapshot(
            counters={
                ("a", "b"): _reading(rx=nan, tx=Hostile()),
                ("b", "a"): _reading(rx="3.0", tx=None),
                ("d", "c"): _reading(),
            }
        )
        fast = _changed_counters(old, new, 60.0)
        reference = _changed_keys(
            old.counters,
            new.counters,
            lambda a, b: _counters_equal(old, new, a, b, 60.0),
        )
        assert fast == reference
        assert ("a", "b") in fast  # Hostile tx counts as changed
        assert ("b", "a") not in fast  # equal str/None payloads are clean


def _assemble(events, snapshot, lateness_s=1.0):
    """Push an event sequence through an assembler; return the snapshot."""
    from repro.stream import EpochAssembler, reporting_routers

    assembler = EpochAssembler(reporting_routers(snapshot), lateness_s=lateness_s)
    sealed = []
    for event in events:
        sealed.extend(assembler.offer(event))
    sealed.extend(assembler.drain())
    assert len(sealed) == 1
    return sealed[0].snapshot


def _events_for(snapshot):
    from repro.stream import UpdateEvent, reporting_routers, router_updates

    events = []
    for router in reporting_routers(snapshot):
        for uid, (path, value, meta) in enumerate(router_updates(snapshot, router)):
            events.append(
                UpdateEvent(
                    router=router,
                    path=path,
                    epoch_ts=snapshot.timestamp,
                    emit_ts=snapshot.timestamp,
                    uid=uid,
                    value=value,
                    meta=meta,
                )
            )
    return events


class TestAssemblerStreamInvariance:
    """Reordered/duplicated update streams cannot change the delta.

    The streaming path replaces batch snapshots with per-path update
    events; the incremental engine then diffs the assembled snapshot
    against the previous epoch.  These properties pin the contract the
    stream subsystem leans on: for *any* permutation of the update
    sequence, with arbitrary duplicated deliveries mixed in, the
    assembled snapshot produces exactly the canonical SnapshotDelta.
    """

    @given(
        seed=st.integers(min_value=0, max_value=3),
        order_seed=st.integers(min_value=0, max_value=2**16),
        dup_stride=st.integers(min_value=2, max_value=7),
        staleness=st.sampled_from([None, 60.0]),
    )
    @settings(max_examples=15, deadline=None)
    def test_permuted_duplicated_stream_yields_same_delta(
        self, seed, order_seed, dup_stride, staleness
    ):
        _topology, previous, _inputs = random_epoch(8, seed)
        _topology, target, _inputs = random_epoch(8, seed + 100)
        target = NetworkSnapshot(
            timestamp=previous.timestamp + 30.0,
            counters=dict(target.counters),
            link_status=dict(target.link_status),
            drains=dict(target.drains),
            drain_reasons=dict(target.drain_reasons),
            drops=dict(target.drops),
            link_drains=dict(target.link_drains),
            probes=dict(target.probes),
        )
        canonical = SnapshotDelta.between(previous, target, max_staleness_s=staleness)

        events = _events_for(target)
        rng = random.Random(order_seed)
        rng.shuffle(events)
        stream = []
        for index, event in enumerate(events):
            stream.append(event)
            if index % dup_stride == 0:  # redeliver with the same uid
                stream.append(event)
        assembled = _assemble(stream, target)

        # Lossless codec: assembly reproduced the target signal-for-signal.
        assert SnapshotDelta.between(target, assembled, max_staleness_s=staleness).is_empty()
        delta = SnapshotDelta.between(previous, assembled, max_staleness_s=staleness)
        assert delta == canonical

    def test_interleaved_counter_halves_merge_order_free(self):
        """rx/tx halves of distinct interfaces arriving interleaved and
        reversed still merge into the exact canonical readings."""
        target = _snapshot(
            timestamp=30.0,
            counters={
                ("a", "b"): _reading(rx=1.0, tx=2.0, timestamp=25.0, sequence=3),
                ("a", "c"): _reading(rx=4.0, tx=8.0, timestamp=26.0, sequence=4),
            },
        )
        previous = _snapshot(
            timestamp=0.0,
            counters={
                ("a", "b"): _reading(rx=1.0, tx=2.0, timestamp=25.0, sequence=3),
                ("a", "c"): _reading(rx=4.0, tx=7.0),
            },
        )
        events = _events_for(target)
        assembled = _assemble(reversed(events), target)
        delta = SnapshotDelta.between(previous, assembled)
        assert delta.counters == {("a", "c")}
        assert delta == SnapshotDelta.between(previous, target)

    def test_duplicated_counter_updates_are_deduped_not_reapplied(self):
        from repro.stream import EpochAssembler, reporting_routers

        target = _snapshot(timestamp=10.0, counters={("a", "b"): _reading()})
        events = _events_for(target)
        assembler = EpochAssembler(reporting_routers(target), lateness_s=1.0)
        sealed = []
        for event in events + events + events:  # every update delivered thrice
            sealed.extend(assembler.offer(event))
        sealed.extend(assembler.drain())
        (epoch,) = sealed
        assert epoch.duplicates == len(events) * 2
        assert epoch.updates == len(events)
        assert SnapshotDelta.between(target, epoch.snapshot).is_empty()
