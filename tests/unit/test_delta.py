"""SnapshotDelta: validation-aware, defensive epoch diffing."""

import math

import pytest

from repro.telemetry.counters import CounterReading
from repro.telemetry.delta import (
    SnapshotDelta,
    _changed_counters,
    _changed_keys,
    _counters_equal,
)
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot, ProbeResult

from tests.engine.conftest import random_epoch


def _snapshot(timestamp=0.0, **families):
    return NetworkSnapshot(timestamp=timestamp, **families)


def _reading(rx=1.0, tx=2.0, **kwargs):
    return CounterReading(rx_rate=rx, tx_rate=tx, **kwargs)


class TestCounterFamily:
    def test_identical_snapshots_are_empty(self):
        old = _snapshot(counters={("a", "b"): _reading()})
        new = _snapshot(counters={("a", "b"): _reading()})
        delta = SnapshotDelta.between(old, new)
        assert delta.is_empty()
        assert delta.total_changed() == 0

    def test_rate_change_dirties_the_interface(self):
        old = _snapshot(counters={("a", "b"): _reading(rx=1.0)})
        new = _snapshot(counters={("a", "b"): _reading(rx=1.5)})
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}

    def test_sequence_and_window_are_validation_invisible(self):
        """Collection never reads sequence/window_s, so bumps don't dirty."""
        old = _snapshot(counters={("a", "b"): _reading(window_s=5.0, sequence=1)})
        new = _snapshot(counters={("a", "b"): _reading(window_s=9.0, sequence=7)})
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).is_empty()

    def test_added_and_removed_keys_both_dirty(self):
        old = _snapshot(counters={("a", "b"): _reading(), ("b", "a"): _reading()})
        new = _snapshot(counters={("b", "a"): _reading(), ("c", "d"): _reading()})
        assert SnapshotDelta.between(old, new).counters == {("a", "b"), ("c", "d")}

    def test_type_change_dirties_even_when_eq_agrees(self):
        old = _snapshot(counters={("a", "b"): _reading(rx=1.0)})
        new = _snapshot(counters={("a", "b"): _reading(rx=True)})  # 1.0 == True
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}

    def test_raising_eq_counts_as_changed(self):
        class Hostile:
            def __eq__(self, other):
                raise RuntimeError("malformed telemetry")

        old = _snapshot(counters={("a", "b"): _reading(rx=Hostile())})
        new = _snapshot(counters={("a", "b"): _reading(rx=Hostile())})
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}

    def test_same_nan_object_is_unchanged(self):
        """An epoch replaying the identical NaN object reuses its verdict."""
        nan = float("nan")
        old = _snapshot(counters={("a", "b"): _reading(rx=nan)})
        new = _snapshot(counters={("a", "b"): _reading(rx=nan)})
        assert SnapshotDelta.between(old, new).is_empty()

    def test_distinct_nan_objects_stay_changed(self):
        """NaN != NaN keeps a NaN reading dirty -- the safe direction."""
        old = _snapshot(counters={("a", "b"): _reading(rx=float("nan"))})
        new = _snapshot(counters={("a", "b"): _reading(rx=math.nan * 1.0)})
        assert SnapshotDelta.between(old, new).counters == {("a", "b")}


class TestStalenessSignature:
    def test_aging_across_the_bound_dirties(self):
        """Unchanged bytes, but collection's staleness verdict flips."""
        reading = dict(rx=1.0, tx=2.0, timestamp=0.0)
        old = _snapshot(timestamp=30.0, counters={("a", "b"): _reading(**reading)})
        new = _snapshot(timestamp=90.0, counters={("a", "b"): _reading(**reading)})
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).counters == {
            ("a", "b")
        }

    def test_fresh_on_both_sides_is_clean(self):
        reading = dict(rx=1.0, tx=2.0, timestamp=0.0)
        old = _snapshot(timestamp=10.0, counters={("a", "b"): _reading(**reading)})
        new = _snapshot(timestamp=40.0, counters={("a", "b"): _reading(**reading)})
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).is_empty()

    def test_stale_with_same_rendered_age_is_clean(self):
        """The STALE_READING finding renders the age; equal text == equal."""
        old = _snapshot(
            timestamp=100.0, counters={("a", "b"): _reading(timestamp=0.0)}
        )
        new = _snapshot(
            timestamp=130.0, counters={("a", "b"): _reading(timestamp=30.0)}
        )
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).is_empty()

    def test_stale_with_different_rendered_age_dirties(self):
        old = _snapshot(
            timestamp=100.0, counters={("a", "b"): _reading(timestamp=0.0)}
        )
        new = _snapshot(
            timestamp=200.0, counters={("a", "b"): _reading(timestamp=0.0)}
        )
        assert SnapshotDelta.between(old, new, max_staleness_s=60.0).counters == {
            ("a", "b")
        }

    def test_without_bound_staleness_is_ignored(self):
        reading = dict(rx=1.0, tx=2.0, timestamp=0.0)
        old = _snapshot(timestamp=30.0, counters={("a", "b"): _reading(**reading)})
        new = _snapshot(timestamp=9000.0, counters={("a", "b"): _reading(**reading)})
        assert SnapshotDelta.between(old, new).is_empty()


class TestOtherFamilies:
    def test_status_flip_dirties(self):
        old = _snapshot(link_status={("a", "b"): LinkStatusReport(oper_up=True)})
        new = _snapshot(link_status={("a", "b"): LinkStatusReport(oper_up=False)})
        assert SnapshotDelta.between(old, new).statuses == {("a", "b")}

    def test_probe_flip_and_rtt_change_dirty(self):
        old = _snapshot(
            probes={("a", "b"): ProbeResult(ok=True, rtt_ms=1.0),
                    ("b", "a"): ProbeResult(ok=True, rtt_ms=1.0)}
        )
        new = _snapshot(
            probes={("a", "b"): ProbeResult(ok=False, rtt_ms=1.0),
                    ("b", "a"): ProbeResult(ok=True, rtt_ms=2.0)}
        )
        assert SnapshotDelta.between(old, new).probes == {("a", "b"), ("b", "a")}

    def test_router_families_dirty_independently(self):
        old = _snapshot(
            drains={"a": False, "b": False},
            drain_reasons={"a": ""},
            drops={"a": 0.0},
            link_drains={("a", "b"): False},
        )
        new = _snapshot(
            drains={"a": True, "b": False},
            drain_reasons={"a": "maintenance"},
            drops={"a": 0.0},
            link_drains={("a", "b"): True},
        )
        delta = SnapshotDelta.between(old, new)
        assert delta.drains == {"a"}
        assert delta.drain_reasons == {"a"}
        assert delta.drops == frozenset()
        assert delta.link_drains == {("a", "b")}

    def test_touched_routers_spans_every_family(self):
        old = _snapshot(
            counters={("a", "x"): _reading()},
            drains={"b": False},
            probes={("c", "d"): ProbeResult(ok=True)},
        )
        new = _snapshot(
            counters={("a", "x"): _reading(rx=9.0)},
            drains={"b": True},
            probes={("c", "d"): ProbeResult(ok=False)},
        )
        assert SnapshotDelta.between(old, new).touched_routers() == {"a", "b", "c"}


class TestUnrolledCountersAgreeWithReference:
    """The hot-path ``_changed_counters`` vs the generic predicate."""

    @pytest.mark.parametrize("size,seed", [(8, 1), (12, 2)])
    @pytest.mark.parametrize("staleness", [None, 60.0, 0.5])
    def test_real_world_snapshots(self, size, seed, staleness):
        _topology, snap_a, _inputs = random_epoch(size, seed)
        _topology, snap_b, _inputs = random_epoch(size, seed + 100)
        snap_b = NetworkSnapshot(
            timestamp=snap_a.timestamp + 30.0,
            counters=dict(snap_b.counters),
        )
        fast = _changed_counters(snap_a, snap_b, staleness)
        reference = _changed_keys(
            snap_a.counters,
            snap_b.counters,
            lambda a, b: _counters_equal(snap_a, snap_b, a, b, staleness),
        )
        assert fast == reference

    def test_hostile_values(self):
        class Hostile:
            def __eq__(self, other):
                raise RuntimeError("no")

        nan = float("nan")
        old = _snapshot(
            counters={
                ("a", "b"): _reading(rx=nan, tx=Hostile()),
                ("b", "a"): _reading(rx="3.0", tx=None),
                ("c", "d"): _reading(),
            }
        )
        new = _snapshot(
            counters={
                ("a", "b"): _reading(rx=nan, tx=Hostile()),
                ("b", "a"): _reading(rx="3.0", tx=None),
                ("d", "c"): _reading(),
            }
        )
        fast = _changed_counters(old, new, 60.0)
        reference = _changed_keys(
            old.counters,
            new.counters,
            lambda a, b: _counters_equal(old, new, a, b, 60.0),
        )
        assert fast == reference
        assert ("a", "b") in fast  # Hostile tx counts as changed
        assert ("b", "a") not in fast  # equal str/None payloads are clean
