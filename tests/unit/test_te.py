"""Unit tests for the traffic-engineering allocator."""

import pytest

from repro.control.te import greedy_te
from repro.net.demand import DemandMatrix
from repro.net.flows import edge_offered_loads
from repro.net.topology import Link, Node, Topology
from repro.topologies.synthetic import line_topology, ring_topology


def parallel_paths(cap_top: float = 10.0, cap_bottom: float = 10.0) -> Topology:
    """a to d via b (top) or c (bottom), equal hop count."""
    topo = Topology("parallel")
    for name in "abcd":
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b", capacity=cap_top))
    topo.add_link(Link("b", "d", capacity=cap_top))
    topo.add_link(Link("a", "c", capacity=cap_bottom))
    topo.add_link(Link("c", "d", capacity=cap_bottom))
    return topo


class TestBasicPlacement:
    def test_all_demand_placed(self):
        topo = parallel_paths()
        demand = DemandMatrix(topo.node_names())
        demand["a", "d"] = 5.0
        assignment = greedy_te(topo, demand)
        assert assignment.rate_for("a", "d") == pytest.approx(5.0)
        assert assignment.unrouted == {}

    def test_fits_on_one_path_stays_on_one_path(self):
        topo = parallel_paths()
        demand = DemandMatrix(topo.node_names())
        demand["a", "d"] = 5.0
        assignment = greedy_te(topo, demand, target_utilization=0.9)
        assert len(assignment.rules[("a", "d")]) == 1

    def test_spreads_when_exceeding_headroom(self):
        topo = parallel_paths()
        demand = DemandMatrix(topo.node_names())
        demand["a", "d"] = 15.0  # headroom on one path is 9.0
        assignment = greedy_te(topo, demand, target_utilization=0.9)
        rules = assignment.rules[("a", "d")]
        assert len(rules) == 2
        assert sum(rule.rate for rule in rules) == pytest.approx(15.0)
        assert max(rule.rate for rule in rules) == pytest.approx(9.0)

    def test_spill_lands_on_shortest_path(self):
        topo = parallel_paths()
        demand = DemandMatrix(topo.node_names())
        demand["a", "d"] = 25.0  # exceeds total headroom of 18
        assignment = greedy_te(topo, demand, target_utilization=0.9)
        assert assignment.rate_for("a", "d") == pytest.approx(25.0)
        loads = edge_offered_loads(assignment)
        # spill went somewhere; offered load exceeds headroom on one route
        assert max(loads.values()) > 9.0

    def test_largest_demand_first(self):
        # The big pair should claim the direct path's headroom before
        # small pairs are placed.
        topo = line_topology(3, capacity=10.0)
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r2"] = 9.0
        demand["r1", "r2"] = 1.0
        assignment = greedy_te(topo, demand, target_utilization=0.9)
        # both fit; total on r1->r2 = 10 > headroom 9, so the later
        # (smaller) pair spills past the target -- placement is greedy.
        assert assignment.rate_for("r0", "r2") == pytest.approx(9.0)
        assert assignment.rate_for("r1", "r2") == pytest.approx(1.0)

    def test_unrouted_for_missing_node(self, line5):
        demand = DemandMatrix(["r0", "ghost"])
        demand["r0", "ghost"] = 2.0
        assignment = greedy_te(line5, demand)
        assert assignment.unrouted == {("r0", "ghost"): 2.0}

    def test_unrouted_for_disconnected(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        demand = DemandMatrix(["a", "b"])
        demand["a", "b"] = 1.0
        assert greedy_te(topo, demand).unrouted == {("a", "b"): 1.0}

    def test_zero_demand_empty_assignment(self, line5):
        assignment = greedy_te(line5, DemandMatrix(line5.node_names()))
        assert assignment.rules == {}

    @pytest.mark.parametrize("target", [0.0, -0.5, 1.5])
    def test_bad_target_utilization(self, line5, target):
        with pytest.raises(ValueError):
            greedy_te(line5, DemandMatrix(line5.node_names()), target_utilization=target)

    def test_deterministic(self):
        topo = ring_topology(6)
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r3"] = 7.0
        demand["r1", "r4"] = 3.0
        first = greedy_te(topo, demand)
        second = greedy_te(topo, demand)
        assert {
            pair: [(r.path.nodes, r.rate) for r in rules]
            for pair, rules in first.rules.items()
        } == {
            pair: [(r.path.nodes, r.rate) for r in rules]
            for pair, rules in second.rules.items()
        }

    def test_respects_k_budget(self):
        topo = ring_topology(6)
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r3"] = 500.0  # absurdly big, would love many paths
        assignment = greedy_te(topo, demand, k=2)
        assert len(assignment.rules[("r0", "r3")]) <= 2
