"""Unit tests for the invariant machinery."""

import pytest

from repro.core.invariants import (
    CheckResult,
    Invariant,
    InvariantResult,
    InvariantStatus,
    relative_error,
)


class TestRelativeError:
    def test_exact_equality(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_relative(self):
        assert relative_error(100.0, 98.0) == pytest.approx(0.02)

    def test_symmetric(self):
        assert relative_error(98.0, 100.0) == relative_error(100.0, 98.0)

    def test_floor_protects_zero(self):
        assert relative_error(0.0, 1e-9, floor=1e-6) == 0.0

    def test_zero_vs_large(self):
        assert relative_error(0.0, 10.0) == 1.0


class TestInvariant:
    def test_pass_within_tolerance(self):
        result = Invariant("x", "a == b", 100.0, 101.0, tolerance=0.02).evaluate()
        assert result.status == InvariantStatus.PASSED
        assert not result.violated

    def test_violation(self):
        result = Invariant("x", "a == b", 100.0, 110.0, tolerance=0.02).evaluate()
        assert result.status == InvariantStatus.VIOLATED
        assert result.violated
        assert result.error == pytest.approx(10.0 / 110.0)

    def test_skip_on_unknown_lhs(self):
        result = Invariant("x", "a == b", None, 1.0, tolerance=0.02).evaluate()
        assert result.status == InvariantStatus.SKIPPED
        assert result.error is None

    def test_skip_on_unknown_rhs(self):
        result = Invariant("x", "a == b", 1.0, None, tolerance=0.02).evaluate()
        assert result.status == InvariantStatus.SKIPPED

    def test_zero_tolerance_boolean_style(self):
        assert Invariant("x", "cond", 1.0, 1.0, tolerance=0.0).evaluate().status == (
            InvariantStatus.PASSED
        )
        assert Invariant("x", "cond", 1.0, 0.0, tolerance=0.0).evaluate().status == (
            InvariantStatus.VIOLATED
        )

    def test_describe_renders(self):
        result = Invariant("inv/name", "a == b", 1.0, 2.0, tolerance=0.02).evaluate()
        text = result.describe()
        assert "inv/name" in text and "violated" in text


class TestCheckResult:
    def _result(self, status, error=0.0):
        invariant = Invariant("i", "d", 1.0, 1.0, 0.0)
        return InvariantResult(invariant, status, error)

    def test_counts(self):
        check = CheckResult(
            "demand",
            results=[
                self._result(InvariantStatus.PASSED),
                self._result(InvariantStatus.VIOLATED, 1.0),
                self._result(InvariantStatus.SKIPPED, None),
            ],
        )
        assert check.num_evaluated == 2
        assert check.num_skipped == 1
        assert len(check.violations) == 1
        assert not check.passed

    def test_empty_check_passes(self):
        assert CheckResult("topology").passed

    def test_summary(self):
        check = CheckResult("drain", results=[self._result(InvariantStatus.PASSED)])
        assert "drain" in check.summary()
