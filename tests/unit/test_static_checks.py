"""Unit tests for the static-check baseline (today's practice)."""

import pytest

from repro.baselines.static_checks import StaticCheckConfig, StaticValidator
from repro.control.inputs import ControllerInputs, DrainView
from repro.net.demand import DemandMatrix, gravity_demand, zero_entries
from repro.net.topology import Link, Node
from repro.topologies.abilene import abilene


def make_inputs(topo, demand=None, drains=None):
    return ControllerInputs(
        topology=topo,
        demand=demand if demand is not None else DemandMatrix(topo.node_names()),
        drains=drains or DrainView(),
    )


@pytest.fixture
def reference():
    return abilene()


@pytest.fixture
def trained(reference):
    validator = StaticValidator(reference)
    demand = gravity_demand(reference.node_names(), total=30.0, seed=1)
    for epoch in range(6):
        wiggle = 1.0 + 0.04 * ((epoch % 3) - 1)
        validator.observe(make_inputs(reference.copy(), demand.scaled(wiggle)))
    return validator


class TestImpossibleChecks:
    def test_clean_inputs_pass(self, reference):
        validator = StaticValidator(reference)
        demand = gravity_demand(reference.node_names(), total=30.0, seed=1)
        assert validator.check(make_inputs(reference.copy(), demand)).passed

    def test_unknown_node_caught(self, reference):
        topo = reference.copy()
        topo.add_node(Node("intruder"))
        report = StaticValidator(reference).check(make_inputs(topo))
        assert any(v.check == "topology/unknown-nodes" for v in report.impossible())

    def test_too_many_nodes_caught(self, reference):
        topo = reference.copy()
        for i in range(3):
            topo.add_node(Node(f"extra{i}"))
        report = StaticValidator(reference).check(make_inputs(topo))
        assert any(v.check == "topology/node-count" for v in report.impossible())

    def test_unknown_link_caught(self, reference):
        topo = reference.copy()
        topo.add_link(Link("atla", "sttl"))  # not in inventory
        report = StaticValidator(reference).check(make_inputs(topo))
        assert any(v.check == "topology/unknown-link" for v in report.impossible())

    def test_capacity_above_physical_caught(self, reference):
        topo = reference.copy()
        topo.replace_link(Link("atla", "hstn", capacity=400.0))
        report = StaticValidator(reference).check(make_inputs(topo))
        assert any(v.check == "topology/capacity" for v in report.impossible())

    def test_unknown_demand_nodes_caught(self, reference):
        demand = DemandMatrix(["atla", "notreal"])
        report = StaticValidator(reference).check(make_inputs(reference.copy(), demand))
        assert any(v.check == "demand/unknown-nodes" for v in report.impossible())

    def test_unknown_drain_nodes_caught(self, reference):
        drains = DrainView(nodes={"phantom": True})
        report = StaticValidator(reference).check(make_inputs(reference.copy(), drains=drains))
        assert any(v.check == "drain/unknown-nodes" for v in report.impossible())


class TestHeuristicChecks:
    def test_demand_total_band(self, trained, reference):
        demand = gravity_demand(reference.node_names(), total=90.0, seed=1)  # 3x history
        report = trained.check(make_inputs(reference.copy(), demand))
        assert any(v.check == "demand/total-band" for v in report.unlikely())

    def test_entry_cap(self, trained, reference):
        demand = gravity_demand(reference.node_names(), total=30.0, seed=1)
        src, dst, rate = demand.nonzero_entries()[0]
        demand[src, dst] = rate * 100
        report = trained.check(make_inputs(reference.copy(), demand))
        assert any(v.check == "demand/entry-cap" for v in report.unlikely())

    def test_link_floor(self, trained, reference):
        topo = reference.copy()
        for link in list(topo.links())[:8]:
            topo.remove_link(link.a, link.b)
        report = trained.check(make_inputs(topo))
        assert any(v.check == "topology/link-floor" for v in report.unlikely())

    def test_mass_drain_heuristic(self, trained, reference):
        drains = DrainView(nodes={n: True for n in ["sttl", "snva", "losa", "dnvr"]})
        report = trained.check(make_inputs(reference.copy(), drains=drains))
        assert any(v.check == "drain/mass-drain" for v in report.unlikely())

    def test_no_history_no_heuristics(self, reference):
        validator = StaticValidator(reference)
        demand = gravity_demand(reference.node_names(), total=500.0, seed=1)
        report = validator.check(make_inputs(reference.copy(), demand))
        assert report.unlikely() == []


class TestPaperCriticisms:
    def test_misses_currently_wrong_but_plausible_demand(self, trained, reference):
        """The paper's core criticism: a matrix with a few zeroed
        entries is historically plausible -- static checks pass it."""
        demand = gravity_demand(reference.node_names(), total=30.0, seed=1)
        buggy = zero_entries(demand, 3, seed=9)
        report = trained.check(make_inputs(reference.copy(), buggy))
        assert report.passed

    def test_false_positive_on_legitimate_disaster(self, trained, reference):
        """The Section 1 disaster: a legitimate mass drain is rejected."""
        drains = DrainView(nodes={n: True for n in ["sttl", "snva", "losa", "dnvr"]})
        report = trained.check(make_inputs(reference.copy(), drains=drains))
        assert not report.passed  # wrongly flagged


class TestConfig:
    def test_custom_band(self, reference):
        validator = StaticValidator(
            reference, StaticCheckConfig(total_demand_band=0.01)
        )
        demand = gravity_demand(reference.node_names(), total=30.0, seed=1)
        validator.observe(make_inputs(reference.copy(), demand))
        report = validator.check(make_inputs(reference.copy(), demand.scaled(1.1)))
        assert any(v.check == "demand/total-band" for v in report.unlikely())
