"""Unit tests for the flow-conservation solver (R2)."""

import pytest

from repro.core.flow_repair import (
    drop_var,
    edge_var,
    ext_in_var,
    ext_out_var,
    solve_flow_conservation,
)


def line_system(unknown_edges=(), **overrides):
    """The Figure 3 line network: A -> B -> C.

    A->B carries 76, B->C carries 75; ext_in A=76, B=23; ext_out B=24,
    C=75; no drops.
    """
    nodes = ["A", "B", "C"]
    edges = [("A", "B"), ("B", "A"), ("B", "C"), ("C", "B")]
    edge_values = {("A", "B"): 76.0, ("B", "A"): 0.0, ("B", "C"): 75.0, ("C", "B"): 0.0}
    ext_in = {"A": 76.0, "B": 23.0, "C": 0.0}
    ext_out = {"A": 0.0, "B": 24.0, "C": 75.0}
    drops = {"A": 0.0, "B": 0.0, "C": 0.0}
    for key in unknown_edges:
        edge_values[key] = None
    for mapping, updates in overrides.items():
        locals()[mapping].update(updates)  # pragma: no cover - unused
    return nodes, edges, edge_values, ext_in, ext_out, drops


class TestFig3Repair:
    def test_solves_missing_edge(self):
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system(
            unknown_edges=[("A", "B")]
        )
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values[edge_var("A", "B")] == pytest.approx(76.0)
        assert result.num_unknowns == 1
        assert result.is_consistent(0.01)

    def test_solves_missing_external(self):
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system()
        ext_in["B"] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values[ext_in_var("B")] == pytest.approx(23.0)

    def test_solves_missing_drop(self):
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system()
        drops["B"] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values[drop_var("B")] == pytest.approx(0.0)

    def test_solves_two_separated_unknowns(self):
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system(
            unknown_edges=[("A", "B"), ("B", "C")]
        )
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values[edge_var("A", "B")] == pytest.approx(76.0)
        assert result.values[edge_var("B", "C")] == pytest.approx(75.0)

    def test_no_unknowns_reports_residual(self):
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system()
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.num_unknowns == 0
        assert result.residual == pytest.approx(0.0, abs=1e-9)

    def test_corrupted_known_raises_residual(self):
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system()
        edge_values[("A", "B")] = 120.0  # corrupted but not flagged
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.residual > 0.1


class TestUnderdetermined:
    def test_colocated_unknowns_not_uniquely_solved(self):
        # Both ext_in and ext_out unknown at B: only their difference is
        # determined, so neither value may be "repaired".
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system()
        ext_in["B"] = None
        ext_out["B"] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values[ext_in_var("B")] is None
        assert result.values[ext_out_var("B")] is None

    def test_rank_bound_respected(self):
        # Up to |V| - 1 unknowns are recoverable (paper): with 3 nodes
        # and 4 independent-equation unknowns, some must stay unknown.
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system(
            unknown_edges=[("A", "B"), ("B", "C")]
        )
        ext_in["A"] = None
        ext_out["C"] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        unsolved = [key for key, value in result.values.items() if value is None]
        assert unsolved  # cannot recover 4 unknowns from 3 equations

    def test_edge_unknown_disentangled_by_far_end(self):
        # An unknown edge value and an unknown drop at its head look
        # entangled in B's equation alone (x + d = 75), but the edge
        # also appears in C's equation, which pins x = 75 and therefore
        # d = 0.  Interior edges are doubly constrained.
        nodes, edges, edge_values, ext_in, ext_out, drops = line_system(
            unknown_edges=[("B", "C")]
        )
        drops["B"] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values[edge_var("B", "C")] == pytest.approx(75.0)
        assert result.values[drop_var("B")] == pytest.approx(0.0)


class TestNumericalHygiene:
    def test_tiny_negative_clamped(self):
        nodes = ["A", "B"]
        edges = [("A", "B"), ("B", "A")]
        edge_values = {("A", "B"): None, ("B", "A"): 0.0}
        # Zero traffic everywhere: solution should be 0, possibly a
        # hair negative from floating point.
        result = solve_flow_conservation(
            nodes,
            edges,
            edge_values,
            {"A": 0.0, "B": 0.0},
            {"A": 0.0, "B": 0.0},
            {"A": 0.0, "B": 0.0},
        )
        assert result.values[edge_var("A", "B")] == 0.0

    def test_meaningfully_negative_preserved(self):
        # Inconsistent knowns force a negative solution; the solver
        # must not hide it (the hardener flags it).
        nodes = ["A", "B"]
        edges = [("A", "B"), ("B", "A")]
        edge_values = {("A", "B"): None, ("B", "A"): 0.0}
        result = solve_flow_conservation(
            nodes,
            edges,
            edge_values,
            {"A": 0.0, "B": 10.0},
            {"A": 10.0, "B": 0.0},
            {"A": 0.0, "B": 0.0},
        )
        value = result.values[edge_var("A", "B")]
        assert value is not None and value < -1.0

    def test_large_scale_relative_residual(self):
        # Residuals are scaled by system magnitude so Gbps-scale noise
        # does not read as inconsistency.
        nodes = ["A", "B"]
        edges = [("A", "B"), ("B", "A")]
        edge_values = {("A", "B"): 1e9, ("B", "A"): 0.0}
        result = solve_flow_conservation(
            nodes,
            edges,
            edge_values,
            {"A": 1.001e9, "B": 0.0},
            {"A": 0.0, "B": 1e9},
            {"A": 0.0, "B": 0.0},
        )
        assert result.residual < 0.01
