"""Unit tests for the drain instrumentation service."""

import pytest

from repro.control.drain_service import DrainService
from repro.faults.aggregation_faults import IgnoredDrain, StaleTopology
from repro.faults.base import FaultInjector
from repro.faults.intent_faults import InconsistentLinkDrain, SpuriousDrain


class TestCleanAggregation:
    def test_no_drains(self, abilene_topo, clean_snapshot):
        view = DrainService(abilene_topo).build(clean_snapshot)
        assert view.drained_nodes() == []
        assert view.drained_links() == []

    def test_reported_drain_propagates(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector([SpuriousDrain(["kscy"])]).inject(clean_snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        assert view.is_node_drained("kscy")
        assert view.drained_nodes() == ["kscy"]

    def test_missing_report_means_serving(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        del snapshot.drains["kscy"]
        view = DrainService(abilene_topo).build(snapshot)
        assert not view.is_node_drained("kscy")

    def test_string_drain_values(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.drains["kscy"] = "drained"
        snapshot.drains["atla"] = "garbage-value"
        view = DrainService(abilene_topo).build(snapshot)
        assert view.is_node_drained("kscy")
        assert not view.is_node_drained("atla")

    def test_either_endpoint_drains_link(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector(
            [InconsistentLinkDrain([("atla", "hstn")])]
        ).inject(clean_snapshot)
        view = DrainService(abilene_topo).build(snapshot)
        assert view.is_link_drained("atla~hstn")


class TestIgnoredDrainBug:
    def test_bug_hides_node_drain(self, abilene_topo, clean_snapshot):
        snapshot, _ = FaultInjector([SpuriousDrain(["kscy"])]).inject(clean_snapshot)
        service = DrainService(abilene_topo, [IgnoredDrain({"kscy"})])
        view = service.build(snapshot)
        assert not view.is_node_drained("kscy")

    def test_bug_hides_link_drain_from_that_endpoint(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_drains[("kscy", "ipls")] = True
        service = DrainService(abilene_topo, [IgnoredDrain({"kscy"})])
        view = service.build(snapshot)
        assert not view.is_link_drained("ipls~kscy")

    def test_peer_report_still_counts(self, abilene_topo, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_drains[("ipls", "kscy")] = True  # reported by ipls
        service = DrainService(abilene_topo, [IgnoredDrain({"kscy"})])
        assert service.build(snapshot).is_link_drained("ipls~kscy")

    def test_unsupported_bug_rejected(self, abilene_topo):
        with pytest.raises(TypeError):
            DrainService(abilene_topo, [StaleTopology()])
