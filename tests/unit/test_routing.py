"""Unit tests for path computation."""

import pytest

from repro.net.routing import (
    NoRouteError,
    Path,
    ecmp_paths,
    k_shortest_paths,
    path_cost,
    path_links,
    shortest_path,
    shortest_path_lengths,
)
from repro.net.topology import Link, Node, Topology, TopologyError
from repro.topologies.synthetic import grid_topology, ring_topology


def diamond() -> Topology:
    """a - {b, c} - d with an extra long route a-e-f-d."""
    topo = Topology("diamond")
    for name in "abcdef":
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b"))
    topo.add_link(Link("b", "d"))
    topo.add_link(Link("a", "c"))
    topo.add_link(Link("c", "d"))
    topo.add_link(Link("a", "e"))
    topo.add_link(Link("e", "f"))
    topo.add_link(Link("f", "d"))
    return topo


class TestPath:
    def test_properties(self):
        path = Path(("a", "b", "c"))
        assert path.source == "a"
        assert path.destination == "c"
        assert path.hops == 2
        assert len(path) == 3
        assert list(path) == ["a", "b", "c"]

    def test_edges(self):
        assert Path(("a", "b", "c")).edges() == [("a", "b"), ("b", "c")]

    def test_single_node_path(self):
        path = Path(("a",))
        assert path.hops == 0
        assert path.edges() == []

    def test_revisit_rejected(self):
        with pytest.raises(TopologyError):
            Path(("a", "b", "a"))

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Path(())


class TestShortestPath:
    def test_line(self, line5):
        path = shortest_path(line5, "r0", "r4")
        assert path.nodes == ("r0", "r1", "r2", "r3", "r4")

    def test_same_source_destination(self, line5):
        assert shortest_path(line5, "r2", "r2").nodes == ("r2",)

    def test_no_route(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        with pytest.raises(NoRouteError):
            shortest_path(topo, "a", "b")

    def test_unknown_endpoint(self, line5):
        with pytest.raises(TopologyError):
            shortest_path(line5, "r0", "ghost")

    def test_custom_cost(self):
        topo = diamond()
        # Make the b route expensive; c route should win.
        cost = lambda u, v: 10.0 if "b" in (u, v) else 1.0  # noqa: E731
        path = shortest_path(topo, "a", "d", cost)
        assert path.nodes == ("a", "c", "d")

    def test_negative_cost_rejected(self):
        topo = diamond()
        with pytest.raises(ValueError):
            shortest_path(topo, "a", "d", lambda u, v: -1.0)

    def test_deterministic_among_equal_cost(self):
        topo = diamond()
        first = shortest_path(topo, "a", "d")
        for _ in range(5):
            assert shortest_path(topo, "a", "d") == first


class TestShortestPathLengths:
    def test_line_distances(self, line5):
        distances = shortest_path_lengths(line5, "r0")
        assert distances["r4"] == 4.0
        assert distances["r0"] == 0.0

    def test_unreachable_absent(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        distances = shortest_path_lengths(topo, "a")
        assert "b" not in distances

    def test_unknown_source(self, line5):
        with pytest.raises(TopologyError):
            shortest_path_lengths(line5, "ghost")


class TestKShortestPaths:
    def test_finds_all_three_diamond_routes(self):
        paths = k_shortest_paths(diamond(), "a", "d", 3)
        assert len(paths) == 3
        assert paths[0].hops == 2
        assert paths[1].hops == 2
        assert paths[2].nodes == ("a", "e", "f", "d")

    def test_ordered_by_cost(self):
        paths = k_shortest_paths(diamond(), "a", "d", 3)
        costs = [path_cost(p) for p in paths]
        assert costs == sorted(costs)

    def test_fewer_paths_than_k(self, line5):
        paths = k_shortest_paths(line5, "r0", "r4", 5)
        assert len(paths) == 1  # a line has exactly one simple path

    def test_paths_are_simple(self):
        for path in k_shortest_paths(grid_topology(3, 3), "g0-0", "g2-2", 8):
            assert len(set(path.nodes)) == len(path.nodes)

    def test_paths_unique(self):
        paths = k_shortest_paths(grid_topology(3, 3), "g0-0", "g2-2", 10)
        assert len({p.nodes for p in paths}) == len(paths)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond(), "a", "d", 0)

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        with pytest.raises(NoRouteError):
            k_shortest_paths(topo, "a", "b", 2)

    def test_does_not_mutate_topology(self):
        topo = diamond()
        before = topo.num_links
        k_shortest_paths(topo, "a", "d", 3)
        assert topo.num_links == before


class TestEcmp:
    def test_two_equal_cost_routes(self):
        paths = ecmp_paths(diamond(), "a", "d")
        assert len(paths) == 2
        assert {p.nodes[1] for p in paths} == {"b", "c"}

    def test_ring_has_single_shortest(self):
        topo = ring_topology(5)
        paths = ecmp_paths(topo, "r0", "r1")
        assert len(paths) == 1

    def test_even_ring_two_routes_to_opposite(self):
        topo = ring_topology(4)
        paths = ecmp_paths(topo, "r0", "r2")
        assert len(paths) == 2


class TestPathHelpers:
    def test_path_cost_default_hops(self):
        assert path_cost(Path(("a", "b", "c"))) == 2.0

    def test_path_links(self, line5):
        path = shortest_path(line5, "r0", "r2")
        assert path_links(line5, path) == ["r0~r1", "r1~r2"]

    def test_path_links_missing_link(self, line5):
        with pytest.raises(TopologyError):
            path_links(line5, Path(("r0", "r2")))
