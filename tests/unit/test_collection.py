"""Unit tests for Hodor's collection step (step 1)."""

import pytest

from repro.core.collection import SignalCollector
from repro.core.config import HodorConfig
from repro.faults.base import FaultInjector
from repro.faults.router_faults import DelayedTelemetry, MalformedTelemetry
from repro.net.topology import EXTERNAL_PEER


class TestCleanCollection:
    def test_counters_coerced(self, clean_snapshot):
        state = SignalCollector().collect(clean_snapshot)
        counter = state.counter("atla", "hstn")
        assert isinstance(counter.rx, float)
        assert isinstance(counter.tx, float)
        assert state.findings == []

    def test_statuses_coerced(self, clean_snapshot):
        state = SignalCollector().collect(clean_snapshot)
        assert state.statuses[("atla", "hstn")].oper_up is True

    def test_drains_and_drops(self, clean_snapshot):
        state = SignalCollector().collect(clean_snapshot)
        assert state.drains["atla"] is False
        assert state.drops["atla"] == pytest.approx(0.0)

    def test_probes_copied(self, clean_snapshot):
        state = SignalCollector().collect(clean_snapshot)
        assert state.probes[("atla", "hstn")] is True

    def test_external_counters_present(self, clean_snapshot):
        state = SignalCollector().collect(clean_snapshot)
        assert state.counter("atla", EXTERNAL_PEER) is not None


class TestDefensiveCoercion:
    def test_malformed_counter_becomes_none_with_finding(self, clean_snapshot):
        snapshot, _ = FaultInjector(
            [MalformedTelemetry(interfaces=[("atla", "hstn")])]
        ).inject(clean_snapshot)
        state = SignalCollector().collect(snapshot)
        counter = state.counter("atla", "hstn")
        assert counter.rx is None and counter.tx is None
        codes = [finding.code for finding in state.findings]
        assert codes.count("MALFORMED_COUNTER") == 2  # rx and tx

    def test_malformed_status_flagged(self, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.link_status[("atla", "hstn")].oper_up = "???"
        state = SignalCollector().collect(snapshot)
        assert state.statuses[("atla", "hstn")].oper_up is None
        assert any(f.code == "MALFORMED_STATUS" for f in state.findings)

    def test_malformed_drain_flagged(self, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.drains["atla"] = "whatever"
        state = SignalCollector().collect(snapshot)
        assert state.drains["atla"] is None
        assert any(f.code == "MALFORMED_DRAIN" for f in state.findings)

    def test_malformed_drops_flagged(self, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.drops["atla"] = "NaN-ish garbage"
        state = SignalCollector().collect(snapshot)
        assert state.drops["atla"] is None
        assert any(f.code == "MALFORMED_DROPS" for f in state.findings)

    def test_string_booleans_accepted(self, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.drains["atla"] = "drained"
        snapshot.link_status[("atla", "hstn")].oper_up = "up"
        state = SignalCollector().collect(snapshot)
        assert state.drains["atla"] is True
        assert state.statuses[("atla", "hstn")].oper_up is True

    def test_parseable_string_rate_accepted(self, clean_snapshot):
        snapshot = clean_snapshot.copy()
        snapshot.counters[("atla", "hstn")].tx_rate = "123.5"
        state = SignalCollector().collect(snapshot)
        assert state.counter("atla", "hstn").tx == 123.5


class TestStaleness:
    def test_stale_reading_dropped(self, clean_snapshot):
        snapshot, _ = FaultInjector(
            [DelayedTelemetry(interfaces=[("atla", "hstn")], delay_s=600.0)]
        ).inject(clean_snapshot)
        state = SignalCollector(HodorConfig(max_staleness_s=60.0)).collect(snapshot)
        counter = state.counter("atla", "hstn")
        assert counter.rx is None and counter.tx is None
        assert any(f.code == "STALE_READING" for f in state.findings)

    def test_fresh_reading_within_bound_kept(self, clean_snapshot):
        snapshot, _ = FaultInjector(
            [DelayedTelemetry(interfaces=[("atla", "hstn")], delay_s=30.0, drift=1.0)]
        ).inject(clean_snapshot)
        state = SignalCollector(HodorConfig(max_staleness_s=60.0)).collect(snapshot)
        assert state.counter("atla", "hstn").rx is not None
