"""Unit tests for flow placement."""

import pytest

from repro.net.demand import DemandMatrix, uniform_demand
from repro.net.flows import (
    FlowAssignment,
    FlowRule,
    PlacementError,
    edge_offered_loads,
    place_flows,
)
from repro.net.routing import Path
from repro.net.topology import Link, Node, Topology
from repro.topologies.synthetic import ring_topology


def square() -> Topology:
    topo = Topology("square")
    for name in "abcd":
        topo.add_node(Node(name))
    topo.add_link(Link("a", "b"))
    topo.add_link(Link("b", "c"))
    topo.add_link(Link("c", "d"))
    topo.add_link(Link("d", "a"))
    return topo


class TestFlowRule:
    def test_negative_rate_rejected(self):
        with pytest.raises(PlacementError):
            FlowRule(Path(("a", "b")), -1.0)


class TestFlowAssignment:
    def test_rate_for(self):
        assignment = FlowAssignment()
        assignment.rules[("a", "b")] = [
            FlowRule(Path(("a", "b")), 2.0),
            FlowRule(Path(("a", "c", "b")), 3.0),
        ]
        assert assignment.rate_for("a", "b") == 5.0
        assert assignment.rate_for("x", "y") == 0.0

    def test_totals(self):
        assignment = FlowAssignment()
        assignment.rules[("a", "b")] = [FlowRule(Path(("a", "b")), 2.0)]
        assignment.unrouted[("c", "d")] = 7.0
        assert assignment.total_rate() == 2.0
        assert assignment.total_unrouted() == 7.0

    def test_paths_for(self):
        assignment = FlowAssignment()
        path = Path(("a", "b"))
        assignment.rules[("a", "b")] = [FlowRule(path, 1.0)]
        assert assignment.paths_for("a", "b") == [path]


class TestPlaceFlows:
    def test_single_strategy_one_path(self, line5):
        demand = DemandMatrix(line5.node_names())
        demand["r0", "r4"] = 6.0
        assignment = place_flows(line5, demand, strategy="single")
        rules = assignment.rules[("r0", "r4")]
        assert len(rules) == 1
        assert rules[0].rate == 6.0

    def test_ecmp_splits_evenly(self):
        topo = ring_topology(4)
        demand = DemandMatrix(topo.node_names())
        demand["r0", "r2"] = 8.0
        assignment = place_flows(topo, demand, strategy="ecmp")
        rules = assignment.rules[("r0", "r2")]
        assert len(rules) == 2
        assert all(rule.rate == 4.0 for rule in rules)

    def test_kshortest_uses_k_paths(self):
        topo = square()
        demand = DemandMatrix(topo.node_names())
        demand["a", "c"] = 6.0
        assignment = place_flows(topo, demand, strategy="kshortest", k=2)
        assert len(assignment.rules[("a", "c")]) == 2

    def test_unknown_strategy(self, line5):
        with pytest.raises(PlacementError):
            place_flows(line5, DemandMatrix(line5.node_names()), strategy="magic")

    def test_unrouted_when_disconnected(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        demand = DemandMatrix(["a", "b"])
        demand["a", "b"] = 3.0
        assignment = place_flows(topo, demand)
        assert assignment.unrouted == {("a", "b"): 3.0}

    def test_unrouted_when_node_missing_from_topology(self, line5):
        demand = DemandMatrix(["r0", "ghost"])
        demand["r0", "ghost"] = 2.0
        assignment = place_flows(line5, demand)
        assert assignment.unrouted == {("r0", "ghost"): 2.0}

    def test_respects_drains(self):
        topo = square()
        topo.replace_node(Node("b", drained=True))
        demand = DemandMatrix(topo.node_names())
        demand["a", "c"] = 4.0
        assignment = place_flows(topo, demand, strategy="single")
        path = assignment.rules[("a", "c")][0].path
        assert "b" not in path.nodes

    def test_drained_endpoint_unrouted(self):
        topo = square()
        topo.replace_node(Node("a", drained=True))
        demand = DemandMatrix(topo.node_names())
        demand["a", "c"] = 4.0
        assignment = place_flows(topo, demand)
        assert ("a", "c") in assignment.unrouted

    def test_ignore_drains_flag(self):
        topo = square()
        topo.replace_node(Node("b", drained=True))
        demand = DemandMatrix(topo.node_names())
        demand["a", "c"] = 4.0
        assignment = place_flows(topo, demand, respect_drains=False, strategy="ecmp")
        assert assignment.rate_for("a", "c") == pytest.approx(4.0)

    def test_total_placed_matches_demand(self):
        topo = square()
        demand = uniform_demand(topo.node_names(), 1.5)
        assignment = place_flows(topo, demand)
        assert assignment.total_rate() + assignment.total_unrouted() == pytest.approx(
            demand.total()
        )


class TestEdgeOfferedLoads:
    def test_loads_accumulate(self):
        assignment = FlowAssignment()
        assignment.rules[("a", "c")] = [FlowRule(Path(("a", "b", "c")), 2.0)]
        assignment.rules[("a", "b")] = [FlowRule(Path(("a", "b")), 3.0)]
        loads = edge_offered_loads(assignment)
        assert loads[("a", "b")] == 5.0
        assert loads[("b", "c")] == 2.0
