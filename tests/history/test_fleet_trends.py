"""Cross-tenant history rollup tests (store-per-tenant layout)."""

import json

import pytest

from repro.history.fleet import ROLLUP, discover_fleet, fleet_trends
from repro.history.store import HistoryError


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory):
    """A real 3-tenant fleet run with history on."""
    from repro.fleet import FleetConfig, FleetSupervisor
    from repro.fleet.spec import synthetic_fleet

    stores = tmp_path_factory.mktemp("fleet") / "stores"
    specs = synthetic_fleet(3, nodes=8, epochs=6, seed=2, history=True)
    result = FleetSupervisor(
        specs, FleetConfig(workers=2, store_dir=str(stores))
    ).run()
    assert result.statuses() == {"done": 3}
    return str(stores)


class TestDiscovery:
    def test_discover_sorted_tenants(self, fleet_dir):
        found = discover_fleet(fleet_dir)
        assert [tenant for tenant, _path in found] == ["t0000", "t0001", "t0002"]
        assert all(path.endswith(f"{tenant}.sqlite") for tenant, path in found)

    def test_missing_dir_raises(self):
        with pytest.raises(HistoryError, match="not found"):
            discover_fleet("/nonexistent/fleet/stores")

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(HistoryError, match="no tenant stores"):
            discover_fleet(str(tmp_path))


class TestFleetTrends:
    def test_per_tenant_and_rollup_windows(self, fleet_dir):
        trends = fleet_trends(fleet_dir, window=3)
        assert sorted(trends.tenants) == ["t0000", "t0001", "t0002"]
        assert trends.epochs == 18
        for points in trends.tenants.values():
            # 6 epochs / window 3 -> two full windows per tenant.
            assert [p.epochs for p in points] == [3, 3]
        # The rollup windows the merged 18-epoch timeline.
        assert sum(p.epochs for p in trends.rollup) == 18

    def test_rollup_merges_in_timestamp_order(self, fleet_dir):
        trends = fleet_trends(fleet_dir, window=3)
        # Tenants share the virtual timeline (epochs at t=0,10,...,50),
        # so each rollup window of 3 holds one timestamp's three
        # tenants: last_ts must be non-decreasing across windows.
        last = [p.last_ts for p in trends.rollup]
        assert last == sorted(last)

    def test_metric_selection(self, fleet_dir):
        trends = fleet_trends(fleet_dir, window=6, metrics=["updates_per_epoch"])
        for points in trends.tenants.values():
            assert all(set(p.values) == {"updates_per_epoch"} for p in points)
            assert all(p.values["updates_per_epoch"] > 0 for p in points)

    def test_to_dict_round_trips_json(self, fleet_dir):
        payload = fleet_trends(fleet_dir, window=4).to_dict()
        again = json.loads(json.dumps(payload))
        assert again["epochs"] == 18
        assert set(again["tenants"]) == {"t0000", "t0001", "t0002"}
        assert again["rollup"]


class TestCli:
    def _run(self, argv):
        import contextlib
        import io

        from repro.__main__ import main

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(argv)
        return code, buffer.getvalue()

    def test_trends_fleet_table(self, fleet_dir):
        code, out = self._run(
            ["history", "trends", "--fleet", fleet_dir, "--window", "3"]
        )
        assert code == 0
        assert "t0000" in out and "t0002" in out
        assert ROLLUP in out

    def test_trends_fleet_json(self, fleet_dir):
        code, out = self._run(
            ["history", "trends", "--fleet", fleet_dir, "--window", "3", "--json"]
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["epochs"] == 18
        assert len(payload["rollup"]) == 6

    def test_trends_requires_exactly_one_source(self, fleet_dir, capsys):
        from repro.__main__ import main

        assert main(["history", "trends"]) == 2
        assert (
            main(["history", "trends", "some.sqlite", "--fleet", fleet_dir]) == 2
        )
