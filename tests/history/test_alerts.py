"""Alert grammar, engine semantics, and sink fan-out -- all hermetic.

The webhook tests prove the retry ladder with an injected transport
and a recording fake sleep: zero network, zero real waiting.
"""

import io
import json

import pytest

from repro.history.alerts import (
    AlertEngine,
    AlertEvent,
    AlertSink,
    JsonlAlertSink,
    LogAlertSink,
    WebhookAlertSink,
    WebhookError,
    parse_rule,
)
from repro.obs.metrics import MetricsRegistry
from tests.history.test_analytics import _row


class TestParseRule:
    def test_transition(self):
        rule = parse_rule("transition:links")
        assert (rule.kind, rule.subject, rule.severity) == (
            "transition", "links", "critical",
        )
        assert parse_rule("transition:any").subject == "any"
        assert rule.span == 0

    def test_trend(self):
        rule = parse_rule("trend:unknown_rate>=0.25@20")
        assert (rule.kind, rule.subject, rule.op) == ("trend", "unknown_rate", ">=")
        assert rule.threshold == 0.25 and rule.window == 20
        assert rule.severity == "warning" and rule.span == 20

    def test_regression(self):
        rule = parse_rule("regression:latency_p95@20/100%50")
        assert (rule.kind, rule.subject) == ("regression", "latency_p95")
        assert (rule.window, rule.baseline, rule.band_pct) == (20, 100, 50.0)
        assert rule.span == 120

    @pytest.mark.parametrize(
        "bad,match",
        [
            ("nonsense", "unparseable"),
            ("trend:nope>1@5", "unknown metric"),
            ("trend:detection_rate>1@0", "window must be"),
            ("regression:nope@5/5%10", "unknown metric"),
            ("regression:latency_p50@0/5%10", "must be >= 1"),
            ("transition:UPPER", "unparseable"),
        ],
    )
    def test_rejects(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_rule(bad)


class _Recorder(AlertSink):
    name = "recorder"

    def __init__(self, fail=False):
        self.events = []
        self.fail = fail
        self.closed = False

    def emit(self, event):
        if self.fail:
            raise RuntimeError("sink down")
        self.events.append(event)

    def close(self):
        self.closed = True


class TestTransitionRule:
    def test_fires_on_valid_to_invalid_edge_only(self):
        engine = AlertEngine(["transition:links"], cooldown_epochs=0)
        assert engine.observe(_row(1), [("links", True)]) == []
        (event,) = engine.observe(_row(2), [("links", False)])
        assert event.key == "links" and event.severity == "critical"
        assert "flipped valid->invalid" in event.message
        # Still invalid: no refire until it recovers and flips again.
        assert engine.observe(_row(3), [("links", False)]) == []
        assert engine.observe(_row(4), [("links", True)]) == []
        assert len(engine.observe(_row(5), [("links", False)])) == 1

    def test_any_matches_every_input_separately(self):
        engine = AlertEngine(["transition:any"], cooldown_epochs=0)
        engine.observe(_row(1), [("links", True), ("demands", True)])
        events = engine.observe(_row(2), [("links", False), ("demands", False)])
        assert [event.key for event in events] == ["links", "demands"]

    def test_first_epoch_invalid_counts_as_a_flip(self):
        # Unknown inputs default to previously-valid: a store that opens
        # on a bad input should alert immediately.
        engine = AlertEngine(["transition:any"])
        (event,) = engine.observe(_row(1), [("links", False)])
        assert event.epoch_id == 1

    def test_cooldown_suppresses_refire_per_key(self):
        engine = AlertEngine(["transition:any"], cooldown_epochs=3)
        engine.observe(_row(1), [("links", False)])
        engine.observe(_row(2), [("links", True)])
        # Flip again within cooldown: suppressed.
        assert engine.observe(_row(3), [("links", False)]) == []
        engine.observe(_row(4), [("links", True)])
        # Epoch 5 is > 3 epochs after the epoch-1 fire: allowed.
        assert len(engine.observe(_row(5), [("links", False)])) == 1


class TestTrendRule:
    def test_edge_triggered_on_breach_entry(self):
        engine = AlertEngine(["trend:detection_rate>0.5@2"], cooldown_epochs=0)
        assert engine.observe(_row(1, detected=True)) == []  # window not full
        (event,) = engine.observe(_row(2, detected=True))
        assert "detection_rate over last 2 epochs = 1" in event.message
        # Still breached: stays quiet until it leaves and re-enters.
        assert engine.observe(_row(3, detected=True)) == []
        assert engine.observe(_row(4, detected=False)) == []
        assert engine.observe(_row(5, detected=False)) == []  # rate 0: left breach
        assert len(engine.observe(_row(6, detected=True))) == 0  # rate 0.5, not > 0.5
        engine.observe(_row(7, detected=True))  # rate 1.0: re-entered


class TestRegressionRule:
    def test_fires_when_recent_window_drifts(self):
        engine = AlertEngine(
            ["regression:latency_p50@2/2%50"], cooldown_epochs=0
        )
        fired = []
        for index, elapsed in enumerate([0.1, 0.1, 0.1, 0.3, 0.3], start=1):
            fired.extend(engine.observe(_row(index, elapsed_s=elapsed)))
        (event,) = fired
        assert "regressed" in event.message and event.key == "latency_p50"


class TestFanOut:
    def test_events_reach_every_sink_and_failures_are_contained(self):
        registry = MetricsRegistry()
        good, bad = _Recorder(), _Recorder(fail=True)
        engine = AlertEngine(
            ["transition:any"], sinks=[bad, good], metrics=registry
        )
        engine.observe(_row(1), [("links", False)])
        assert len(good.events) == 1
        fired = registry.get("alerts_fired_total")
        assert fired.labels(rule="transition:any", sink="ledger").value == 1
        assert fired.labels(rule="transition:any", sink="recorder").value == 1
        errors = registry.get("history_alert_sink_errors_total")
        assert errors.labels(sink="recorder").value == 1

    def test_close_closes_sinks(self):
        recorder = _Recorder()
        AlertEngine([], sinks=[recorder]).close()
        assert recorder.closed

    def test_jsonl_sink_writes_canonical_lines(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        sink = JsonlAlertSink(path)
        event = AlertEvent(1.0, 2, "transition:any", "links", "critical", "m")
        sink.emit(event)
        sink.close()
        with open(path, encoding="utf-8") as handle:
            (line,) = handle.read().splitlines()
        assert line == event.to_json()
        assert json.loads(line)["epoch_id"] == 2

    def test_log_sink_format(self):
        stream = io.StringIO()
        LogAlertSink(stream).emit(
            AlertEvent(20.0, 3, "trend:unknown_rate>0.1@5", "unknown_rate",
                       "warning", "breach")
        )
        assert stream.getvalue() == (
            "ALERT [warning] t=20 trend:unknown_rate>0.1@5 (unknown_rate): breach\n"
        )


class TestWebhookSink:
    def _event(self):
        return AlertEvent(1.0, 1, "transition:any", "links", "critical", "m")

    def test_delivers_payload_on_2xx(self):
        calls = []

        def transport(url, payload):
            calls.append((url, payload))
            return 204

        registry = MetricsRegistry()
        sink = WebhookAlertSink("http://hook", transport=transport, metrics=registry)
        sink.emit(self._event())
        ((url, payload),) = calls
        assert url == "http://hook"
        assert json.loads(payload) == self._event().to_dict()
        deliveries = registry.get("history_webhook_deliveries_total")
        assert deliveries.labels(result="ok").value == 1
        assert registry.get("history_webhook_retries_total").value == 0

    def test_retries_with_exponential_backoff_then_succeeds(self):
        statuses = iter([500, 503, 200])
        sleeps = []
        registry = MetricsRegistry()
        sink = WebhookAlertSink(
            "http://hook",
            transport=lambda _url, _payload: next(statuses),
            max_retries=3,
            backoff_s=0.5,
            sleep=sleeps.append,
            metrics=registry,
        )
        sink.emit(self._event())
        assert sleeps == [0.5, 1.0]
        assert registry.get("history_webhook_retries_total").value == 2
        deliveries = registry.get("history_webhook_deliveries_total")
        assert deliveries.labels(result="ok").value == 1
        assert deliveries.labels(result="error").value == 0

    def test_exhausted_retries_raise_with_attempt_history(self):
        registry = MetricsRegistry()
        sink = WebhookAlertSink(
            "http://hook",
            transport=lambda _url, _payload: 500,
            max_retries=2,
            sleep=lambda _s: None,
            metrics=registry,
        )
        with pytest.raises(WebhookError, match="failed after 3 attempts") as info:
            sink.emit(self._event())
        assert "attempt 3: HTTP 500" in str(info.value)
        assert registry.get("history_webhook_deliveries_total").labels(
            result="error"
        ).value == 1

    def test_transport_exceptions_are_retried_like_bad_statuses(self):
        attempts = []

        def transport(_url, _payload):
            attempts.append(1)
            if len(attempts) < 2:
                raise ConnectionError("refused")
            return 201

        sink = WebhookAlertSink(
            "http://hook", transport=transport, sleep=lambda _s: None
        )
        sink.emit(self._event())
        assert len(attempts) == 2

    def test_engine_contains_webhook_exhaustion(self):
        registry = MetricsRegistry()
        hook = WebhookAlertSink(
            "http://hook",
            transport=lambda _url, _payload: 500,
            max_retries=1,
            sleep=lambda _s: None,
            metrics=registry,
        )
        engine = AlertEngine(["transition:any"], sinks=[hook], metrics=registry)
        (event,) = engine.observe(_row(1), [("links", False)])
        assert event.key == "links"  # validation path unaffected
        assert registry.get("history_alert_sink_errors_total").labels(
            sink="webhook"
        ).value == 1

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            WebhookAlertSink("http://hook", max_retries=-1)
