"""HistorySink write-through: reports in, durable rows + metrics out.

Includes the two determinism acceptance tests the ISSUE pins:

* two identical seeded engine runs through deterministic sinks produce
  **byte-identical** store files;
* a seeded catalog replay (S02, outage scenario) fires exactly the
  pinned alert sequence -- the hermetic replacement for watching a
  live deployment page.
"""

import pytest

from repro.engine import ValidationEngine
from repro.history.alerts import AlertEngine
from repro.history.sink import HistoryConfig, HistorySink
from repro.history.store import HistoryStore, RetentionPolicy
from repro.obs.metrics import MetricsRegistry

from tests.engine.conftest import random_epoch


def _report(corrupted=False, seed=0):
    topology, snapshot, inputs = random_epoch(8, seed, corrupted=corrupted)
    with ValidationEngine(topology) as engine:
        return engine.validate(snapshot, inputs), engine.stats


class TestRecord:
    def test_record_writes_epoch_verdicts_and_signals(self, tmp_path):
        report, stats = _report()
        path = str(tmp_path / "h.db")
        with HistorySink(HistoryConfig(path=path, deterministic=True)) as sink:
            epoch_id = sink.record(
                report, source="engine", elapsed_s=0.5, updates=42, stats=stats
            )
            row = sink.store.tail(1)[0]
            verdicts = sink.store.verdicts_for(epoch_id=epoch_id)
        assert epoch_id == 1
        assert row.ts == report.timestamp
        assert row.recorded_at == report.timestamp  # deterministic anchor
        assert row.elapsed_s == 0.0  # zeroed in deterministic mode
        assert row.updates == 42
        assert row.detected == report.detected_anything()
        assert {v.input_name for v in verdicts} == set(report.verdicts)
        total = (
            row.signals_confirmed + row.signals_repaired
            + row.signals_raw + row.signals_unknown
        )
        assert total > 0

    def test_live_mode_keeps_latency_and_wall_anchor(self, tmp_path):
        report, _ = _report()
        path = str(tmp_path / "h.db")
        with HistorySink(HistoryConfig(path=path)) as sink:
            sink.record(report, elapsed_s=0.25)
            row = sink.store.tail(1)[0]
        assert row.elapsed_s == 0.25
        assert row.recorded_at != report.timestamp  # wall clock, not virtual

    def test_provenance_stored_only_for_invalid_inputs(self, tmp_path):
        # A clean random epoch validates everywhere; the S02 outage
        # world actually fails verdicts (corrupted counters at size 8
        # get repaired back to valid, so they won't do).
        from repro.scenarios import scenario_by_id

        clean, _ = _report(corrupted=False)
        dirty = scenario_by_id("S02").build(seed=0).run_epoch(timestamp=0.0).report
        invalid = {name for name, v in dirty.verdicts.items() if not v.valid}
        assert invalid, "S02 epoch 0 must fail at least one verdict"
        with HistorySink(
            HistoryConfig(path=str(tmp_path / "h.db"), deterministic=True)
        ) as sink:
            clean_id = sink.record(clean)
            dirty_id = sink.record(dirty)
            assert sink.store.provenance_for(clean_id) == {}
            stored = sink.store.provenance_for(dirty_id)
        assert set(stored) == invalid
        for payload in stored.values():
            assert payload["valid"] is False

    def test_counter_snapshot_cadence(self, tmp_path):
        report, stats = _report()
        with HistorySink(
            HistoryConfig(
                path=str(tmp_path / "h.db"),
                deterministic=True,
                counter_snapshot_every=2,
            )
        ) as sink:
            for _ in range(5):
                sink.record(report, stats=stats)
            series = sink.store.counter_series("engine_epochs_total")
            counts = sink.store.row_counts()
        assert [epoch_id for epoch_id, _, _ in series] == [2, 4]
        assert counts["counters"] > 0

    def test_deterministic_snapshots_drop_timing_families(self, tmp_path):
        report, stats = _report()
        with HistorySink(
            HistoryConfig(
                path=str(tmp_path / "h.db"),
                deterministic=True,
                counter_snapshot_every=1,
            )
        ) as sink:
            sink.record(report, stats=stats)
            conn = sink.store._db
            names = {
                row[0]
                for row in conn.execute("SELECT DISTINCT name FROM counters")
            }
        assert names  # snapshot happened
        for name in names:
            assert "seconds" not in name and "utilisation" not in name

    def test_retention_sweep_cadence(self, tmp_path):
        report, _ = _report()
        with HistorySink(
            HistoryConfig(
                path=str(tmp_path / "h.db"),
                deterministic=True,
                retention=RetentionPolicy(max_epochs=3),
                retention_every=5,
            )
        ) as sink:
            for _ in range(10):
                sink.record(report)
            assert sink.store.epoch_count() == 3

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="counter_snapshot_every"):
            HistoryConfig(path=str(tmp_path / "h.db"), counter_snapshot_every=-1)


class TestMetricsFamilies:
    def test_history_families_on_shared_registry(self, tmp_path):
        registry = MetricsRegistry()
        report, _ = _report()
        with HistorySink(
            HistoryConfig(path=str(tmp_path / "h.db"), deterministic=True),
            metrics=registry,
        ) as sink:
            sink.record(report)
            sink.compact()
        rendered = registry.render()
        for family in (
            "history_rows_total",
            "history_store_bytes",
            "history_epochs_written_total",
            "history_compactions_total",
            "history_retention_deleted_total",
        ):
            assert f"# TYPE {family} " in rendered
        assert registry.get("history_epochs_written_total").value == 1
        assert registry.get("history_compactions_total").value == 1
        rows = registry.get("history_rows_total")
        assert rows.labels(table="epochs").value == 1
        assert registry.get("history_store_bytes").value > 0

    def test_compact_returns_result_and_counts(self, tmp_path):
        registry = MetricsRegistry()
        report, _ = _report()
        with HistorySink(
            HistoryConfig(
                path=str(tmp_path / "h.db"),
                deterministic=True,
                retention=RetentionPolicy(max_epochs=2),
            ),
            metrics=registry,
        ) as sink:
            for _ in range(6):
                sink.record(report)
            result = sink.compact()
        assert result.epochs_deleted == 4
        assert registry.get("history_retention_deleted_total").value == 4


class TestEngineWriteThrough:
    def test_engine_records_each_validate_call(self, tmp_path):
        topology, snapshot, inputs = random_epoch(8, 0)
        path = str(tmp_path / "h.db")
        registry = MetricsRegistry()
        with HistorySink(
            HistoryConfig(path=path, deterministic=True), metrics=registry
        ) as sink:
            with ValidationEngine(topology, metrics=registry, history=sink) as engine:
                engine.validate(snapshot, inputs)
                engine.validate(snapshot, inputs)
            rows = sink.store.epochs()
        assert [row.source for row in rows] == ["engine", "engine"]
        assert all(row.sealed_by == "batch" for row in rows)
        assert registry.get("history_epochs_written_total").value == 2

    def test_incremental_mode_also_records(self, tmp_path):
        topology, snapshot, inputs = random_epoch(8, 0)
        with HistorySink(
            HistoryConfig(path=str(tmp_path / "h.db"), deterministic=True)
        ) as sink:
            with ValidationEngine(
                topology, mode="incremental", history=sink
            ) as engine:
                engine.validate(snapshot, inputs)
                engine.validate(snapshot, inputs)  # cache-hit fast path
            rows = sink.store.epochs()
        assert [row.mode for row in rows] == ["incremental", "incremental"]


class TestByteReproducibility:
    def test_two_identical_seeded_runs_produce_identical_files(self, tmp_path):
        paths = [str(tmp_path / name) for name in ("a.db", "b.db")]
        for path in paths:
            topology, snapshot, inputs = random_epoch(8, 3, corrupted=True)
            with HistorySink(
                HistoryConfig(
                    path=path, deterministic=True, counter_snapshot_every=2
                )
            ) as sink:
                with ValidationEngine(topology, history=sink) as engine:
                    for _ in range(4):
                        engine.validate(snapshot, inputs)
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()


class TestCatalogReplayAlerts:
    def test_s02_replay_fires_pinned_alert_sequence(self, tmp_path):
        """Seeded S02 outage replay: the alert sequence is part of the
        contract -- if this changes, the alerting semantics changed."""
        from repro.scenarios import scenario_by_id

        world = scenario_by_id("S02").build(seed=0)
        registry = MetricsRegistry()
        alerts = AlertEngine(
            ["transition:any", "trend:detection_rate>0.5@3"],
            metrics=registry,
        )
        with HistorySink(
            HistoryConfig(path=str(tmp_path / "h.db"), deterministic=True),
            alerts=alerts,
            metrics=registry,
        ) as sink:
            for epoch in range(6):
                outcome = world.run_epoch(timestamp=float(epoch) * 10.0)
                sink.record(outcome.report, source="engine")
            ledger = [
                (a.epoch_id, a.ts, a.rule, a.key, a.severity)
                for a in sink.store.alerts()
            ]
        assert ledger == [
            (1, 0.0, "transition:any", "topology", "critical"),
            (3, 20.0, "trend:detection_rate>0.5@3", "detection_rate", "warning"),
        ]
