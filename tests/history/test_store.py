"""HistoryStore unit + pathological tests.

Everything hermetic: ``tmp_path`` stores, :class:`ManualClock` where
the store's wall-clock seam matters.  The pathological block covers
the crash/abuse paths the ISSUE names -- WAL replay after a simulated
crash, schema-mismatch refusal, retention deleting exactly the oldest
epochs, and concurrent-writer rejection.
"""

import os
import shutil
import sqlite3

import pytest

from repro.history.store import (
    SCHEMA_VERSION,
    ConcurrentWriterError,
    HistoryError,
    HistoryStore,
    RetentionPolicy,
    SchemaMismatchError,
)
from repro.obs.clock import ManualClock


def _append(store, index, **overrides):
    """One synthetic epoch; index drives ts and distinguishability."""
    kwargs = dict(
        source="engine",
        mode="full",
        backend="python",
        sealed_by="batch",
        complete=True,
        updates=100 + index,
        missing=0,
        elapsed_s=0.001 * index,
        detected=index % 3 == 0,
        violations=index % 3,
        signals=(5, 1, 2, 0),
        verdicts=[("links", index % 3 != 0, index % 3, 7), ("demands", True, 0, 3)],
        provenance=[("links", '{"valid":false}')] if index % 3 == 0 else [],
    )
    kwargs.update(overrides)
    return store.append_epoch(float(index * 10), **kwargs)


class TestAppendAndQuery:
    def test_append_epoch_round_trips_every_field(self, tmp_path):
        path = str(tmp_path / "h.db")
        with HistoryStore(path, clock=ManualClock(1000.0)) as store:
            epoch_id = _append(store, 1)
            row = store.tail(1)[0]
        assert epoch_id == 1
        assert row.ts == 10.0
        assert row.recorded_at == 1000.0  # store clock, injected
        assert (row.source, row.mode, row.backend) == ("engine", "full", "python")
        assert row.sealed_by == "batch"
        assert row.complete and row.updates == 101 and row.missing == 0
        assert row.elapsed_s == pytest.approx(0.001)
        assert not row.detected and row.violations == 1
        assert (
            row.signals_confirmed,
            row.signals_repaired,
            row.signals_raw,
            row.signals_unknown,
        ) == (5, 1, 2, 0)

    def test_recorded_at_override_skips_the_clock(self, tmp_path):
        clock = ManualClock(500.0)
        with HistoryStore(str(tmp_path / "h.db"), clock=clock) as store:
            store.append_epoch(1.0, recorded_at=1.0)
            assert store.tail(1)[0].recorded_at == 1.0

    def test_verdicts_and_provenance_round_trip(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            epoch_id = _append(store, 0)
            verdicts = store.verdicts_for(epoch_id=epoch_id)
            assert [(v.input_name, v.valid) for v in verdicts] == [
                ("demands", True),
                ("links", False),
            ]
            assert store.provenance_for(epoch_id) == {"links": {"valid": False}}

    def test_tail_returns_newest_oldest_first(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(6):
                _append(store, index)
            assert [row.epoch_id for row in store.tail(3)] == [4, 5, 6]

    def test_epochs_filters(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(6):
                _append(store, index)
            assert [r.epoch_id for r in store.epochs(since=20.0, until=40.0)] == [3, 4, 5]
            assert [r.epoch_id for r in store.epochs(detected_only=True)] == [1, 4]
            assert [r.epoch_id for r in store.epochs(limit=2)] == [1, 2]

    def test_counter_snapshots_round_trip(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            epoch_id = _append(store, 0)
            snap = store.append_counters(
                epoch_id,
                [("hodor_epochs_total", {}, 3.0), ("hodor_shards", {"mode": "full"}, 2.0)],
            )
            assert snap == 1
            assert store.counter_series("hodor_shards") == [(1, {"mode": "full"}, 2.0)]
            assert store.append_counters(epoch_id, [("hodor_epochs_total", {}, 4.0)]) == 2

    def test_alert_ledger_round_trips(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            epoch_id = _append(store, 0)
            store.append_alert(epoch_id, 0.0, "transition:any", "links", "critical", "boom")
            (alert,) = store.alerts()
            assert (alert.rule, alert.key, alert.severity) == (
                "transition:any", "links", "critical",
            )

    def test_row_counts_and_ts_range(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            assert store.ts_range() is None
            for index in range(3):
                _append(store, index)
            counts = store.row_counts()
            assert counts["epochs"] == 3 and counts["verdicts"] == 6
            assert counts["provenance"] == 1  # only index 0 detected
            assert store.ts_range() == (0.0, 20.0)

    def test_reader_sees_writer_appends(self, tmp_path):
        path = str(tmp_path / "h.db")
        with HistoryStore(path) as store:
            _append(store, 0)
            with HistoryStore(path, writer=False) as reader:
                assert reader.epoch_count() == 1
                with pytest.raises(HistoryError, match="read-only"):
                    reader.append_alert(1, 0.0, "r", "k", "warning", "m")

    def test_reader_requires_existing_file(self, tmp_path):
        with pytest.raises(HistoryError, match="not found"):
            HistoryStore(str(tmp_path / "absent.db"), writer=False)

    def test_closed_store_raises(self, tmp_path):
        store = HistoryStore(str(tmp_path / "h.db"))
        store.close()
        with pytest.raises(HistoryError, match="closed"):
            store.epoch_count()


class TestRetention:
    def test_max_epochs_deletes_exactly_the_oldest(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(10):
                _append(store, index)
            deleted = store.enforce_retention(RetentionPolicy(max_epochs=4))
            assert deleted == 6
            assert [row.epoch_id for row in store.epochs()] == [7, 8, 9, 10]

    def test_retention_cascades_child_tables(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(4):
                epoch_id = _append(store, index)
                store.append_counters(epoch_id, [("n", {}, float(index))])
                store.append_alert(epoch_id, 0.0, "r", "k", "warning", "m")
            store.enforce_retention(RetentionPolicy(max_epochs=1))
            counts = store.row_counts()
            # Survivor is index 3 (detected), so one provenance row stays.
            assert counts == {
                "epochs": 1, "verdicts": 2, "provenance": 1,
                "counters": 1, "alerts": 1,
            }

    def test_max_age_uses_recorded_at_and_explicit_now(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(5):
                _append(store, index, recorded_at=float(index * 10))
            # now=40, max_age=15 -> keep recorded_at >= 25: epochs 4, 5.
            deleted = store.enforce_retention(
                RetentionPolicy(max_age_s=15.0), now=40.0
            )
            assert deleted == 3
            assert [row.epoch_id for row in store.epochs()] == [4, 5]

    def test_max_age_defaults_to_injected_clock(self, tmp_path):
        clock = ManualClock(100.0)
        with HistoryStore(str(tmp_path / "h.db"), clock=clock) as store:
            _append(store, 0)  # recorded_at = 100.0
            clock.tick(30.0)
            assert store.enforce_retention(RetentionPolicy(max_age_s=60.0)) == 0
            clock.tick(40.0)  # now 170, age 70 > 60
            assert store.enforce_retention(RetentionPolicy(max_age_s=60.0)) == 1

    def test_max_bytes_shrinks_store(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(2000):
                _append(store, index)
            before = store.store_bytes()
            # Keep the target above the empty-schema page floor, or the
            # shrink loop can never get there no matter what it deletes.
            target = max(65536, before // 2)
            assert before > target
            deleted = store.enforce_retention(RetentionPolicy(max_bytes=target))
            assert deleted > 0
            assert store.store_bytes() <= target
            # Survivors are the newest contiguous suffix.
            remaining = [row.epoch_id for row in store.epochs()]
            assert remaining == list(range(remaining[0], 2001))

    def test_unbounded_policy_is_a_no_op(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            _append(store, 0)
            assert store.enforce_retention(RetentionPolicy()) == 0
            assert store.epoch_count() == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_epochs"):
            RetentionPolicy(max_epochs=0)
        with pytest.raises(ValueError, match="max_age_s"):
            RetentionPolicy(max_age_s=-1.0)
        with pytest.raises(ValueError, match="max_bytes"):
            RetentionPolicy(max_bytes=1024)

    def test_compact_reclaims_retention_garbage(self, tmp_path):
        with HistoryStore(str(tmp_path / "h.db")) as store:
            for index in range(400):
                _append(store, index)
            result = store.compact(RetentionPolicy(max_epochs=10))
            assert result.epochs_deleted == 390
            assert result.bytes_after < result.bytes_before
            assert result.reclaimed == result.bytes_before - result.bytes_after
            assert store.epoch_count() == 10


class TestPathological:
    def test_wal_replay_after_simulated_crash(self, tmp_path):
        """Committed epochs must survive a kill -9 (copy db+wal mid-run)."""
        path = str(tmp_path / "live.db")
        crashed = str(tmp_path / "crashed.db")
        store = HistoryStore(path)
        try:
            for index in range(20):
                _append(store, index)
            # Snapshot the database mid-flight, WAL and shm included --
            # the moral equivalent of the page cache at SIGKILL time.
            assert os.path.exists(path + "-wal")
            for suffix in ("", "-wal", "-shm"):
                if os.path.exists(path + suffix):
                    shutil.copy(path + suffix, crashed + suffix)
        finally:
            store.close()
        with HistoryStore(crashed) as replayed:
            assert replayed.epoch_count() == 20
            assert [row.epoch_id for row in replayed.tail(3)] == [18, 19, 20]

    def test_schema_mismatch_refuses_writer_and_reader(self, tmp_path):
        path = str(tmp_path / "h.db")
        HistoryStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaMismatchError, match="refusing to open"):
            HistoryStore(path)
        with pytest.raises(SchemaMismatchError):
            HistoryStore(path, writer=False)
        # The refused open must not leave the lock held.
        HistoryStore(str(tmp_path / "other.db")).close()

    def test_concurrent_writer_rejected_reader_allowed(self, tmp_path):
        path = str(tmp_path / "h.db")
        with HistoryStore(path) as first:
            _append(first, 0)
            with pytest.raises(ConcurrentWriterError, match="live writer"):
                HistoryStore(path)
            with HistoryStore(path, writer=False) as reader:
                assert reader.epoch_count() == 1
        # Lock released on close: a new writer may open.
        with HistoryStore(path) as second:
            _append(second, 1)
            assert second.epoch_count() == 2

    def test_writer_lock_survives_schema_check_failure_of_others(self, tmp_path):
        """A writer crash (simulated by GC-less close) frees the lock."""
        path = str(tmp_path / "h.db")
        store = HistoryStore(path)
        store.close()
        store.close()  # idempotent
        with HistoryStore(path) as again:
            assert again.epoch_count() == 0
