"""Rolling analytics: windowed metrics, trends, regression detection."""

import math

import pytest

from repro.history.analytics import (
    METRICS,
    compute_trends,
    detect_regression,
    percentile,
    window_metric,
)
from repro.history.store import EpochRow


def _row(epoch_id, *, detected=False, complete=True, violations=0, updates=100,
         elapsed_s=0.01, signals=(8, 0, 2, 0)):
    confirmed, repaired, raw, unknown = signals
    return EpochRow(
        epoch_id=epoch_id,
        ts=float(epoch_id * 10),
        recorded_at=float(epoch_id * 10),
        source="engine",
        mode="full",
        backend="python",
        sealed_by="batch",
        complete=complete,
        updates=updates,
        missing=0,
        elapsed_s=elapsed_s,
        detected=detected,
        violations=violations,
        signals_confirmed=confirmed,
        signals_repaired=repaired,
        signals_raw=raw,
        signals_unknown=unknown,
    )


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        assert percentile(values, 50.0) == 0.5
        assert percentile(values, 95.0) == 1.0
        assert percentile(values, 0.0) == 0.1
        assert percentile(values, 100.0) == 1.0
        assert percentile([3.0], 99.0) == 3.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101.0)


class TestWindowMetrics:
    def test_detection_and_incomplete_rates(self):
        rows = [_row(1, detected=True), _row(2), _row(3, complete=False), _row(4)]
        assert window_metric(rows, "detection_rate") == 0.25
        assert window_metric(rows, "incomplete_rate") == 0.25

    def test_signal_rates_share_one_denominator(self):
        rows = [_row(1, signals=(6, 2, 1, 1)), _row(2, signals=(8, 0, 2, 0))]
        assert window_metric(rows, "repair_rate") == 2 / 20
        assert window_metric(rows, "unknown_rate") == 1 / 20
        assert window_metric(rows, "confirmed_rate") == 14 / 20

    def test_signal_rate_with_zero_signals_is_zero(self):
        rows = [_row(1, signals=(0, 0, 0, 0))]
        assert window_metric(rows, "repair_rate") == 0.0

    def test_per_epoch_averages_and_latency(self):
        rows = [
            _row(1, violations=4, updates=10, elapsed_s=0.1),
            _row(2, violations=0, updates=30, elapsed_s=0.3),
        ]
        assert window_metric(rows, "violations_per_epoch") == 2.0
        assert window_metric(rows, "updates_per_epoch") == 20.0
        assert window_metric(rows, "latency_p50") == 0.1
        assert window_metric(rows, "latency_p99") == 0.3

    def test_empty_window_is_none_unknown_metric_raises(self):
        assert window_metric([], "detection_rate") is None
        with pytest.raises(ValueError, match="unknown history metric"):
            window_metric([_row(1)], "nope")

    def test_every_metric_evaluates_on_a_real_window(self):
        rows = [_row(index, detected=index % 2 == 0) for index in range(1, 6)]
        for name in METRICS:
            value = window_metric(rows, name)
            assert isinstance(value, float) and not math.isnan(value)


class TestTrends:
    def test_consecutive_windows_with_partial_tail(self):
        rows = [_row(index, detected=index <= 4) for index in range(1, 8)]
        points = compute_trends(rows, 3, ["detection_rate"])
        assert [(p.first_epoch_id, p.last_epoch_id, p.epochs) for p in points] == [
            (1, 3, 3), (4, 6, 3), (7, 7, 1),
        ]
        assert [p.values["detection_rate"] for p in points] == [1.0, 1 / 3, 0.0]
        assert points[-1].last_ts == 70.0

    def test_defaults_to_all_metrics_sorted(self):
        (point,) = compute_trends([_row(1)], 5)
        assert list(point.values) == sorted(METRICS)

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            compute_trends([_row(1)], 0)
        with pytest.raises(ValueError, match="unknown history metric"):
            compute_trends([_row(1)], 1, ["bogus"])

    def test_to_dict_is_json_shaped(self):
        (point,) = compute_trends([_row(1)], 1, ["detection_rate"])
        assert point.to_dict() == {
            "first_epoch_id": 1,
            "last_epoch_id": 1,
            "last_ts": 10.0,
            "epochs": 1,
            "values": {"detection_rate": 0.0},
        }


class TestRegression:
    def test_needs_window_plus_baseline_history(self):
        rows = [_row(index) for index in range(1, 5)]
        assert detect_regression(rows, "latency_p50", 3, 2, 10.0) is None

    def test_detects_drift_beyond_band(self):
        rows = [_row(index, elapsed_s=0.1) for index in range(1, 5)] + [
            _row(index, elapsed_s=0.2) for index in range(5, 9)
        ]
        finding = detect_regression(rows, "latency_p50", 4, 4, 50.0)
        assert finding is not None and finding.breached
        assert finding.recent == 0.2 and finding.baseline == 0.1
        assert finding.drift_pct == pytest.approx(100.0)

    def test_within_band_does_not_breach(self):
        rows = [_row(index, elapsed_s=0.1) for index in range(1, 9)]
        finding = detect_regression(rows, "latency_p50", 4, 4, 5.0)
        assert finding is not None and not finding.breached
        assert finding.drift_pct == pytest.approx(0.0)

    def test_improvement_never_breaches(self):
        rows = [_row(index, elapsed_s=0.2) for index in range(1, 5)] + [
            _row(index, elapsed_s=0.1) for index in range(5, 9)
        ]
        finding = detect_regression(rows, "latency_p50", 4, 4, 0.0)
        assert finding is not None and not finding.breached

    def test_zero_baseline_with_positive_recent_is_infinite_drift(self):
        rows = [_row(index, violations=0) for index in range(1, 5)] + [
            _row(index, violations=3) for index in range(5, 9)
        ]
        finding = detect_regression(rows, "violations_per_epoch", 4, 4, 1000.0)
        assert finding is not None and finding.breached
        assert finding.drift_pct == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            detect_regression([], "latency_p50", 0, 1, 5.0)
        with pytest.raises(ValueError, match="band_pct"):
            detect_regression([], "latency_p50", 1, 1, -1.0)
