"""Golden tests for ``python -m repro history`` and the history flags
on the ``engine``/``stream`` commands.

One seeded S02 stream run writes the shared store fixture; every
subcommand's output is then pinned against it.  The store is written
in deterministic mode (the stream CLI default), so the goldens are
stable across machines and runs.
"""

import json

import pytest

from repro.__main__ import main


@pytest.fixture(scope="module")
def seeded_store(tmp_path_factory):
    """One S02 run with history + alerts: (store_path, jsonl_path)."""
    root = tmp_path_factory.mktemp("history-cli")
    store = str(root / "s02.db")
    jsonl = str(root / "alerts.jsonl")
    code = main(
        [
            "stream", "--scenario", "S02", "--epochs", "6",
            "--history", store,
            "--alert", "transition:any",
            "--alert", "trend:detection_rate>0.5@3",
            "--alerts-jsonl", jsonl,
        ]
    )
    assert code == 0
    return store, jsonl


class TestTail:
    def test_table(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(["history", "tail", store, "-n", "3"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].split() == [
            "epoch", "ts", "src", "sealed", "ok", "updates", "viol", "detected"
        ]
        assert len(lines) == 5  # header, rule, 3 rows
        assert lines[2].split()[0] == "4"
        assert lines[4].split()[0] == "6"

    def test_json(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(["history", "tail", store, "-n", "2", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["epoch_id"] for row in rows] == [5, 6]
        first = rows[0]
        assert first["source"] == "stream"
        assert first["ts"] == 40.0
        assert first["recorded_at"] == 40.0  # deterministic default
        assert first["elapsed_s"] == 0.0
        assert set(first) == {
            "epoch_id", "ts", "recorded_at", "source", "mode", "backend",
            "sealed_by", "complete", "updates", "missing", "elapsed_s",
            "detected", "violations", "signals_confirmed",
            "signals_repaired", "signals_raw", "signals_unknown",
        }


class TestTrends:
    def test_json_golden(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(
            [
                "history", "trends", store, "--window", "3",
                "--metrics", "detection_rate,violations_per_epoch",
            ]
        ) == 0
        table = capsys.readouterr().out.splitlines()
        assert table[0].split() == [
            "epochs", "last", "ts", "detection_rate", "violations_per_epoch"
        ]
        assert len(table) == 4  # header, rule, 2 windows of 3
        assert main(
            [
                "history", "trends", store, "--window", "3", "--json",
                "--metrics", "detection_rate",
            ]
        ) == 0
        points = json.loads(capsys.readouterr().out)
        assert [(p["first_epoch_id"], p["last_epoch_id"]) for p in points] == [
            (1, 3), (4, 6),
        ]
        assert points[0]["values"]["detection_rate"] == 1.0

    def test_unknown_metric_is_usage_error(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(["history", "trends", store, "--metrics", "bogus"]) == 2
        assert "unknown metric" in capsys.readouterr().err


class TestQuery:
    def test_epoch_filters(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(
            ["history", "query", store, "--since", "20", "--until", "40", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["epoch_id"] for row in rows] == [3, 4, 5]

    def test_detected_only(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(["history", "query", store, "--detected-only", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(row["detected"] for row in rows)

    def test_verdict_series_for_one_input(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(
            ["history", "query", store, "--verdicts", "topology", "--json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["epoch_id"] for row in rows] == [1, 2, 3, 4, 5, 6]
        assert all(row["input"] == "topology" for row in rows)
        assert rows[0]["valid"] is False  # S02's epoch-1 outage

    def test_alert_ledger_golden(self, seeded_store, capsys):
        store, jsonl = seeded_store
        capsys.readouterr()
        assert main(["history", "query", store, "--alerts", "--json"]) == 0
        ledger = json.loads(capsys.readouterr().out)
        assert [
            (a["epoch_id"], a["ts"], a["rule"], a["key"], a["severity"])
            for a in ledger
        ] == [
            (1, 0.0, "transition:any", "topology", "critical"),
            (3, 20.0, "trend:detection_rate>0.5@3", "detection_rate", "warning"),
        ]
        # The JSONL fan-out saw the same events, in the same order.
        with open(jsonl, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle.read().splitlines()]
        assert [(a["epoch_id"], a["rule"]) for a in lines] == [
            (a["epoch_id"], a["rule"]) for a in ledger
        ]


class TestCompact:
    def test_compact_applies_retention_and_reports(self, seeded_store, capsys, tmp_path):
        store, _ = seeded_store
        # Work on a copy: other tests share the module-scoped fixture.
        import shutil

        copy = str(tmp_path / "copy.db")
        shutil.copy(store, copy)
        capsys.readouterr()
        assert main(
            ["history", "compact", copy, "--max-epochs", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["epochs_deleted"] == 4
        assert payload["epochs_remaining"] == 2
        assert payload["bytes_after"] <= payload["bytes_before"]
        assert payload["reclaimed"] == (
            payload["bytes_before"] - payload["bytes_after"]
        )

    def test_missing_store_is_an_error_not_an_empty_store(self, tmp_path, capsys):
        absent = str(tmp_path / "absent.db")
        assert main(["history", "compact", absent]) == 2
        assert "not found" in capsys.readouterr().err
        import os

        assert not os.path.exists(absent)

    def test_bad_policy_is_usage_error(self, seeded_store, capsys):
        store, _ = seeded_store
        capsys.readouterr()
        assert main(["history", "compact", store, "--max-epochs", "0"]) == 2
        assert "max_epochs" in capsys.readouterr().err


class TestStoreReproducibility:
    def test_stream_written_store_is_byte_reproducible(self, tmp_path):
        paths = [str(tmp_path / name) for name in ("r1.db", "r2.db")]
        for path in paths:
            assert main(
                ["stream", "--scenario", "S02", "--epochs", "4", "--history", path]
            ) == 0
        with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
            assert a.read() == b.read()


class TestMetricsPromCoverage:
    def test_history_families_in_prom_export(self, tmp_path, capsys):
        """Satellite: --metrics-prom covers the history/alert layer."""
        store = str(tmp_path / "s.db")
        prom = tmp_path / "run.prom"
        assert main(
            [
                "stream", "--scenario", "S02", "--epochs", "4",
                "--history", store,
                "--alert", "transition:any",
                "--metrics-prom", str(prom),
            ]
        ) == 0
        text = prom.read_text()
        for family in (
            "history_rows_total",
            "history_store_bytes",
            "history_epochs_written_total",
            "history_compactions_total",
            "history_retention_deleted_total",
            "alerts_fired_total",
            "history_alert_sink_errors_total",
        ):
            assert f"# TYPE {family} " in text, family
        assert 'history_rows_total{table="epochs"} 4' in text
        assert 'alerts_fired_total{rule="transition:any",sink="ledger"} 1' in text


class TestEngineHistoryFlag:
    def test_engine_run_writes_store(self, tmp_path, capsys):
        store = str(tmp_path / "engine.db")
        assert main(
            [
                "engine", "--scenario", "S02", "--epochs", "3",
                "--history", store,
            ]
        ) == 0
        capsys.readouterr()
        assert main(["history", "tail", store, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        assert all(row["source"] == "engine" for row in rows)
        assert all(row["sealed_by"] == "batch" for row in rows)

    def test_bad_alert_rule_is_usage_error(self, tmp_path, capsys):
        assert main(
            [
                "engine", "--scenario", "S02", "--epochs", "1",
                "--history", str(tmp_path / "h.db"),
                "--alert", "garbage",
            ]
        ) == 2
        assert "unparseable" in capsys.readouterr().err


class TestSoakHistory:
    def test_soak_reports_history_shape(self, capsys, tmp_path):
        store = str(tmp_path / "soak.db")
        assert main(
            [
                "stream", "--soak", "--nodes", "8", "--epochs", "4",
                "--history", store, "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["history_epochs"] == 4
        assert payload["history_bytes"] > 0
        assert payload["history_bytes_compacted"] > 0
        assert payload["alerts_fired"] == 0
