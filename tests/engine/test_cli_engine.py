"""Golden tests for ``python -m repro engine``."""

import json

import pytest

from repro.__main__ import main


class TestEngineCommand:
    def test_single_scenario_golden_output(self, capsys):
        assert main(["engine", "--scenario", "S16", "--epochs", "3", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == "id   epochs  flagged  matches serial"
        assert lines[2] == "S16  3       0/3      yes"
        assert "epochs processed  : 3" in out
        assert "mode              : full" in out
        assert "cache hits/misses : 2/1" in out
        assert "shards            : 2" in out

    def test_metrics_flag(self, capsys):
        assert main(
            ["engine", "--scenario", "S01", "--epochs", "2", "--shards", "1", "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "engine_epochs 2" in out
        assert "engine_cache_hits 1" in out
        assert "engine_cache_misses 1" in out
        assert "engine_shards 1" in out

    def test_detecting_scenario_flags_every_epoch(self, capsys):
        assert main(["engine", "--scenario", "S01", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "S01  2       2/2      yes" in out

    def test_json_output_golden(self, capsys):
        assert main(
            ["engine", "--scenario", "S16", "--epochs", "3", "--shards", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mismatched"] == 0
        assert payload["scenarios"] == [
            {"epochs": 3, "flagged": 0, "id": "S16", "matches_serial": True}
        ]
        stats = payload["stats"]
        assert stats["epochs"] == 3
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 1
        assert stats["mode"] == "full"
        assert stats["shards"] == 2
        assert set(stats["stage_seconds"]) == {"collect", "harden", "check", "total"}

    def test_incremental_mode_reports_reuse(self, capsys):
        assert main(
            ["engine", "--scenario", "S16", "--epochs", "3", "--mode", "incremental"]
        ) == 0
        out = capsys.readouterr().out
        assert "S16  3       0/3      yes" in out
        assert "mode              : incremental" in out
        assert "entities          : " in out
        assert "repair solves     : " in out

    def test_incremental_json_counts_reused_entities(self, capsys):
        assert main(
            [
                "engine",
                "--scenario",
                "S16",
                "--epochs",
                "3",
                "--mode",
                "incremental",
                "--json",
            ]
        ) == 0
        stats = json.loads(capsys.readouterr().out)["stats"]
        assert stats["mode"] == "incremental"
        assert sum(stats["entities_recomputed"].values()) > 0
        assert sum(stats["entities_reused"].values()) > 0
        assert 0.0 < stats["reuse_rate"] < 1.0

    def test_unknown_mode_is_a_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["engine", "--scenario", "S01", "--mode", "sideways"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["engine", "--scenario", "S99"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'S99'" in err
        assert "S01" in err  # the error lists the known ids

    def test_invalid_shard_count_is_a_clean_error(self, capsys):
        assert main(["engine", "--scenario", "S01", "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err
