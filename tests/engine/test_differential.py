"""Differential harness: engine output must equal the serial path.

Replays the full scenario catalog and randomized Waxman worlds through
both the serial :class:`~repro.core.pipeline.Hodor` and the
:class:`~repro.engine.ValidationEngine`, asserting the resulting
:class:`~repro.core.report.ValidationReport` objects are observably
identical -- verdict for verdict, invariant for invariant, finding for
finding, in the same order.  Floats must match bitwise except values
the R2 lstsq repair produced, which :func:`repro.engine.compare_reports`
holds to a tight ``math.isclose`` tolerance.
"""

import pytest

from repro.core.pipeline import Hodor
from repro.core.signals import Confidence
from repro.engine import ValidationEngine, compare_reports
from repro.scenarios.catalog import all_scenarios, scenario_by_id

from tests.engine.conftest import random_epoch

SHARD_COUNTS = (1, 2, 8)


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.scenario_id)
def test_catalog_scenario_matches_serial(scenario):
    """Every catalog entry, validated by both paths, at several shard counts."""
    world = scenario.build(seed=7)
    outcome = world.run_epoch()
    for shards in SHARD_COUNTS:
        with ValidationEngine(
            world.topology, config=world.hodor_config, shards=shards
        ) as engine:
            report = engine.validate(outcome.snapshot, outcome.inputs)
            diffs = compare_reports(outcome.report, report)
            assert not diffs, f"{scenario.scenario_id} shards={shards}: {diffs[:5]}"


@pytest.mark.parametrize("scenario_id", ["S01", "S07", "S12", "S16"])
def test_multi_epoch_timeline_matches_serial(scenario_id):
    """A single long-lived engine stays equivalent across a timeline."""
    world = scenario_by_id(scenario_id).build(seed=3)
    with ValidationEngine(
        world.topology, config=world.hodor_config, shards=2
    ) as engine:
        for epoch in range(3):
            outcome = world.run_epoch(timestamp=float(epoch))
            report = engine.validate(outcome.snapshot, outcome.inputs)
            diffs = compare_reports(outcome.report, report)
            assert not diffs, f"epoch {epoch}: {diffs[:5]}"
        assert engine.stats.cache_hits == 2
        assert engine.stats.cache_misses == 1


@pytest.mark.parametrize(
    "size,seed", [(6, 0), (8, 1), (12, 2), (16, 3), (24, 4)]
)
def test_random_world_matches_serial(size, seed):
    """Randomized clean worlds: bitwise-equal reports at every shard count."""
    topology, snapshot, inputs = random_epoch(size, seed)
    serial = Hodor(topology).validate(snapshot, inputs)
    for shards in SHARD_COUNTS:
        with ValidationEngine(topology, shards=shards) as engine:
            report = engine.validate(snapshot, inputs)
            diffs = compare_reports(serial, report)
            assert not diffs, f"shards={shards}: {diffs[:5]}"


@pytest.mark.parametrize("size,seed", [(8, 10), (12, 11), (16, 12)])
def test_corrupted_world_exercises_repair_and_matches(size, seed):
    """Corrupted counters force the R1/R2 repair path through both sides."""
    topology, snapshot, inputs = random_epoch(size, seed, corrupted=True)
    serial = Hodor(topology).validate(snapshot, inputs)
    assert any(f.code == "R1_COUNTER_MISMATCH" for f in serial.hardened.findings)
    for shards in SHARD_COUNTS:
        with ValidationEngine(topology, shards=shards) as engine:
            report = engine.validate(snapshot, inputs)
            diffs = compare_reports(serial, report)
            assert not diffs, f"shards={shards}: {diffs[:5]}"


def test_repaired_values_compared_with_tolerance():
    """The comparator treats REPAIRED values as lstsq-derived."""
    topology, snapshot, inputs = random_epoch(8, 10, corrupted=True)
    serial = Hodor(topology).validate(snapshot, inputs)
    repaired = [
        v
        for v in serial.hardened.edge_flows.values()
        if v.confidence == Confidence.REPAIRED
    ]
    if not repaired:
        pytest.skip("corruption did not yield a repair on this seed")
    # The engine's report with an identical snapshot must still match.
    with ValidationEngine(topology, shards=4) as engine:
        assert not compare_reports(serial, engine.validate(snapshot, inputs))
