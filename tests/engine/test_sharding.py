"""ShardMap edge cases: degenerate inputs and worker failures."""

import threading

import pytest

from repro.engine import ShardMap, split_slices


class TestDegenerateInputs:
    def test_more_shards_than_items_never_yields_empty_slices(self):
        with ShardMap(shards=16, min_slice_items=1) as shard_map:
            results = shard_map.map_slices(lambda chunk: list(chunk), [1, 2, 3])
        merged = [item for chunk in results for item in chunk]
        assert merged == [1, 2, 3]
        assert all(chunk for chunk in results)  # no empty dispatch
        assert len(results) == 3  # capped at the item count

    def test_empty_input_is_one_inline_call(self):
        calls = []
        with ShardMap(shards=8, min_slice_items=1) as shard_map:
            results = shard_map.map_slices(
                lambda chunk: calls.append(len(chunk)) or "done", []
            )
        assert results == ["done"]
        assert calls == [0]

    def test_single_item_runs_inline(self):
        with ShardMap(shards=8, min_slice_items=1) as shard_map:
            before = shard_map.tasks_dispatched
            assert shard_map.map_slices(list, ["only"]) == [["only"]]
            assert shard_map.tasks_dispatched == before + 1

    def test_min_slice_items_collapses_small_sequences(self):
        """Ten items at min 32/slice run inline even with many shards."""
        seen_threads = set()

        def worker(chunk):
            seen_threads.add(threading.get_ident())
            return len(chunk)

        with ShardMap(shards=8, min_slice_items=32) as shard_map:
            assert shard_map.map_slices(worker, list(range(10))) == [10]
        assert seen_threads == {threading.get_ident()}

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardMap(shards=0)
        with pytest.raises(ValueError, match="min_slice_items must be >= 1"):
            ShardMap(shards=2, min_slice_items=0)


class TestWorkerExceptions:
    def test_inline_worker_exception_propagates(self):
        with ShardMap(shards=1) as shard_map:
            with pytest.raises(RuntimeError, match="boom"):
                shard_map.map_slices(self._explode_on(None), [1, 2, 3])

    def test_pooled_worker_exception_propagates(self):
        """A failure in a pool-dispatched slice surfaces to the caller."""
        with ShardMap(shards=4, min_slice_items=1) as shard_map:
            with pytest.raises(RuntimeError, match="boom"):
                # Item 7 lands in the last slice, which goes to the pool.
                shard_map.map_slices(self._explode_on(7), list(range(8)))

    def test_first_slice_exception_propagates(self):
        """The calling thread runs slice 0 itself; its failure raises too."""
        with ShardMap(shards=4, min_slice_items=1) as shard_map:
            with pytest.raises(RuntimeError, match="boom"):
                shard_map.map_slices(self._explode_on(0), list(range(8)))

    def test_map_still_usable_after_a_failure(self):
        with ShardMap(shards=4, min_slice_items=1) as shard_map:
            with pytest.raises(RuntimeError):
                shard_map.map_slices(self._explode_on(3), list(range(8)))
            results = shard_map.map_slices(lambda chunk: sum(chunk), list(range(8)))
            assert sum(results) == sum(range(8))

    @staticmethod
    def _explode_on(value):
        def worker(chunk):
            if value is None or value in chunk:
                raise RuntimeError("boom")
            return list(chunk)

        return worker


class TestSliceShapes:
    def test_slices_are_contiguous_and_ordered(self):
        for num_items in (1, 2, 5, 17, 64):
            for shards in (1, 2, 3, 8, 100):
                slices = split_slices(num_items, shards)
                assert slices[0][0] == 0
                assert slices[-1][1] == num_items
                for (_, prev_stop), (start, stop) in zip(slices, slices[1:]):
                    assert start == prev_stop
                    assert stop > start
                sizes = [stop - start for start, stop in slices]
                assert max(sizes) - min(sizes) <= 1
