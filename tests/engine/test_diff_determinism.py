"""Regression: compare_reports must emit differences deterministically.

``compare_reports`` used to iterate ``a.verdicts.keys() &
b.verdicts.keys()`` (and the same for ``checks``) straight into its
ordered diff list -- set-intersection order depends on
PYTHONHASHSEED, so the *same* pair of reports could produce
differently-ordered diff output across processes.  The D1 lint rule
now flags that pattern; these tests pin the fixed behaviour: diff
lines come out sorted by key, independent of dict insertion order.
"""

from repro.core.invariants import CheckResult
from repro.core.report import InputVerdict, ValidationReport
from repro.core.signals import HardenedState
from repro.engine import compare_reports


def _report(verdict_names, note, order):
    report = ValidationReport(timestamp=1.0, hardened=HardenedState())
    for name in order:
        report.verdicts[name] = InputVerdict(
            input_name=name,
            valid=name not in verdict_names,
            num_violations=1 if name in verdict_names else 0,
            num_evaluated=3,
        )
        report.checks[name] = CheckResult(input_name=name, notes=[note])
    return report


NAMES = ("zeta", "mid", "alpha")  # deliberately not sorted


def test_verdict_diffs_are_sorted_by_key():
    a = _report(verdict_names=set(), note="x", order=NAMES)
    b = _report(verdict_names=set(NAMES), note="x", order=NAMES)
    verdict_lines = [d for d in compare_reports(a, b) if d.startswith("verdicts[")]
    assert len(verdict_lines) == 3
    assert verdict_lines == sorted(verdict_lines)
    assert [line.split("'")[1] for line in verdict_lines] == ["alpha", "mid", "zeta"]


def test_check_note_diffs_are_sorted_by_key():
    a = _report(verdict_names=set(), note="x", order=NAMES)
    b = _report(verdict_names=set(), note="y", order=NAMES)
    check_lines = [d for d in compare_reports(a, b) if d.startswith("checks[")]
    assert [line.split("'")[1] for line in check_lines] == ["alpha", "mid", "zeta"]


def test_diff_output_is_identical_across_insertion_orders():
    # Same logical reports built with opposite dict insertion orders
    # must yield byte-identical diff lists (set iteration no longer
    # leaks into the output).  Key *order* differences are still
    # reported -- via the explicit key-order diff, not via ordering of
    # the per-key lines.
    a1 = _report(verdict_names=set(), note="x", order=NAMES)
    b1 = _report(verdict_names=set(NAMES), note="y", order=NAMES)
    a2 = _report(verdict_names=set(), note="x", order=tuple(reversed(NAMES)))
    b2 = _report(verdict_names=set(NAMES), note="y", order=tuple(reversed(NAMES)))
    diffs_1 = [d for d in compare_reports(a1, b1) if not d.startswith(("verdicts: ", "checks: "))]
    diffs_2 = [d for d in compare_reports(a2, b2) if not d.startswith(("verdicts: ", "checks: "))]
    assert diffs_1 == diffs_2
    assert diffs_1  # the reports really do differ


def test_identical_reports_still_compare_clean():
    a = _report(verdict_names=set(), note="x", order=NAMES)
    b = _report(verdict_names=set(), note="x", order=NAMES)
    assert compare_reports(a, b) == []
