"""Differential tests for the array-compiled vector backend.

The vector backend's contract is total observational equivalence: for
every snapshot the per-entity reference units can validate, the
array-compiled path must produce a byte-identical
:class:`~repro.core.report.ValidationReport` *and* identical
:class:`~repro.obs.provenance.VerdictProvenance` records -- in full
mode, in incremental mode, on priming epochs, on deltas, and on
identical-snapshot replays.  These tests pin that contract over the
whole outage catalog, randomized worlds, and hypothesis-driven fuzz
timelines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ValidationEngine, compare_reports
from repro.fuzz.generate import CaseGenerator
from repro.scenarios.catalog import all_scenarios

from tests.engine.conftest import random_epoch

MODES = ("full", "incremental")


def _provenance_dict(report):
    return {name: record.to_dict() for name, record in report.provenance.items()}


def assert_reports_identical(reference, candidate, context=""):
    diffs = compare_reports(reference, candidate)
    assert not diffs, f"{context}: {diffs[:5]}"
    assert _provenance_dict(reference) == _provenance_dict(candidate), (
        f"{context}: provenance diverged"
    )


def _scenario_ids():
    return [s.scenario_id for s in all_scenarios()]


class TestCatalogParity:
    """Every catalog scenario, serial reference vs vector engine."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("scenario_id", _scenario_ids())
    def test_timeline_parity(self, scenario_id, mode):
        scenario = next(
            s for s in all_scenarios() if s.scenario_id == scenario_id
        )
        world = scenario.build(seed=7)
        with ValidationEngine(
            world.topology,
            config=world.hodor_config,
            mode=mode,
            backend="vector",
        ) as engine:
            for epoch in range(3):
                outcome = world.run_epoch(timestamp=float(epoch))
                report = engine.validate(outcome.snapshot, outcome.inputs)
                assert_reports_identical(
                    outcome.report,
                    report,
                    context=f"{scenario_id} {mode} epoch {epoch}",
                )
            assert engine.stats.backend == "vector"
            assert engine.stats.epochs == 3


class TestRandomWorlds:
    """Random Waxman worlds, clean and corrupted, both modes."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize(
        "size,seed,corrupted",
        [(6, 0, False), (8, 1, False), (12, 2, True), (16, 3, True)],
    )
    def test_single_epoch_parity(self, size, seed, corrupted, mode):
        topology, snapshot, inputs = random_epoch(size, seed, corrupted=corrupted)
        with ValidationEngine(topology, mode=mode) as serial:
            reference = serial.validate(snapshot, inputs)
        with ValidationEngine(topology, mode=mode, backend="vector") as engine:
            report = engine.validate(snapshot, inputs)
        assert_reports_identical(
            reference, report, context=f"size={size} seed={seed}"
        )

    @pytest.mark.parametrize("mode", MODES)
    def test_identical_snapshot_replay(self, mode):
        """Replaying the same snapshot object takes the wholesale
        short-circuit and still reproduces the serial report exactly."""
        topology, snapshot, inputs = random_epoch(10, 4)
        with ValidationEngine(topology, mode=mode) as serial:
            reference = serial.validate(snapshot, inputs)
        with ValidationEngine(topology, mode=mode, backend="vector") as engine:
            for replay in range(3):
                report = engine.validate(snapshot, inputs)
                assert_reports_identical(
                    reference, report, context=f"replay {replay}"
                )

    def test_vector_records_reuse_on_replay(self):
        """Unlike the python full path, the vector backend is
        delta-aware in both modes: an identical replay shows up as
        reused entities in the stats."""
        topology, snapshot, inputs = random_epoch(10, 5)
        with ValidationEngine(topology, backend="vector") as engine:
            engine.validate(snapshot, inputs)
            primed = engine.stats.total_entities_reused
            engine.validate(snapshot, inputs)
            assert engine.stats.total_entities_reused > primed

    def test_model_compiles_once_per_topology(self):
        topology, snapshot, inputs = random_epoch(8, 6)
        with ValidationEngine(topology, backend="vector") as engine:
            for _ in range(4):
                engine.validate(snapshot, inputs)
            store = engine._model_store
            assert store.misses == 1
            assert len(store) == 1

    def test_unknown_backend_rejected(self):
        topology, _, _ = random_epoch(6, 0)
        with pytest.raises(ValueError, match="backend"):
            ValidationEngine(topology, backend="numpy")


class TestFuzzTimelineParity:
    """Hypothesis-driven fault timelines through the vector backend.

    The :class:`~repro.fuzz.generate.CaseGenerator` draws multi-epoch
    timelines over the whole fault palette (malformed telemetry, probe
    outages, aggregation bugs, drain intent faults, ...), which is
    exactly the input space where the vector backend's exceptional
    routes -- serial fallbacks for non-finite readings, out-of-universe
    links, malformed drains -- must stay finding-identical.
    """

    @given(seed=st.integers(min_value=0, max_value=500), mode=st.sampled_from(MODES))
    @settings(max_examples=12, deadline=None)
    def test_generated_timeline_parity(self, seed, mode):
        spec = CaseGenerator().generate(seed)
        epochs = []
        references = []
        for index in range(spec.num_epochs):
            world = spec.world_for_epoch(index)
            outcome = world.run_epoch(timestamp=spec.timestamp_for(index))
            epochs.append((outcome.snapshot, outcome.inputs))
            references.append(outcome.report)
        with ValidationEngine(
            spec.topology, config=spec.hodor_config, mode=mode, backend="vector"
        ) as engine:
            for index, (snapshot, inputs) in enumerate(epochs):
                report = engine.validate(snapshot, inputs)
                assert_reports_identical(
                    references[index],
                    report,
                    context=f"seed={seed} mode={mode} epoch={index}",
                )
