"""Unit tests for the topology-keyed cache layer."""

import pytest

from repro.engine.cache import (
    TopologyCache,
    TopologyCacheStore,
    structural_key,
    topology_fingerprint,
)
from repro.net.topology import Link, Node, Topology
from repro.topologies.abilene import abilene


def small_topology(capacity: float = 10.0, drained: bool = False) -> Topology:
    topo = Topology("small")
    topo.add_node(Node("a"))
    topo.add_node(Node("b", drained=drained))
    topo.add_node(Node("c"))
    topo.add_link(Link("a", "b", capacity=capacity))
    topo.add_link(Link("b", "c"))
    return topo


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert topology_fingerprint(small_topology()) == topology_fingerprint(
            small_topology()
        )
        assert structural_key(small_topology()) == structural_key(small_topology())

    def test_independent_of_construction_order(self):
        forward = small_topology()
        backward = Topology("small-reversed")
        backward.add_node(Node("c"))
        backward.add_node(Node("b"))
        backward.add_node(Node("a"))
        backward.add_link(Link("b", "c"))
        backward.add_link(Link("a", "b", capacity=10.0))
        assert structural_key(forward) == structural_key(backward)

    def test_changes_on_node_added(self):
        grown = small_topology()
        grown.add_node(Node("d"))
        assert topology_fingerprint(grown) != topology_fingerprint(small_topology())

    def test_changes_on_link_added(self):
        meshed = small_topology()
        meshed.add_link(Link("a", "c"))
        assert topology_fingerprint(meshed) != topology_fingerprint(small_topology())

    def test_changes_on_capacity(self):
        assert topology_fingerprint(small_topology(capacity=20.0)) != (
            topology_fingerprint(small_topology(capacity=10.0))
        )

    def test_changes_on_drain_bit(self):
        assert topology_fingerprint(small_topology(drained=True)) != (
            topology_fingerprint(small_topology(drained=False))
        )


class TestTopologyCache:
    def test_orders_mirror_topology(self):
        topo = abilene()
        cache = TopologyCache.from_topology(topo)
        assert cache.nodes == tuple(topo.node_names())
        assert cache.directed_edges == tuple(topo.directed_edges())
        assert cache.links == tuple(topo.links())
        assert cache.sorted_nodes == tuple(sorted(topo.node_names()))
        assert cache.sorted_link_names == tuple(sorted(link.name for link in topo.links()))

    def test_incidence_maps(self):
        cache = TopologyCache.from_topology(small_topology())
        assert set(cache.node_edges["b"]) == {
            ("a", "b"),
            ("b", "a"),
            ("b", "c"),
            ("c", "b"),
        }
        assert cache.node_links["a"] == ("a~b",)
        assert set(cache.node_links["b"]) == {"a~b", "b~c"}

    def test_conservation_structure(self):
        topo = small_topology()
        cache = TopologyCache.from_topology(topo)
        assert cache.conservation.nodes == tuple(topo.node_names())
        assert cache.conservation.edges == tuple(topo.directed_edges())


class TestTopologyCacheStore:
    def test_hit_after_miss(self):
        store = TopologyCacheStore()
        first = store.get(small_topology())
        second = store.get(small_topology())
        assert first is second
        assert (store.hits, store.misses) == (1, 1)
        assert len(store) == 1

    def test_mutation_misses(self):
        store = TopologyCacheStore()
        store.get(small_topology())
        store.get(small_topology(capacity=20.0))
        assert (store.hits, store.misses) == (0, 2)
        assert len(store) == 2

    def test_lru_eviction(self):
        store = TopologyCacheStore(max_entries=2)
        store.get(small_topology(capacity=1.0))
        store.get(small_topology(capacity=2.0))
        store.get(small_topology(capacity=3.0))  # evicts capacity=1.0
        assert len(store) == 2
        store.get(small_topology(capacity=1.0))
        assert store.misses == 4
        assert store.hits == 0

    def test_rejects_zero_capacity_store(self):
        with pytest.raises(ValueError):
            TopologyCacheStore(max_entries=0)
