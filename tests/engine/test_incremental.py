"""Differential harness for ``mode="incremental"``.

The incremental engine's whole contract is report-for-report equality
with the serial path while recomputing only what changed.  These tests
drive it through the scenario catalog, randomized churn streams,
corruption that appears and disappears between epochs (so repairs from
the *previous* epoch must dirty this one), and controller-input
changes (demand, believed topology, drain bits) that arrive with an
unchanged snapshot.
"""

import dataclasses
import random

import pytest

from repro.core.pipeline import Hodor
from repro.engine import ValidationEngine, compare_reports
from repro.experiments import churn_snapshot
from repro.scenarios.catalog import all_scenarios

from tests.engine.conftest import random_epoch


def _assert_matches(serial, report, context):
    diffs = compare_reports(serial, report)
    assert not diffs, f"{context}: {diffs[:5]}"


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.scenario_id)
def test_catalog_scenario_matches_serial(scenario):
    """Every catalog entry over a 3-epoch timeline, one long-lived engine."""
    world = scenario.build(seed=7)
    with ValidationEngine(
        world.topology, config=world.hodor_config, mode="incremental"
    ) as engine:
        for epoch in range(3):
            outcome = world.run_epoch(timestamp=float(epoch))
            report = engine.validate(outcome.snapshot, outcome.inputs)
            _assert_matches(
                outcome.report, report, f"{scenario.scenario_id} epoch {epoch}"
            )


@pytest.mark.parametrize(
    "size,seed,churn",
    [(8, 20, 0.0), (12, 21, 0.05), (16, 22, 0.3), (12, 23, 1.0)],
)
def test_churned_world_matches_serial(size, seed, churn):
    """Randomized churn streams at several churn rates, against fresh Hodors."""
    topology, snapshot, inputs = random_epoch(size, seed)
    rng = random.Random(seed)
    with ValidationEngine(topology, mode="incremental") as engine:
        for epoch in range(5):
            serial = Hodor(topology).validate(snapshot, inputs)
            report = engine.validate(snapshot, inputs)
            _assert_matches(serial, report, f"churn={churn} epoch {epoch}")
            snapshot = churn_snapshot(snapshot, churn, rng, float(epoch + 1))
        if churn == 0.0:
            # Nothing moved after priming, so nothing may recompute.
            assert engine.stats.reuse_rate() > 0.7


@pytest.mark.parametrize("size,seed", [(8, 10), (12, 11)])
def test_corruption_appearing_and_disappearing(size, seed):
    """Repairs from the previous epoch dirty this one when they vanish.

    Epoch order: clean -> corrupted (repair appears) -> clean (repair
    disappears; the repaired values revert) -> corrupted again.  Each
    transition must propagate through the drain hardening that consumed
    the repaired flows.
    """
    topology, clean_snap, inputs = random_epoch(size, seed)
    _, corrupt_snap, _ = random_epoch(size, seed, corrupted=True)
    with ValidationEngine(topology, mode="incremental") as engine:
        for epoch, snap in enumerate(
            (clean_snap, corrupt_snap, clean_snap, corrupt_snap)
        ):
            serial = Hodor(topology).validate(snap, inputs)
            report = engine.validate(snap, inputs)
            _assert_matches(serial, report, f"epoch {epoch}")
        assert engine.stats.repair_solves > 0
        # The repeated corrupted epoch replays the identical component,
        # so the conservation solver cache must have hit.
        assert engine.stats.repair_reuses > 0


@pytest.mark.parametrize(
    "mutate",
    [
        lambda inputs: dataclasses.replace(inputs, demand=inputs.demand.scaled(2.0)),
        lambda inputs: dataclasses.replace(
            inputs, topology=_without_first_link(inputs.topology)
        ),
        lambda inputs: dataclasses.replace(
            inputs, drains=_flipped_drains(inputs.drains)
        ),
    ],
    ids=["demand-scaled", "believed-link-dropped", "drain-bit-flipped"],
)
def test_input_change_with_identical_snapshot(mutate):
    """Controller-input changes must dirty the checks even with zero churn."""
    topology, snapshot, inputs = random_epoch(10, 40)
    changed_inputs = mutate(inputs)
    with ValidationEngine(topology, mode="incremental") as engine:
        for epoch, epoch_inputs in enumerate((inputs, changed_inputs, inputs)):
            serial = Hodor(topology).validate(snapshot, epoch_inputs)
            report = engine.validate(snapshot, epoch_inputs)
            _assert_matches(serial, report, f"epoch {epoch}")


def _without_first_link(topology):
    believed = topology.copy()
    link = believed.links()[0]
    believed.remove_link(link.a, link.b)
    return believed


def _flipped_drains(drains):
    flipped = dataclasses.replace(drains, nodes=dict(drains.nodes))
    node = sorted(flipped.nodes)[0] if flipped.nodes else None
    if node is not None:
        flipped.nodes[node] = not flipped.nodes[node]
    return flipped


def test_identical_replay_reuses_every_entity():
    """A byte-identical epoch recomputes nothing and reuses everything."""
    topology, snapshot, inputs = random_epoch(12, 50)
    serial = Hodor(topology).validate(snapshot, inputs)
    with ValidationEngine(topology, mode="incremental") as engine:
        engine.validate(snapshot, inputs)
        primed = engine.stats.total_entities_recomputed
        assert primed > 0  # the priming epoch computes everything
        assert engine.stats.total_entities_reused == 0
        report = engine.validate(snapshot, inputs)
        _assert_matches(serial, report, "replay")
        assert engine.stats.total_entities_recomputed == primed
        assert engine.stats.total_entities_reused == primed


def test_reset_reprimes_from_scratch():
    """After ``reset()`` the next epoch recomputes everything, correctly."""
    topology, snapshot, inputs = random_epoch(8, 60)
    serial = Hodor(topology).validate(snapshot, inputs)
    with ValidationEngine(topology, mode="incremental") as engine:
        engine.validate(snapshot, inputs)
        primed = engine.stats.total_entities_recomputed
        for validator in engine._incremental.values():
            validator.reset()
        report = engine.validate(snapshot, inputs)
        _assert_matches(serial, report, "post-reset")
        assert engine.stats.total_entities_recomputed == 2 * primed


def test_unknown_mode_is_rejected():
    topology, _snapshot, _inputs = random_epoch(6, 0)
    with pytest.raises(ValueError, match="unknown engine mode"):
        ValidationEngine(topology, mode="sideways")


def test_mode_property_and_stats_mode():
    topology, snapshot, inputs = random_epoch(6, 0)
    with ValidationEngine(topology, mode="incremental") as engine:
        assert engine.mode == "incremental"
        assert engine.stats.mode == "incremental"
        engine.validate(snapshot, inputs)
        assert engine.stats.epochs == 1
        assert engine.stats.stage_seconds["total"] > 0.0
