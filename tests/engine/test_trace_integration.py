"""Acceptance: full-catalog engine replay with tracing and metrics on.

Drives ``python -m repro engine`` over every catalog scenario with
``--trace``/``--trace-jsonl``/``--metrics-prom`` and checks the whole
observability contract end to end: the Chrome export is schema-valid
with one epoch span per replayed epoch and nested stage/shard spans,
every flagged verdict instant carries provenance naming the fired
invariants and their signals, and the Prometheus exposition parses and
round-trips the engine's own counters.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs import load_trace_file
from repro.scenarios.catalog import all_scenarios

from tests.obs.test_metrics import parse_exposition

EPOCHS = 2


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One full-catalog CLI replay; returns the emitted artifact paths."""
    out = tmp_path_factory.mktemp("obs")
    paths = {
        "chrome": out / "trace.json",
        "jsonl": out / "trace.jsonl",
        "prom": out / "metrics.prom",
        "stdout": out / "stdout.json",
    }
    import contextlib
    import io

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(
            [
                "engine",
                "--epochs",
                str(EPOCHS),
                "--shards",
                "2",
                "--json",
                "--trace",
                str(paths["chrome"]),
                "--trace-jsonl",
                str(paths["jsonl"]),
                "--metrics-prom",
                str(paths["prom"]),
            ]
        )
    assert code == 0
    paths["stdout"].write_text(stdout.getvalue())
    return paths


@pytest.fixture(scope="module")
def chrome_payload(traced_run):
    return json.loads(traced_run["chrome"].read_text())


@pytest.fixture(scope="module")
def cli_payload(traced_run):
    return json.loads(traced_run["stdout"].read_text())


class TestChromeTraceSchema:
    def test_top_level_shape(self, chrome_payload):
        assert set(chrome_payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert chrome_payload["displayTimeUnit"] == "ms"
        assert chrome_payload["otherData"]["schema_version"] == 1

    def test_every_event_is_schema_valid(self, chrome_payload):
        for event in chrome_payload["traceEvents"]:
            assert isinstance(event["name"], str) and event["name"]
            assert event["ph"] in ("X", "i")
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
            assert isinstance(event["args"], dict)
            assert isinstance(event["args"]["span_id"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            else:
                assert event["s"] == "t"

    def test_one_epoch_span_per_catalog_epoch(self, chrome_payload):
        epochs = [
            e
            for e in chrome_payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "epoch"
        ]
        assert len(epochs) == len(all_scenarios()) * EPOCHS

    def test_epochs_nest_stage_and_shard_spans(self, chrome_payload):
        spans = [e for e in chrome_payload["traceEvents"] if e["ph"] == "X"]
        by_parent = {}
        for span in spans:
            by_parent.setdefault(span["args"].get("parent_id"), []).append(span)
        epoch_ids = [s["args"]["span_id"] for s in spans if s["name"] == "epoch"]
        for epoch_id in epoch_ids:
            stages = {s["name"] for s in by_parent.get(epoch_id, [])}
            assert stages == {"collect", "harden", "check"}
        stage_ids = {
            s["args"]["span_id"]
            for s in spans
            if s["name"] in ("collect", "harden", "check")
        }
        shard_spans = [s for s in spans if s["name"] == "shard"]
        assert shard_spans, "sharded stages must record slice spans"
        for shard in shard_spans:
            assert shard["args"]["parent_id"] in stage_ids
            assert shard["args"]["items"] > 0
            assert shard["cat"] == "shard"

    def test_scenario_instants_mark_replay_boundaries(self, chrome_payload):
        scenario_ids = [
            e["args"]["scenario"]
            for e in chrome_payload["traceEvents"]
            if e["ph"] == "i" and e["name"] == "scenario"
        ]
        assert scenario_ids == [s.scenario_id for s in all_scenarios()]


class TestVerdictProvenance:
    def test_every_flagged_verdict_names_invariants_and_signals(self, chrome_payload):
        verdicts = [
            e
            for e in chrome_payload["traceEvents"]
            if e["ph"] == "i" and e["name"] == "verdict"
        ]
        assert len(verdicts) == len(all_scenarios()) * EPOCHS * 3  # 3 inputs each
        flagged = [v for v in verdicts if not v["args"]["valid"]]
        assert flagged, "the catalog contains detecting scenarios"
        for verdict in flagged:
            provenance = verdict["args"]["provenance"]
            assert provenance["valid"] is False
            assert provenance["num_violations"] >= 1
            assert provenance["fired"], "flagged verdict must carry provenance"
            for fired in provenance["fired"]:
                assert fired["name"].count("/") >= 2  # kind/entity shape
                assert fired["signals"], f"{fired['name']} resolved no signals"
                for signal in fired["signals"]:
                    assert signal["signal"]
                    assert signal["disposition"] in (
                        "raw", "confirmed", "repaired", "unknown",
                    )

    def test_jsonl_and_chrome_agree_on_verdicts(self, traced_run, chrome_payload):
        jsonl_events = load_trace_file(str(traced_run["jsonl"]))
        jsonl_verdicts = [
            e["args"] for e in jsonl_events
            if e["type"] == "instant" and e["name"] == "verdict"
        ]
        chrome_verdicts = [
            {k: v for k, v in e["args"].items() if k not in ("span_id", "parent_id")}
            for e in chrome_payload["traceEvents"]
            if e["ph"] == "i" and e["name"] == "verdict"
        ]
        assert jsonl_verdicts == chrome_verdicts

    def test_trace_subcommand_renders_both_formats(self, traced_run, capsys):
        assert main(["trace", str(traced_run["chrome"]), "--epochs", "1"]) == 0
        chrome_text = capsys.readouterr().out
        assert chrome_text.startswith("trace: ")
        assert "epoch" in chrome_text
        assert main(["trace", str(traced_run["jsonl"]), "--provenance"]) == 0
        jsonl_text = capsys.readouterr().out
        assert "violations" in jsonl_text


class TestPrometheusRoundTrip:
    def test_exposition_parses_with_help_and_type(self, traced_run):
        helps, types, samples = parse_exposition(traced_run["prom"].read_text())
        assert samples
        for name, _ in samples:
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                base = name[: -len(suffix)] if name.endswith(suffix) else None
                if base and types.get(base) == "histogram":
                    family = base
            assert family in helps, f"{name} lacks # HELP"
            assert family in types, f"{name} lacks # TYPE"

    def test_counters_round_trip_engine_stats(self, traced_run, cli_payload):
        stats = cli_payload["stats"]
        _, _, samples = parse_exposition(traced_run["prom"].read_text())

        def sample(name, **labels):
            return samples[(name, tuple(sorted(labels.items())))]

        assert sample("engine_epochs_total") == stats["epochs"]
        assert sample("engine_cache_hits_total") == stats["cache_hits"]
        assert sample("engine_cache_misses_total") == stats["cache_misses"]
        assert sample("engine_shard_tasks_total") == stats["shard_tasks"]
        assert sample("engine_shards") == stats["shards"]
        for stage in ("collect", "harden", "check"):
            assert sample("engine_stage_seconds_total", stage=stage) == pytest.approx(
                stats["stage_seconds"][stage]
            )
        assert sample("engine_stage_seconds_total", stage="all") == pytest.approx(
            stats["stage_seconds"]["total"]
        )

    def test_latency_histograms_cover_every_epoch(self, traced_run, cli_payload):
        epochs = cli_payload["stats"]["epochs"]
        _, types, samples = parse_exposition(traced_run["prom"].read_text())
        assert types["engine_epoch_latency_seconds"] == "histogram"
        assert samples[("engine_epoch_latency_seconds_count", ())] == epochs
        for stage in ("collect", "harden", "check"):
            key = ("engine_stage_latency_seconds_count", (("stage", stage),))
            assert samples[key] == epochs
