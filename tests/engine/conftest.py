"""Shared fixtures for the engine differential harness.

Builds complete validation epochs -- topology, telemetry snapshot,
controller inputs -- for randomized Waxman worlds, cached per
(size, seed, corrupted) so hypothesis-driven tests can re-draw them
cheaply.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import ProbeEngine
from repro.topologies.synthetic import waxman_topology

_EPOCH_CACHE: Dict[Tuple[int, int, bool], tuple] = {}


def random_epoch(size: int, seed: int, corrupted: bool = False):
    """A full validation epoch over a random Waxman world.

    Returns ``(topology, snapshot, inputs)``.  With ``corrupted=True``
    two counters are falsified so the R1/R2 detect-and-repair path
    (including the lstsq solve) is exercised, not just the clean path.
    """
    key = (size, seed, corrupted)
    if key not in _EPOCH_CACHE:
        topology = waxman_topology(size, seed=seed)
        demand = gravity_demand(topology.node_names(), total=4.0 * size, seed=seed)
        truth = NetworkSimulator(topology, demand, strategy="single").run()
        collector = TelemetryCollector(
            Jitter(0.01, seed=seed), probe_engine=ProbeEngine(seed=seed)
        )
        snapshot = collector.collect(truth)
        if corrupted:
            edges = list(topology.directed_edges())
            for src, dst in (edges[0], edges[len(edges) // 2]):
                reading = snapshot.counters.get((src, dst))
                if reading is not None and reading.tx_rate is not None:
                    reading.tx_rate = float(reading.tx_rate) * 3.0 + 17.0
        plane = ControlPlane(topology)
        inputs = plane.compute_inputs(snapshot, records_from_matrix(demand, seed=seed))
        _EPOCH_CACHE[key] = (topology, snapshot, inputs)
    return _EPOCH_CACHE[key]
