"""Engine counters: cache hits, stage timings, sharding, export."""

import pytest

from repro.control.metrics import engine_metrics, render_engine_metrics
from repro.engine import EngineStats, EpochInput, ShardMap, ValidationEngine, split_slices
from repro.scenarios.catalog import scenario_by_id

from tests.engine.conftest import random_epoch


@pytest.fixture(scope="module")
def replayed_engine():
    """An engine after a 3-epoch replay on an unchanged topology."""
    world = scenario_by_id("S16").build(seed=1)
    epochs = []
    for epoch in range(3):
        outcome = world.run_epoch(timestamp=float(epoch))
        epochs.append(EpochInput(snapshot=outcome.snapshot, inputs=outcome.inputs))
    engine = ValidationEngine(world.topology, config=world.hodor_config, shards=2)
    engine.replay(epochs)
    yield engine
    engine.close()


class TestCacheCounters:
    def test_hits_increment_across_replay(self, replayed_engine):
        stats = replayed_engine.stats
        assert stats.epochs == 3
        assert stats.cache_misses == 1
        # The acceptance bar: unchanged topology ==> hits >= epochs - 1.
        assert stats.cache_hits >= stats.epochs - 1
        assert stats.cache_hit_rate == pytest.approx(2 / 3)

    def test_store_counters_agree(self, replayed_engine):
        store = replayed_engine.cache_store
        assert store.hits == replayed_engine.stats.cache_hits
        assert store.misses == replayed_engine.stats.cache_misses

    def test_topology_change_counts_as_miss(self):
        topo_a, snap_a, inputs_a = random_epoch(8, 30)
        topo_b, snap_b, inputs_b = random_epoch(10, 31)
        with ValidationEngine(topo_a, shards=1) as engine:
            engine.validate(snap_a, inputs_a)
            engine.validate(snap_b, inputs_b, topology=topo_b)
            engine.validate(snap_a, inputs_a)
            engine.validate(snap_b, inputs_b, topology=topo_b)
            assert engine.stats.cache_misses == 2
            assert engine.stats.cache_hits == 2


class TestStageTimings:
    def test_stage_seconds_populated(self, replayed_engine):
        stats = replayed_engine.stats
        for stage in ("collect", "harden", "check", "total"):
            assert stats.stage_seconds[stage] > 0.0
        stage_sum = sum(
            stats.stage_seconds[s] for s in ("collect", "harden", "check")
        )
        assert stats.stage_seconds["total"] >= stage_sum
        assert stats.mean_epoch_ms() > 0.0

    def test_shard_counters(self, replayed_engine):
        stats = replayed_engine.stats
        assert stats.shards == 2
        assert stats.shard_tasks > 0
        assert stats.shard_busy_seconds > 0.0
        assert 0.0 < stats.shard_utilisation() <= 1.0


class TestRenderAndMerge:
    def test_render_lines(self, replayed_engine):
        rendered = replayed_engine.stats.render()
        assert "epochs processed  : 3" in rendered
        assert "mode              : full" in rendered
        assert "cache hits/misses : 2/1" in rendered
        assert "shards            : 2" in rendered

    def test_render_shows_incremental_mode(self):
        assert "mode              : incremental" in EngineStats(mode="incremental").render()

    def test_merge_sums_counters(self):
        a = EngineStats(shards=2, epochs=2, cache_hits=1, cache_misses=1)
        a.record_stage("total", 0.5)
        b = EngineStats(shards=4, epochs=3, cache_hits=3, cache_misses=0)
        b.record_stage("total", 0.25)
        a.merge(b)
        assert a.epochs == 5
        assert a.cache_hits == 4
        assert a.cache_misses == 1
        assert a.stage_seconds["total"] == pytest.approx(0.75)
        assert a.shards == 2  # merge keeps the receiver's shard count

    def test_record_reuse_accumulates_per_stage(self):
        stats = EngineStats(mode="incremental")
        stats.record_reuse("collect", 10, 90)
        stats.record_reuse("collect", 5, 95)
        stats.record_reuse("check.demand", 1, 9)
        assert stats.entities_recomputed == {"collect": 15, "check.demand": 1}
        assert stats.entities_reused == {"collect": 185, "check.demand": 9}
        assert stats.total_entities_recomputed == 16
        assert stats.total_entities_reused == 194
        assert stats.reuse_rate() == pytest.approx(194 / 210)

    def test_merge_folds_reuse_and_repair_counters(self):
        a = EngineStats(mode="incremental")
        a.record_reuse("collect", 2, 8)
        a.repair_solves = 3
        b = EngineStats()
        b.record_reuse("collect", 1, 4)
        b.record_reuse("harden.flows", 5, 0)
        b.repair_reuses = 7
        a.merge(b)
        assert a.entities_recomputed == {"collect": 3, "harden.flows": 5}
        assert a.entities_reused == {"collect": 12, "harden.flows": 0}
        assert a.repair_solves == 3
        assert a.repair_reuses == 7
        assert a.mode == "incremental"  # merge keeps the receiver's mode

    def test_merge_adopts_stage_keys_missing_from_self(self):
        a = EngineStats()
        b = EngineStats()
        b.record_stage("check.demand", 0.125)  # fine-grained key a never saw
        b.record_reuse("harden.flows", 2, 8)
        a.merge(b)
        assert a.stage_seconds["check.demand"] == pytest.approx(0.125)
        assert a.entities_recomputed == {"harden.flows": 2}
        assert a.entities_reused == {"harden.flows": 8}
        # The standard keys survive untouched.
        for stage in ("collect", "harden", "check", "total"):
            assert a.stage_seconds[stage] == 0.0

    def test_merge_keeps_receiver_shards_and_mode(self):
        a = EngineStats(shards=2, mode="full")
        b = EngineStats(shards=8, mode="incremental", epochs=4)
        a.merge(b)
        assert a.shards == 2
        assert a.mode == "full"
        assert a.epochs == 4

    def test_merged_stats_round_trip_through_dict(self):
        a = EngineStats(shards=2, epochs=1, cache_hits=1, repair_solves=2)
        a.record_stage("collect", 0.25)
        b = EngineStats(shards=4, epochs=2, cache_misses=3, repair_reuses=5)
        b.record_stage("check.demand", 0.5)
        b.record_reuse("collect", 3, 9)
        a.merge(b)
        payload = a.to_dict()
        assert EngineStats.from_dict(payload).to_dict() == payload

    def test_reuse_lines_render_only_in_incremental_runs(self):
        plain = EngineStats()
        assert "entities          :" not in plain.render()
        stats = EngineStats(mode="incremental")
        stats.record_reuse("collect", 25, 75)
        stats.repair_solves = 2
        stats.repair_reuses = 6
        rendered = stats.render()
        assert "entities          : 25 recomputed / 75 reused (75% reuse)" in rendered
        assert "repair solves     : 2 fresh / 6 cached" in rendered

    def test_to_dict_round_trips_through_json(self):
        import json

        stats = EngineStats(mode="incremental", epochs=2)
        stats.record_reuse("collect", 1, 3)
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["mode"] == "incremental"
        assert payload["entities_recomputed"] == {"collect": 1}
        assert payload["entities_reused"] == {"collect": 3}
        assert payload["reuse_rate"] == pytest.approx(0.75)

    def test_empty_stats_render_and_rates(self):
        stats = EngineStats()
        assert stats.cache_hit_rate == 0.0
        assert stats.shard_utilisation() == 0.0
        assert stats.mean_epoch_ms() == 0.0
        assert "epochs processed  : 0" in stats.render()


class TestMetricsExport:
    def test_engine_metrics_mapping(self, replayed_engine):
        metrics = engine_metrics(replayed_engine.stats)
        assert metrics["engine_epochs"] == 3.0
        assert metrics["engine_cache_hits"] == 2.0
        assert metrics["engine_cache_misses"] == 1.0
        assert metrics["engine_shards"] == 2.0
        assert metrics["engine_stage_seconds_all"] > 0.0
        assert set(metrics) >= {
            "engine_cache_hit_rate",
            "engine_mean_epoch_ms",
            "engine_shard_tasks",
            "engine_shard_utilisation",
            "engine_stage_seconds_collect",
            "engine_stage_seconds_harden",
            "engine_stage_seconds_check",
        }

    def test_reuse_metrics_exported(self):
        stats = EngineStats(mode="incremental")
        stats.record_reuse("collect", 4, 6)
        stats.record_reuse("check.demand", 1, 9)
        stats.repair_solves = 2
        stats.repair_reuses = 5
        metrics = engine_metrics(stats)
        assert metrics["engine_entities_recomputed"] == 5.0
        assert metrics["engine_entities_reused"] == 15.0
        assert metrics["engine_reuse_rate"] == pytest.approx(0.75)
        assert metrics["engine_repair_solves"] == 2.0
        assert metrics["engine_repair_reuses"] == 5.0
        assert metrics["engine_recomputed_collect"] == 4.0
        assert metrics["engine_reused_check_demand"] == 9.0

    def test_stage_seconds_total_alias_removed(self, replayed_engine):
        metrics = engine_metrics(replayed_engine.stats)
        # The aggregate epoch time lives under _all only.  The
        # pre-observatory flat _total name (which collides with the
        # Prometheus counter suffix convention) shipped as a deprecated
        # alias in PR 4 and must stay gone; the labelled registry
        # family engine_stage_seconds_total{stage=...} is canonical.
        assert metrics["engine_stage_seconds_all"] > 0.0
        assert "engine_stage_seconds_total" not in metrics

    def test_engine_registry_exposition_matches_flat_view(self, replayed_engine):
        from repro.control.metrics import engine_registry

        registry = engine_registry(replayed_engine.stats)
        rendered = registry.render()
        assert "# HELP engine_epochs_total" in rendered
        assert "# TYPE engine_epochs_total counter" in rendered
        assert 'engine_stage_seconds_total{stage="all"}' in rendered
        by_sample = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in registry.samples()
        }
        assert by_sample[("engine_epochs_total", ())] == 3.0
        stats_dict = replayed_engine.stats.to_dict()
        for stage in ("collect", "harden", "check"):
            key = ("engine_stage_seconds_total", (("stage", stage),))
            assert by_sample[key] == pytest.approx(stats_dict["stage_seconds"][stage])

    def test_engine_registry_projection_is_idempotent(self, replayed_engine):
        from repro.control.metrics import engine_registry

        registry = engine_registry(replayed_engine.stats)
        again = engine_registry(replayed_engine.stats, registry=registry)
        assert again is registry
        assert registry.get("engine_epochs_total").value == 3.0  # not doubled

    def test_render_engine_metrics(self, replayed_engine):
        text = render_engine_metrics(engine_metrics(replayed_engine.stats))
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert any(line.startswith("engine_cache_hits 2") for line in lines)


class TestSharding:
    def test_split_slices_cover_and_balance(self):
        assert split_slices(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert split_slices(2, 8) == [(0, 1), (1, 2)]
        assert split_slices(0, 4) == []
        with pytest.raises(ValueError):
            split_slices(5, 0)

    def test_shard_map_orders_results(self):
        items = list(range(23))
        with ShardMap(shards=4, min_slice_items=1) as shard_map:
            merged = [
                value
                for chunk in shard_map.map_slices(lambda s: list(s), items)
                for value in chunk
            ]
            assert merged == items
            assert shard_map.tasks_dispatched == 4
            assert shard_map.busy_seconds >= 0.0

    def test_single_shard_runs_inline(self):
        shard_map = ShardMap(shards=1)
        assert shard_map.map_slices(sum, [1, 2, 3]) == [6]
        assert shard_map._executor is None  # no pool was ever created
        shard_map.close()

    def test_small_sequences_stay_inline(self):
        shard_map = ShardMap(shards=8, min_slice_items=32)
        assert shard_map.map_slices(sum, list(range(20))) == [sum(range(20))]
        assert shard_map._executor is None  # below the slice floor
        shard_map.close()
