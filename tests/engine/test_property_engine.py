"""Property tests for the engine's equivalence guarantees.

Three invariances the engine promises, checked over randomized worlds:

1. **Shard-count invariance** -- any two shard counts produce
   observably identical reports.
2. **Batching invariance** -- replaying an epoch stream in one
   ``replay`` call equals validating the epochs one at a time.
3. **Cache-path invariance** -- an epoch served from a topology-cache
   hit equals the same epoch served by a cache miss, including after
   intervening topology changes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EpochInput, ValidationEngine, compare_reports

from tests.engine.conftest import random_epoch

shard_counts = st.sampled_from([1, 2, 8])
world_seeds = st.integers(min_value=0, max_value=3)
corruption = st.booleans()


@given(seed=world_seeds, shards_a=shard_counts, shards_b=shard_counts, corrupted=corruption)
@settings(max_examples=20, deadline=None)
def test_shard_count_invariance(seed, shards_a, shards_b, corrupted):
    topology, snapshot, inputs = random_epoch(8, seed, corrupted=corrupted)
    with ValidationEngine(topology, shards=shards_a) as engine_a:
        with ValidationEngine(topology, shards=shards_b) as engine_b:
            report_a = engine_a.validate(snapshot, inputs)
            report_b = engine_b.validate(snapshot, inputs)
    assert not compare_reports(report_a, report_b)


@given(seed=world_seeds, shards=shard_counts)
@settings(max_examples=12, deadline=None)
def test_epoch_batching_invariance(seed, shards):
    epochs = []
    for offset in (0, 10, 20):
        _, snapshot, inputs = random_epoch(8, seed + offset)
        epochs.append(EpochInput(snapshot=snapshot, inputs=inputs))
    topology = random_epoch(8, seed)[0]

    with ValidationEngine(topology, shards=shards) as batched:
        batch_reports = batched.replay(epochs)
    with ValidationEngine(topology, shards=shards) as stepped:
        step_reports = [stepped.validate(e.snapshot, e.inputs) for e in epochs]

    assert len(batch_reports) == len(step_reports) == 3
    for batch_report, step_report in zip(batch_reports, step_reports):
        assert not compare_reports(batch_report, step_report)


@given(seed=world_seeds, shards=shard_counts)
@settings(max_examples=12, deadline=None)
def test_cache_hit_path_equals_cache_miss_path(seed, shards):
    """A hit-served epoch equals its miss-served twin, even after the
    reference topology changed in between."""
    topology_a, snapshot_a, inputs_a = random_epoch(8, seed)
    topology_b, snapshot_b, inputs_b = random_epoch(10, seed + 50)

    with ValidationEngine(topology_a, shards=shards) as engine:
        miss_report = engine.validate(snapshot_a, inputs_a)  # miss
        engine.validate(snapshot_b, inputs_b, topology=topology_b)  # miss
        hit_report = engine.validate(snapshot_a, inputs_a)  # hit
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 2
    assert not compare_reports(miss_report, hit_report)

    # And the hit-served report equals a completely fresh engine's.
    with ValidationEngine(topology_a, shards=shards) as fresh:
        assert not compare_reports(fresh.validate(snapshot_a, inputs_a), hit_report)
