"""Integration: every catalog scenario behaves as documented.

This is the library's own regression gate for the E3 claim: each
Section 2 outage scenario must be detected through the documented
channels, the legitimate-disaster scenario must pass, and scenarios
expected to damage the network must actually do so.
"""

import pytest

from repro.scenarios.catalog import Category, all_scenarios, scenario_by_id

SCENARIOS = all_scenarios()


class TestCatalogStructure:
    def test_catalog_size(self):
        assert len(SCENARIOS) == 24

    def test_unique_ids(self):
        ids = [s.scenario_id for s in SCENARIOS]
        assert len(set(ids)) == len(ids)

    def test_lookup(self):
        assert scenario_by_id("S01").scenario_id == "S01"
        with pytest.raises(KeyError):
            scenario_by_id("S99")

    def test_categories_valid(self):
        assert all(s.category in Category.ALL for s in SCENARIOS)

    def test_paper_taxonomy_covered(self):
        """Every Section 2 root-cause family has scenarios."""
        categories = {s.category for s in SCENARIOS}
        assert Category.ROUTER_TELEMETRY in categories
        assert Category.ROUTER_INTENT in categories
        assert Category.CONTROL_AGGREGATION in categories
        assert Category.EXTERNAL_INPUT in categories
        assert Category.LEGITIMATE in categories

    def test_over_one_third_would_be_input_outages(self):
        """The corpus mirrors the paper's 'over one third' framing: all
        non-legitimate scenarios are incorrect-input outages."""
        buggy = [s for s in SCENARIOS if s.category != Category.LEGITIMATE]
        assert len(buggy) / len(SCENARIOS) > 1 / 3


@pytest.mark.parametrize("scenario", SCENARIOS, ids=[s.scenario_id for s in SCENARIOS])
class TestScenarioBehaviour:
    def test_detection_matches_expectation(self, scenario):
        outcome = scenario.build(seed=1).run_epoch()
        assert outcome.detected == scenario.expect_detection

    def test_damage_matches_expectation(self, scenario):
        outcome = scenario.build(seed=1).run_epoch()
        assert outcome.damaged == scenario.expect_damage

    def test_expected_channels_fire(self, scenario):
        outcome = scenario.build(seed=1).run_epoch()
        failed_inputs = {
            name
            for name, verdict in outcome.report.verdicts.items()
            if not verdict.valid
        }
        for channel in scenario.expected_channels:
            if channel == "hardening":
                assert any(
                    f.severity.value in ("warning", "critical")
                    for f in outcome.report.hardened.findings
                ), f"{scenario.scenario_id}: expected hardening findings"
            else:
                assert channel in failed_inputs, (
                    f"{scenario.scenario_id}: expected {channel} check to fail, "
                    f"got {sorted(failed_inputs)}"
                )


class TestLegitimateDisaster:
    def test_hodor_accepts_the_disaster(self):
        outcome = scenario_by_id("S16").build(seed=1).run_epoch()
        assert outcome.report.all_valid
        assert not outcome.detected

    def test_disaster_drains_visible_in_inputs(self):
        outcome = scenario_by_id("S16").build(seed=1).run_epoch()
        assert len(outcome.inputs.drains.drained_nodes()) == 4
