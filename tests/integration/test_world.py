"""Integration: the World orchestrator (full Figure 1 pipeline)."""

import pytest

from repro.control.metrics import Severity
from repro.faults.external_faults import PartialDemandAggregation, ThrottledDemandMismatch
from repro.faults.intent_faults import SpuriousDrain
from repro.net.demand import gravity_demand
from repro.scenarios.world import World
from repro.telemetry.probes import LinkHealth
from repro.topologies.abilene import abilene


@pytest.fixture
def topo():
    return abilene()


@pytest.fixture
def demand(topo):
    return gravity_demand(topo.node_names(), total=40.0, seed=2, weights={"atlam": 0.15})


class TestCleanWorld:
    def test_clean_epoch_validates_and_stays_healthy(self, topo, demand):
        outcome = World(topo, demand, seed=3).run_epoch()
        assert not outcome.detected
        assert outcome.report.all_valid
        assert outcome.health.severity == Severity.OK
        assert outcome.injections == []

    def test_epoch_outcome_fields_consistent(self, topo, demand):
        outcome = World(topo, demand, seed=3).run_epoch()
        assert outcome.inputs.topology.num_links == topo.num_links
        assert outcome.programmed.total_rate() == pytest.approx(demand.total(), rel=0.05)
        assert outcome.realized.total_rate() == pytest.approx(demand.total(), rel=1e-6)

    def test_baseline_health_matches_clean_epoch(self, topo, demand):
        world = World(topo, demand, seed=3)
        outcome = world.run_epoch()
        baseline = world.baseline_health()
        assert baseline.severity == outcome.health.severity

    def test_reproducible(self, topo, demand):
        first = World(topo, demand, seed=3).run_epoch()
        second = World(topo, demand, seed=3).run_epoch()
        assert first.health.mlu == pytest.approx(second.health.mlu)
        assert first.detected == second.detected


class TestThrottledDemand:
    def test_actual_demand_scaled(self, topo, demand):
        world = World(
            topo, demand, demand_bugs=[ThrottledDemandMismatch(admitted_fraction=0.5)]
        )
        assert world.actual_demand.total() == pytest.approx(demand.total() * 0.5)
        assert world.measured_demand.total() == pytest.approx(demand.total())

    def test_detected_by_demand_check(self, topo, demand):
        world = World(
            topo,
            demand,
            demand_bugs=[ThrottledDemandMismatch(admitted_fraction=0.5)],
            seed=3,
        )
        outcome = world.run_epoch()
        assert not outcome.report.verdicts["demand"].valid


class TestLinkHealthPlumbing:
    def test_dead_link_blackholed(self, topo, demand):
        world = World(topo, demand, link_health={"ipls~kscy": LinkHealth(up=False)}, seed=3)
        assert ("ipls", "kscy") in world.blackholes()
        assert ("kscy", "ipls") in world.blackholes()

    def test_live_topology_excludes_dead_links(self, topo, demand):
        world = World(topo, demand, link_health={"ipls~kscy": LinkHealth(up=False)})
        assert world.live_topology().link_between("ipls", "kscy") is None

    def test_healthy_link_not_blackholed(self, topo, demand):
        world = World(topo, demand, link_health={"ipls~kscy": LinkHealth(up=True)})
        assert world.blackholes() == []


class TestFaultPlumbing:
    def test_signal_faults_recorded(self, topo, demand):
        world = World(topo, demand, signal_faults=[SpuriousDrain(["kscy"])], seed=3)
        outcome = world.run_epoch()
        assert len(outcome.injections) == 1
        assert outcome.injections[0].node == "kscy"

    def test_demand_bug_shrinks_believed_matrix(self, topo, demand):
        world = World(
            topo,
            demand,
            demand_bugs=[PartialDemandAggregation(drop_fraction=0.5, seed=4)],
            seed=3,
        )
        outcome = world.run_epoch()
        assert outcome.inputs.demand.total() < demand.total() * 0.8

    def test_detection_channels_exposed(self, topo, demand):
        world = World(
            topo,
            demand,
            demand_bugs=[PartialDemandAggregation(drop_fraction=0.5, seed=4)],
            seed=3,
        )
        outcome = world.run_epoch()
        assert outcome.detected
        assert not outcome.report.verdicts["demand"].valid
        assert outcome.report.verdicts["topology"].valid
