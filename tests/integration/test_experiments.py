"""Integration: every study runs and its headline shapes hold.

These are smaller-sample versions of the benchmark runs, asserting the
*shapes* the paper reports rather than exact percentages.
"""

import pytest

from repro.experiments import (
    DrainStudy,
    HardeningStudy,
    OutageStudy,
    PerturbationStudy,
    ScaleStudy,
    ThresholdStudy,
    TopologyStudy,
    format_table,
    taxonomy_census,
)
from repro.scenarios.catalog import Category, all_scenarios


class TestPerturbationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return PerturbationStudy(matrices=6, seed=0)

    def test_detection_monotone_in_zeroed_entries(self, study):
        rows = study.run(zero_counts=(1, 2, 3), trials=90)
        rates = [row.detection_rate for row in rows]
        assert rates[0] <= rates[1] + 0.05  # allow sampling noise
        assert rates[2] >= rates[0]

    def test_paper_operating_point(self, study):
        rows = study.run(zero_counts=(2, 3), trials=120)
        by_zeroed = {row.zeroed: row.detection_rate for row in rows}
        assert by_zeroed[2] >= 0.95  # paper: 99.2%
        assert by_zeroed[3] >= 0.98  # paper: 100%

    def test_no_false_positives_at_default_tau(self, study):
        assert study.false_positive_rate(tau_e=0.02) == 0.0

    def test_tau_sweep_monotone(self, study):
        rows = study.tau_sweep(taus=(0.01, 0.1), zeroed=2, trials=60)
        assert rows[0].detection_rate >= rows[1].detection_rate

    def test_scaling_detection_far_from_one(self, study):
        results = dict(study.scaling_perturbations(factors=(0.5, 2.0), count=2, trials=40))
        assert results[0.5].detection_rate > 0.8
        assert results[2.0].detection_rate > 0.8

    def test_bad_matrix_count(self):
        with pytest.raises(ValueError):
            PerturbationStudy(matrices=0)


class TestOutageStudy:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return OutageStudy(history_epochs=6, seed=1).run()

    def test_hodor_detects_majority(self, outcomes):
        """The paper's E3 claim: the majority of incorrect-input
        outages would have been averted."""
        summary = OutageStudy.summarize(outcomes)
        assert summary["hodor_detection_rate"] > 0.5

    def test_hodor_beats_baselines(self, outcomes):
        summary = OutageStudy.summarize(outcomes)
        assert summary["hodor_detection_rate"] > summary["static_detection_rate"]
        assert summary["hodor_detection_rate"] > summary["anomaly_detection_rate"]

    def test_static_false_positive_on_disaster(self, outcomes):
        summary = OutageStudy.summarize(outcomes)
        assert summary["static_false_positive_rate"] == 1.0
        assert summary["hodor_false_positive_rate"] == 0.0

    def test_every_scenario_correct_for_hodor(self, outcomes):
        assert all(outcome.hodor_correct for outcome in outcomes)

    def test_census_matches_catalog(self):
        census = taxonomy_census()
        assert sum(census.values()) == len(all_scenarios())
        assert census[Category.LEGITIMATE] == 1


class TestThresholdStudy:
    def test_false_positive_rate_grows_with_jitter(self):
        study = ThresholdStudy(seed=0)
        rows = study.false_positive_sweep(tau_values=(0.02,), jitters=(0.005, 0.04), trials=2)
        by_jitter = {row.jitter: row.false_positive_rate for row in rows}
        assert by_jitter[0.005] < by_jitter[0.04]

    def test_paper_threshold_clean_at_production_jitter(self):
        """tau_h = 2% yields ~no false flags at ~1% counter jitter."""
        study = ThresholdStudy(seed=0)
        rows = study.false_positive_sweep(tau_values=(0.02,), jitters=(0.01,), trials=3)
        assert rows[0].false_positive_rate < 0.02

    def test_detectability_grows_with_corruption(self):
        study = ThresholdStudy(seed=0)
        rows = study.detectability_sweep(
            tau_values=(0.02,), corruptions=(0.01, 0.5), trials=10
        )
        by_corruption = {row.corruption: row.detection_rate for row in rows}
        assert by_corruption[0.5] > by_corruption[0.01]


class TestHardeningStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return HardeningStudy(seed=0)

    def test_isolated_corruption_fully_handled(self, study):
        row = study.corruption_sweep(counts=(1,), trials=8)[0]
        assert row.recall == 1.0
        assert row.repair_rate > 0.9

    def test_repair_degrades_with_clustering(self, study):
        rows = study.corruption_sweep(counts=(1, 12), trials=6)
        assert rows[0].repair_rate >= rows[1].repair_rate

    def test_r1_only_ablation_detects_but_cannot_repair(self, study):
        row = study.corruption_sweep(counts=(2,), trials=6, enable_repair=False)[0]
        assert row.recall == 1.0
        assert row.repair_rate == 0.0
        assert row.unknown_rate == 1.0

    def test_correlated_bug_blind_spot(self, study):
        result = study.correlated_vendor_bug()
        # Directions where both endpoints lie identically are invisible
        # to R1 -- the paper's open question, quantified.
        assert result.blind_flagged == 0
        assert result.visible_flagged == result.visible_directions


class TestTopologyStudy:
    def test_balanced_profile_handles_all_modes(self):
        study = TopologyStudy(seed=0)
        rows = study.run(
            modes=("clean", "both-lie-up", "blackhole"),
            profiles=("balanced",),
            max_links=6,
        )
        for row in rows:
            assert row.correct + row.suspect == row.links
            assert row.accuracy >= 0.8

    def test_evidence_ablation_monotone(self):
        study = TopologyStudy(seed=0)
        rows = study.evidence_ablation(mode="both-lie-up")
        # with zero redundancy the lie wins; with counters it is caught;
        # probes keep it caught
        accuracies = [row.accuracy for row in rows]
        assert accuracies[0] <= accuracies[1] <= accuracies[2] + 1e-9

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TopologyStudy().run(modes=("nope",))


class TestDrainStudy:
    def test_all_cases_scored_correctly(self):
        rows = DrainStudy(seed=0).run(trials=3)
        for row in rows:
            assert row.correct_rate == 1.0, row.case

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError):
            DrainStudy().run(cases=("nope",))


class TestScaleStudy:
    def test_rows_and_monotone_signals(self):
        rows = ScaleStudy(repetitions=1).run(sizes=(10, 25))
        assert rows[0].signals < rows[1].signals
        assert all(row.validate_ms > 0 for row in rows)

    def test_bad_repetitions(self):
        with pytest.raises(ValueError):
            ScaleStudy(repetitions=0)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestConfidenceIntervals:
    def test_wilson_interval_contains_rate(self):
        from repro.experiments import PerturbationRow

        row = PerturbationRow(2, 0.02, 240, 237)
        lo, hi = row.confidence_interval()
        assert lo <= row.detection_rate <= hi
        assert 0.0 <= lo < hi <= 1.0

    def test_paper_number_inside_measured_interval(self):
        """The paper's 99.2%-at-k=2 must lie inside the 95% interval of
        our measured rate -- the statistical statement behind the
        'shape matches' claim."""
        from repro.experiments import PerturbationStudy

        study = PerturbationStudy(matrices=8, seed=0)
        row = study.run(zero_counts=(2,), trials=240)[0]
        lo, hi = row.confidence_interval()
        assert lo <= 0.992 <= hi

    def test_boundary_cases(self):
        from repro.experiments import PerturbationRow

        perfect = PerturbationRow(3, 0.02, 100, 100)
        lo, hi = perfect.confidence_interval()
        # Wilson never claims certainty from finite trials.
        assert 0.999 < hi <= 1.0 and lo > 0.95
        empty = PerturbationRow(1, 0.02, 0, 0)
        assert empty.confidence_interval() == (0.0, 1.0)
