"""Integration: catalog behaviour is stable across random seeds.

The E3 claim should not hinge on one lucky seed: detection verdicts
must match expectations for every scenario under several seeds, and
the legitimate disaster must never be flagged.
"""

import pytest

from repro.scenarios.catalog import all_scenarios

SEEDS = (1, 7, 23)
SCENARIOS = all_scenarios()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[s.scenario_id for s in SCENARIOS]
)
def test_detection_stable_across_seeds(scenario, seed):
    outcome = scenario.build(seed=seed).run_epoch()
    assert outcome.detected == scenario.expect_detection, (
        f"{scenario.scenario_id} seed={seed}: detected={outcome.detected}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_self_correction_keeps_s01_healthy(seed):
    """With the Section 6 self-correction layer on, the zeroed-telemetry
    scenario no longer damages the network (prevention), while the
    same world without it does."""
    from repro.scenarios.catalog import scenario_by_id
    from repro.scenarios.world import World

    base = scenario_by_id("S01").build(seed=seed)
    protected = World(
        base.topology,
        base.measured_demand,
        signal_faults=base.signal_faults,
        infer_faulty_from_counters=True,
        self_correct=True,
        seed=seed,
    )
    unprotected_outcome = base.run_epoch()
    protected_outcome = protected.run_epoch()
    assert unprotected_outcome.damaged
    assert not protected_outcome.damaged
