"""Integration: the paper's Figure 3 worked example, end to end.

The single most concrete artifact in the paper: a corrupted counter on
the A->B link is detected via link symmetry, repaired to exactly 76 via
flow conservation at B, and the demand matrix passes its row/column
invariants against the hardened externals.
"""

import pytest

from repro.core import Confidence, Hodor
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter


class TestFig3GroundTruth:
    def test_link_loads_match_figure(self, fig3_truth):
        assert fig3_truth.flow_on("A", "B") == pytest.approx(76.0)
        assert fig3_truth.flow_on("B", "C") == pytest.approx(75.0)

    def test_externals_match_figure(self, fig3_truth):
        assert fig3_truth.ext_in["A"] == pytest.approx(76.0)
        assert fig3_truth.ext_in["B"] == pytest.approx(23.0)
        assert fig3_truth.ext_out["B"] == pytest.approx(24.0)
        assert fig3_truth.ext_out["C"] == pytest.approx(75.0)


class TestFig3Validation:
    def test_corrupted_counter_detected_and_repaired(self, fig3_topo, fig3_snapshot):
        snapshot = fig3_snapshot.copy()
        snapshot.counters[("A", "B")].tx_rate = 120.0  # spurious
        hodor = Hodor(fig3_topo)
        hardened = hodor.harden(snapshot)

        repaired = hardened.edge_flows[("A", "B")]
        assert repaired.confidence == Confidence.REPAIRED
        # x + 23 = 75 + 24  =>  x = 76 (the equation printed in the paper)
        assert repaired.value == pytest.approx(76.0)

        codes = [finding.code for finding in hardened.findings]
        assert "R1_COUNTER_MISMATCH" in codes
        assert "R2_REPAIRED" in codes
        assert "R2_CULPRIT" in codes

    def test_culprit_is_the_tx_side(self, fig3_topo, fig3_snapshot):
        snapshot = fig3_snapshot.copy()
        snapshot.counters[("A", "B")].tx_rate = 120.0
        hardened = Hodor(fig3_topo).harden(snapshot)
        culprits = [f for f in hardened.findings if f.code == "R2_CULPRIT"]
        assert len(culprits) == 1
        assert culprits[0].subject == "tx@A->B"

    def test_demand_invariants_pass_after_repair(self, fig3_topo, fig3_snapshot, fig3_matrix):
        snapshot = fig3_snapshot.copy()
        snapshot.counters[("A", "B")].tx_rate = 120.0
        hodor = Hodor(fig3_topo)
        report = hodor.validate_demand(snapshot, fig3_matrix)
        assert report.verdicts["demand"].valid
        assert report.verdicts["demand"].num_evaluated == 6  # 2v, v=3

    def test_perturbed_demand_caught(self, fig3_topo, fig3_snapshot, fig3_matrix):
        bad = fig3_matrix.copy()
        bad["A", "C"] = 0.0  # drop the big flow from the input matrix
        report = Hodor(fig3_topo).validate_demand(fig3_snapshot, bad)
        assert not report.verdicts["demand"].valid
        violated = {
            v.invariant.name for v in report.checks["demand"].violations
        }
        assert "demand/row-sum/A" in violated
        assert "demand/col-sum/C" in violated

    def test_solving_at_A_gives_same_answer_with_jitter(self, fig3_topo, fig3_matrix):
        """Footnote 3: solving at A instead of B differs only by
        rolling-telemetry noise."""
        truth = NetworkSimulator(fig3_topo, fig3_matrix, strategy="single").run()
        snapshot = TelemetryCollector(Jitter(0.005, seed=11)).collect(truth)
        snapshot.counters[("A", "B")].tx_rate = 120.0
        hardened = Hodor(fig3_topo).harden(snapshot)
        value = hardened.edge_flows[("A", "B")]
        assert value.known
        assert value.value == pytest.approx(76.0, rel=0.02)
