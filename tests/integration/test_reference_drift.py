"""Integration: Hodor vs a drifted reference model.

The design-time network model and the actual fleet can diverge (a link
was decommissioned, a router added) -- Hodor must degrade into honest
unknowns and findings, never crash or fabricate confidence.
"""

import pytest

from repro.core import Confidence, Hodor
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Link, Node
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies import abilene


@pytest.fixture
def snapshot_and_demand():
    topo = abilene()
    demand = gravity_demand(topo.node_names(), total=30.0, seed=7, weights={"atlam": 0.15})
    truth = NetworkSimulator(topo, demand).run()
    snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
    return snapshot, demand


class TestReferenceHasExtraGear:
    def test_decommissioned_link_unknown_not_fabricated(self, snapshot_and_demand):
        """Reference still lists a link the fleet no longer has: its
        flow must be unknown or repaired -- never silently invented."""
        snapshot, demand = snapshot_and_demand
        stale_reference = abilene()
        stale_reference.add_link(Link("atla", "nycm", capacity=10.0))  # gone in reality
        hodor = Hodor(stale_reference)
        hardened = hodor.harden(snapshot)
        value = hardened.edge_flows[("atla", "nycm")]
        # No measurements exist; conservation at the endpoints pins the
        # phantom link's flow near zero (repaired) or leaves it unknown.
        if value.known:
            assert value.confidence == Confidence.REPAIRED
            assert value.value == pytest.approx(0.0, abs=1e-6)
        codes = {f.code for f in hardened.findings}
        assert "R1_BOTH_MISSING" in codes

    def test_unknown_router_degrades_gracefully(self, snapshot_and_demand):
        snapshot, demand = snapshot_and_demand
        stale_reference = abilene()
        stale_reference.add_node(Node("newpop"))
        stale_reference.add_link(Link("newpop", "atla", capacity=10.0))
        hodor = Hodor(stale_reference)
        report = hodor.validate_demand(snapshot, demand)
        # The phantom router's externals are unknown -> its invariants
        # skip; the rest of the network still validates.
        check = report.checks["demand"]
        assert check.num_skipped >= 1
        real_violations = [
            v for v in check.violations if "newpop" not in v.invariant.name
        ]
        assert real_violations == []


class TestReferenceMissingGear:
    def test_snapshot_with_unknown_signals_ignored(self, snapshot_and_demand):
        """The fleet reports gear the reference lacks: hardening simply
        does not reason about it (collection still records it)."""
        snapshot, demand = snapshot_and_demand
        small_reference = abilene()
        small_reference.remove_link("atla", "hstn")
        hodor = Hodor(small_reference)
        hardened = hodor.harden(snapshot)
        assert ("atla", "hstn") not in hardened.edge_flows
        assert "atla~hstn" not in hardened.links

    def test_validation_still_sound_for_known_gear(self, snapshot_and_demand):
        snapshot, demand = snapshot_and_demand
        small_reference = abilene()
        small_reference.remove_link("atla", "hstn")
        hodor = Hodor(small_reference)
        report = hodor.validate_demand(snapshot, demand)
        # Traffic that really flowed over the unknown link perturbs the
        # conservation system; what matters is no crash and a coherent
        # report either way.
        assert set(report.verdicts) == {"demand"}
        assert report.checks["demand"].num_evaluated > 0
