"""Integration: the Hodor pipeline API surface and policy loop."""

import pytest

from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.core import (
    AlertOnlyPolicy,
    Hodor,
    HodorConfig,
    RejectAndFallbackPolicy,
)
from repro.faults.base import FaultInjector
from repro.faults.external_faults import PartialDemandAggregation
from repro.faults.router_faults import RandomCounterCorruption


@pytest.fixture
def plane(abilene_topo):
    return ControlPlane(abilene_topo)


@pytest.fixture
def inputs(plane, clean_snapshot, abilene_demand):
    records = records_from_matrix(abilene_demand, seed=1)
    return plane.compute_inputs(clean_snapshot, records)


class TestValidateAll:
    def test_clean_epoch_all_valid(self, abilene_topo, clean_snapshot, inputs):
        report = Hodor(abilene_topo).validate(clean_snapshot, inputs)
        assert report.all_valid
        assert set(report.verdicts) == {"demand", "topology", "drain"}

    def test_stepwise_api(self, abilene_topo, clean_snapshot):
        hodor = Hodor(abilene_topo)
        collected = hodor.collect(clean_snapshot)
        assert collected.counters
        hardened = hodor.harden(clean_snapshot)
        assert hardened.edge_flows

    def test_single_input_validators(self, abilene_topo, clean_snapshot, inputs):
        hodor = Hodor(abilene_topo)
        assert hodor.validate_demand(clean_snapshot, inputs.demand).all_valid
        assert hodor.validate_topology(clean_snapshot, inputs.topology).all_valid
        assert hodor.validate_drains(clean_snapshot, inputs.drains).all_valid

    def test_report_renders(self, abilene_topo, clean_snapshot, inputs):
        report = Hodor(abilene_topo).validate(clean_snapshot, inputs)
        assert "Hodor validation" in report.render()


class TestHardeningShieldsChecks:
    def test_corrupted_counters_do_not_fail_demand_check(
        self, abilene_topo, clean_snapshot, inputs
    ):
        """Router faults must be absorbed by hardening, not leak into
        dynamic-check false positives."""
        snapshot, _ = FaultInjector(
            [RandomCounterCorruption(3, mode="scale", factor=5.0)], seed=8
        ).inject(clean_snapshot)
        report = Hodor(abilene_topo).validate(snapshot, inputs)
        assert report.verdicts["demand"].valid
        assert report.detected_anything()  # but hardening saw the faults


class TestPolicyLoop:
    def test_requires_policy(self, abilene_topo, clean_snapshot, inputs):
        with pytest.raises(ValueError):
            Hodor(abilene_topo).validate_and_decide(clean_snapshot, inputs)

    def test_fallback_to_last_good(self, abilene_topo, clean_snapshot, abilene_demand, plane):
        hodor = Hodor(abilene_topo, policy=RejectAndFallbackPolicy())
        records = records_from_matrix(abilene_demand, seed=1)

        good_inputs = plane.compute_inputs(clean_snapshot, records)
        first = hodor.validate_and_decide(clean_snapshot, good_inputs)
        assert first.accepted
        assert hodor.last_good is good_inputs

        buggy_plane = ControlPlane(
            abilene_topo, demand_bugs=[PartialDemandAggregation(drop_fraction=0.5, seed=2)]
        )
        bad_inputs = buggy_plane.compute_inputs(clean_snapshot, records)
        second = hodor.validate_and_decide(clean_snapshot, bad_inputs)
        assert second.fell_back
        assert second.inputs is good_inputs
        assert hodor.last_good is good_inputs  # not replaced by bad epoch

    def test_alert_only_never_blocks(self, abilene_topo, clean_snapshot, abilene_demand):
        hodor = Hodor(abilene_topo, policy=AlertOnlyPolicy())
        buggy_plane = ControlPlane(
            abilene_topo, demand_bugs=[PartialDemandAggregation(drop_fraction=0.5, seed=2)]
        )
        records = records_from_matrix(abilene_demand, seed=1)
        bad_inputs = buggy_plane.compute_inputs(clean_snapshot, records)
        decision = hodor.validate_and_decide(clean_snapshot, bad_inputs)
        assert decision.accepted
        assert decision.alerts


class TestConfigPropagation:
    def test_loose_tau_e_accepts_small_errors(self, abilene_topo, clean_snapshot, inputs):
        loose = Hodor(abilene_topo, HodorConfig(tau_e=0.5))
        slightly_off = inputs.demand.scaled(1.2)
        assert loose.validate_demand(clean_snapshot, slightly_off).all_valid

    def test_tight_tau_e_rejects_them(self, abilene_topo, clean_snapshot, inputs):
        tight = Hodor(abilene_topo, HodorConfig(tau_e=0.01))
        slightly_off = inputs.demand.scaled(1.2)
        assert not tight.validate_demand(clean_snapshot, slightly_off).all_valid
