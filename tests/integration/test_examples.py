"""Integration: every example script runs and tells its story.

Examples are documentation that executes; these smoke tests keep them
from rotting.  Each runs in-process (runpy) with stdout captured.
"""

import pathlib
import runpy
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent.parent / "examples"


def run_example(name: str, argv=(), capsys=None) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script), *argv]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys=capsys)
    assert "hardened A->B flow: 76" in out
    assert "inputs rejected" in out


def test_outage_replay(capsys):
    out = run_example("outage_replay.py", capsys=capsys)
    assert "hodor   : 100%" in out
    assert "S16" in out


def test_demand_validation(capsys):
    out = run_example("demand_validation_abilene.py", argv=["40"], capsys=capsys)
    assert "detection rate vs zeroed entries" in out
    assert "99.2%" in out  # the paper column renders


def test_always_on_validation(capsys):
    out = run_example("always_on_validation.py", capsys=capsys)
    assert "inputs REJECTED" in out
    assert "epoch 2: rollout fixed" in out


def test_topology_hardening(capsys):
    out = run_example("topology_hardening.py", capsys=capsys)
    assert "fiber cut, both endpoints lie up" in out
    assert "NOT forwarding" in out


def test_week_of_validation(capsys):
    out = run_example("week_of_validation.py", capsys=capsys)
    assert "epochs averted" in out
    assert "fallback" in out


def test_signal_inventory(capsys):
    out = run_example("signal_inventory.py", capsys=capsys)
    assert "signal registry" in out
    assert "MALFORMED_COUNTER" in out
