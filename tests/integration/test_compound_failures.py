"""Integration: compound failures — several independent bugs at once.

Production outages rarely arrive one at a time; the validator must
attribute each co-occurring bug to its own channel without the signals
of one masking another.
"""

import pytest

from repro.faults import (
    InconsistentLinkDrain,
    PartialDemandAggregation,
    PartialTopologyStitch,
    ProbeOutage,
    ZeroedDuplicateTelemetry,
)
from repro.net.demand import gravity_demand
from repro.scenarios.world import World
from repro.topologies import abilene


@pytest.fixture
def demand():
    topo = abilene()
    return gravity_demand(topo.node_names(), total=50.0, seed=5, weights={"atlam": 0.15})


class TestTripleFault:
    @pytest.fixture(scope="class")
    def outcome(self):
        topo = abilene()
        demand = gravity_demand(
            topo.node_names(), total=50.0, seed=5, weights={"atlam": 0.15}
        )
        world = World(
            topo,
            demand,
            signal_faults=[
                ZeroedDuplicateTelemetry(interfaces=[("chin", "nycm")]),
                InconsistentLinkDrain([("snva", "sttl")]),
            ],
            topo_bugs=[PartialTopologyStitch({"kscy"})],
            demand_bugs=[PartialDemandAggregation(drop_fraction=0.4, seed=8)],
            seed=5,
        )
        return world.run_epoch()

    def test_all_three_channels_fail(self, outcome):
        verdicts = outcome.report.verdicts
        assert not verdicts["demand"].valid
        assert not verdicts["topology"].valid
        assert not verdicts["drain"].valid

    def test_counter_fault_still_detected_by_hardening(self, outcome):
        codes = {f.code for f in outcome.report.hardened.findings}
        assert "R1_COUNTER_MISMATCH" in codes or "R2_REPAIRED" in codes

    def test_violations_attribute_to_correct_subjects(self, outcome):
        topo_violations = {
            v.invariant.name for v in outcome.report.checks["topology"].violations
        }
        # exactly kscy's links must be missing from the topology input
        assert topo_violations == {
            "topology/live-iff-up/dnvr~kscy",
            "topology/live-iff-up/hstn~kscy",
            "topology/live-iff-up/ipls~kscy",
        }
        drain_violations = {
            v.invariant.name for v in outcome.report.checks["drain"].violations
        }
        assert "drain/link-symmetric/snva~sttl" in drain_violations

    def test_no_spurious_cross_channel_noise(self, outcome):
        """The zeroed counter must not corrupt demand-check verdicts:
        its repair shields the invariants, so every demand violation
        traces to the demand bug, not to telemetry."""
        demand_violations = outcome.report.checks["demand"].violations
        assert demand_violations  # the real demand bug is caught
        for violation in demand_violations:
            assert violation.invariant.name.startswith("demand/")


class TestFaultPlusProbeOutage:
    def test_detection_survives_losing_r4(self, demand):
        """A probe-agent outage co-occurring with a dead link still
        leaves the dead link detectable through R1/R3."""
        from repro.faults import WrongLinkStatus
        from repro.telemetry.probes import LinkHealth

        topo = abilene()
        world = World(
            topo,
            demand,
            link_health={"ipls~kscy": LinkHealth(up=False)},
            signal_faults=[
                WrongLinkStatus([("ipls", "kscy")], report_up=True),
                ProbeOutage(),
            ],
            seed=5,
        )
        outcome = world.run_epoch()
        assert outcome.detected
        # one end honest (down), one lying (up): R1 status mismatch fires
        codes = {f.code for f in outcome.report.hardened.findings}
        assert "R1_STATUS_MISMATCH" in codes
