"""Integration: multi-epoch timelines and the averted-outage series."""

import pytest

from repro.control.metrics import Severity
from repro.faults import PartialDemandAggregation, PartialTopologyStitch
from repro.net.demand import gravity_demand
from repro.scenarios import EpochSpec, Timeline
from repro.topologies import abilene


@pytest.fixture
def topology():
    return abilene()


@pytest.fixture
def base_demand(topology):
    return gravity_demand(
        topology.node_names(), total=55.0, seed=3, weights={"atlam": 0.15}
    )


class TestHealthyTimeline:
    def test_no_flags_no_fallbacks(self, topology, base_demand):
        result = Timeline(topology, base_demand, seed=1).run(epochs=5)
        assert len(result.records) == 5
        assert all(not record.detected for record in result.records)
        assert all(not record.fell_back for record in result.records)
        assert result.epochs_averted() == []

    def test_diurnal_demand_varies(self, topology, base_demand):
        timeline = Timeline(topology, base_demand, diurnal_amplitude=0.2, period=8)
        totals = [timeline.demand_at(epoch).total() for epoch in range(8)]
        assert max(totals) > min(totals) * 1.2

    def test_demand_deterministic(self, topology, base_demand):
        timeline = Timeline(topology, base_demand, seed=4)
        assert timeline.demand_at(3).total() == timeline.demand_at(3).total()

    @pytest.mark.parametrize("kwargs", [{"diurnal_amplitude": 1.5}, {"period": 0}])
    def test_bad_params(self, topology, base_demand, kwargs):
        with pytest.raises(ValueError):
            Timeline(topology, base_demand, **kwargs)


class TestFaultWindows:
    def test_fault_epochs_flagged_and_fallback(self, topology, base_demand):
        bug = EpochSpec(
            demand_bugs=(PartialDemandAggregation(drop_fraction=0.5, seed=2),),
            label="demand bug",
        )
        timeline = Timeline(topology, base_demand, schedule={2: bug, 3: bug}, seed=1)
        result = timeline.run(epochs=5)
        assert result.records[2].detected and result.records[2].fell_back
        assert result.records[3].detected and result.records[3].fell_back
        assert not result.records[4].detected  # recovery epoch accepted

    def test_outage_averted_by_fallback(self, topology):
        demand = gravity_demand(
            topology.node_names(), total=58.0, seed=3, weights={"atlam": 0.15}
        )
        bug = EpochSpec(
            topo_bugs=(PartialTopologyStitch({"kscy", "ipls"}),), label="stitch"
        )
        timeline = Timeline(
            topology, demand, schedule={3: bug}, diurnal_amplitude=0.15, seed=7
        )
        result = timeline.run(epochs=5)
        record = result.records[3]
        assert record.unprotected.severity.at_least(Severity.CONGESTED)
        assert not record.protected.severity.at_least(Severity.CONGESTED)
        assert 3 in result.epochs_averted()

    def test_fallback_requires_prior_good_epoch(self, topology, base_demand):
        bug = EpochSpec(
            demand_bugs=(PartialDemandAggregation(drop_fraction=0.5, seed=2),),
            label="bug at birth",
        )
        timeline = Timeline(topology, base_demand, schedule={0: bug}, seed=1)
        result = timeline.run(epochs=2)
        # epoch 0 has no last-known-good: flagged but not fallen back
        assert result.records[0].detected
        assert not result.records[0].fell_back

    def test_render_table(self, topology, base_demand):
        result = Timeline(topology, base_demand, seed=1).run(epochs=3)
        text = result.render()
        assert "with hodor" in text
        assert text.count("\n") >= 4
