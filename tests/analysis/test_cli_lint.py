"""The ``python -m repro lint`` front end: exit codes and output modes."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis import ALL_RULE_CODES

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_fixture_exits_zero(capsys):
    assert main(["lint", str(FIXTURES / "clean")]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_bad_fixture_exits_one_with_file_line_diagnostics(capsys):
    assert main(["lint", str(FIXTURES / "f1")]) == 1
    out = capsys.readouterr().out
    assert "core/bad_float.py:5:11: F1" in out
    assert "3 error(s)" in out


def test_json_flag_emits_the_payload_schema(capsys):
    assert main(["lint", str(FIXTURES / "f1"), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    assert payload["summary"]["errors"] == 3
    assert [d["code"] for d in payload["diagnostics"]] == ["F1", "F1", "F1"]
    assert payload["timing"]["files_reparsed"] == 2
    assert payload["timing"]["files_cached"] == 0
    assert payload["timing"]["wall_time_s"] > 0.0


def test_rule_filter_and_unknown_rule(capsys):
    assert main(["lint", str(FIXTURES / "d1"), "--rule", "F1"]) == 0
    assert main(["lint", str(FIXTURES / "d1"), "--rule", "ZZ"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule code" in err


def test_missing_path_exits_two(capsys):
    assert main(["lint", str(FIXTURES / "does-not-exist")]) == 2


def test_list_rules_prints_whole_catalog(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ALL_RULE_CODES:
        assert f"{code}:" in out


def test_multiple_roots_merge(capsys):
    assert main(["lint", str(FIXTURES / "clean"), str(FIXTURES / "f1")]) == 1
    out = capsys.readouterr().out
    assert "across 3 files" in out  # clean tree (1) + f1 tree (2)


def test_default_root_is_live_package(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_github_format_emits_error_annotations(capsys):
    assert main(["lint", str(FIXTURES / "f1"), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=core/bad_float.py,line=5,col=12,title=lint F1::F1:" in out
    assert out.count("::error ") == 3


def test_explain_renders_the_taint_path_golden(capsys):
    assert main(["lint", str(FIXTURES / "t1_bad"), "--explain", "T1"]) == 1
    out = capsys.readouterr().out
    golden = (Path(__file__).parent / "golden" / "t1_explain.txt").read_text()
    assert out == golden


def test_explain_with_no_findings_says_so(capsys):
    assert main(["lint", str(FIXTURES / "clean"), "--explain", "T1"]) == 0
    out = capsys.readouterr().out
    assert "no T1 findings." in out


def test_explain_unknown_code_exits_two(capsys):
    assert main(["lint", str(FIXTURES / "clean"), "--explain", "ZZ"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cache_flag_round_trips_through_the_cli(capsys, tmp_path):
    cache = tmp_path / "cache.json"
    assert main(["lint", str(FIXTURES / "f1"), "--cache", str(cache), "--json"]) == 1
    cold = json.loads(capsys.readouterr().out)
    assert cache.exists()
    assert main(["lint", str(FIXTURES / "f1"), "--cache", str(cache), "--json"]) == 1
    warm = json.loads(capsys.readouterr().out)
    assert warm["timing"]["files_cached"] == 2
    assert warm["timing"]["files_reparsed"] == 0
    assert warm["diagnostics"] == cold["diagnostics"]
