"""C1 registry-parity rule against its fixture trees."""

from pathlib import Path

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def test_wired_unit_passes():
    result = run_lint(FIXTURES / "c1_good")
    assert result.ok
    assert result.diagnostics == []


def test_missing_wiring_flags_both_directions():
    result = run_lint(FIXTURES / "c1_bad")
    findings = [(d.path, d.line, d.code) for d in result.diagnostics]
    assert findings == [
        ("core/units.py", 5, "C1"),          # flow: not in incremental
        ("core/units.py", 8, "C1"),          # orphan: not in incremental
        ("core/units.py", 8, "C1"),          # orphan: not in serial path
        ("engine/incremental.py", 6, "C1"),  # ghost: defined nowhere
    ]
    messages = [d.message for d in result.diagnostics]
    assert "never referenced in engine/incremental.py" in messages[0]
    assert any("not exercised by the serial pipeline" in m for m in messages)
    assert any("no per-entity unit with that name" in m for m in messages)


def test_vector_manifest_or_dispatch_passes():
    # One unit dispatched by the vector backend, the other named in its
    # replacement manifest (the module docstring) -- both count.
    result = run_lint(FIXTURES / "c1_vector_good")
    assert result.ok
    assert result.diagnostics == []


def test_vector_gaps_flag_both_directions():
    result = run_lint(FIXTURES / "c1_vector_bad")
    findings = [(d.path, d.code) for d in result.diagnostics]
    assert findings == [
        ("core/units.py", "C1"),           # gap: unaccounted for in vector
        ("core/vector/backend.py", "C1"),  # ghost: defined nowhere
    ]
    messages = [d.message for d in result.diagnostics]
    assert "unaccounted for in core/vector/backend.py" in messages[0]
    assert "harden_gap_entity" in messages[0]
    assert "no per-entity unit with that name" in messages[1]
    assert "check_ghost_entity" in messages[1]


def test_tree_without_vector_module_is_vacuously_clean():
    # c1_good has no core/vector/backend.py; the three-way extension
    # must not fire there (pre-vector trees stay green).
    result = run_lint(FIXTURES / "c1_good")
    assert result.ok


def test_tree_without_incremental_module_is_vacuously_clean():
    # No engine/incremental.py at the configured path -> nothing to
    # compare against; the p1 clean/bad trees rely on this.
    result = run_lint(
        FIXTURES / "c1_bad", config=LintConfig(incremental_path="engine/absent.py")
    )
    assert all(d.code != "C1" for d in result.diagnostics)


def test_live_tree_registry_parity_holds():
    import repro

    result = run_lint(
        Path(repro.__file__).parent, config=LintConfig(enabled_codes=frozenset({"C1"}))
    )
    assert result.diagnostics == []
