"""Cache mutations a mid-flight exception leaves half-applied."""


class TopologyCacheStore:
    def refresh(self, keys, compute):
        for key in keys:
            self._entries[key] = compute(key)

    def insert(self, key, value, audit):
        self._entries[key] = value
        audit(key)


def warm(memo, keys, compute):
    for key in keys:
        memo[key] = compute(key)
