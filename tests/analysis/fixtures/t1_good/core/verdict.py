"""Validated-before-use: hardening kills the taint before the sink."""

from core.harden import harden_rate
from core.reader import read_rate


def verdict(snap: "RouterSnapshot"):
    rate = harden_rate(read_rate(snap))
    return check_link_entity(rate)


def stamp(snap: "NetworkSnapshot"):
    return check_epoch_entity(snap.timestamp)
