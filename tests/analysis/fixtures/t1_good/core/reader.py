"""Same chain as t1_bad, with the sanitizer in the path."""


def read_rate(snap: "RouterSnapshot"):
    return snap.rate
