"""The declared sanitizer: clamps raw readings to the valid domain."""


def harden_rate(value):
    if value is None:
        return 0.0
    return value
