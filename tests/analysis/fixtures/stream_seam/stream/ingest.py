"""Known-bad seam fixture: event-loop clock reads outside the seam.

Latency stamps in the ingest pipeline must come through the injected
clock seam (``obs.clock.event_loop_time``); reading ``loop.time()``
directly -- via the factory chain or a bound loop variable -- is the
asyncio flavour of a wall-clock read, so this module (not listed in
``clock_seam_paths``) must be flagged even though the identical call
inside the seam module is not.
"""

import asyncio


async def stamp_direct():
    return asyncio.get_event_loop().time()


async def stamp_tracked():
    loop = asyncio.get_running_loop()
    return loop.time()
