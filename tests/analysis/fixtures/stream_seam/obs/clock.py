"""Known-good seam fixture: the sanctioned event-loop clock wrapper.

Mirrors the live ``repro/obs/clock.py`` -- this path is listed in
``LintConfig.clock_seam_paths``, so its ``loop.time()`` read is exempt
from D1 while the rest of the tree (``stream/`` included) stays in
scope.
"""

import asyncio


def event_loop_time():
    return asyncio.get_running_loop().time()
