"""Exception-safe counterparts: reset-on-error and build-then-swap."""


class TopologyCacheStore:
    def refresh(self, keys, compute):
        fresh = {}
        for key in keys:
            fresh[key] = compute(key)
        self._entries = fresh

    def insert(self, key, value, audit):
        try:
            self._entries[key] = value
            audit(key)
        except Exception:
            self._entries.clear()
            raise


def warm(memo, keys, compute):
    fresh = {}
    for key in keys:
        fresh[key] = compute(key)
    memo.update(fresh)
