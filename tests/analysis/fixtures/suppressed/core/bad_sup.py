"""Suppression fixture: silenced violations plus one stale suppression."""

import time


def stamp():
    return time.time()  # lint: ignore[D1]


def exact(a: float, b: float):
    return a == b  # lint: ignore


def fine():
    return 1  # lint: ignore[P1]
