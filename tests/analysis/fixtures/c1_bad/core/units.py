"""C1 fixture (bad): units missing from one or both registries."""


class Collector:
    def collect_flow_entity(self, snapshot, key):
        return key

    def collect_orphan_entity(self, snapshot, key):
        return key

    def run(self, snapshot):
        return [self.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
