"""C1 fixture (bad): dispatches a unit that is defined nowhere."""


class Incremental:
    def run(self, collector, snapshot):
        return [collector.check_ghost_entity(snapshot, k) for k in sorted(snapshot)]
