"""The non-blocking counterparts of every a1_bad hazard."""

import asyncio


async def poll(loop, executor, job):
    await asyncio.sleep(0.1)
    future = loop.run_in_executor(executor, job)
    return await future
