"""All-rules-clean fixture: the patterns the linter must accept."""

import math


def collect_counter_entity(snapshot, key):
    counters = dict(snapshot.counters)
    return counters.get(key)


def summarise(verdicts):
    names = set(verdicts)
    return [verdicts[name] for name in sorted(names)]


def within(a: float, b: float, tol: float):
    return math.isclose(a, b, rel_tol=tol)
