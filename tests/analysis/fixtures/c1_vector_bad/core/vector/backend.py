"""C1 fixture (bad): misses one unit, dispatches a ghost."""


class VectorBackend:
    def run(self, collector, snapshot):
        out = [collector.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
        out += [collector.check_ghost_entity(snapshot, k) for k in sorted(snapshot)]
        return out
