"""C1 fixture (bad): a unit the vector backend never accounts for."""


class Collector:
    def collect_flow_entity(self, snapshot, key):
        return key

    def harden_gap_entity(self, snapshot, key):
        return key

    def run(self, snapshot):
        out = [self.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
        out += [self.harden_gap_entity(snapshot, k) for k in sorted(snapshot)]
        return out
