"""C1 fixture (bad tree, clean module): both units wired here."""


class Incremental:
    def run(self, collector, snapshot):
        out = [collector.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
        out += [collector.harden_gap_entity(snapshot, k) for k in sorted(snapshot)]
        return out
