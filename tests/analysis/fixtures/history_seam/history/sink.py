"""Known-bad history-core fixture: a wall-clock read off the seam.

``history/`` is core scope and only ``history/store.py`` is the
sanctioned clock seam -- a ``time.time()`` anchor here would break the
byte-reproducible store contract and must be flagged by D1.
"""

import time


def record_anchor():
    return time.time()
