"""Known-bad history-core fixture: an unprotected store mutation.

``HistoryStore`` is a pinned cache-store class, so a write interleaved
with a fallible call -- a half-appended ledger if ``flush`` raises --
must be flagged by X1 even though the module lives outside ``engine/``.
"""


class HistoryStore:
    def append_all(self, rows, flush):
        for row in rows:
            self._pending[row] = True
            flush(row)
