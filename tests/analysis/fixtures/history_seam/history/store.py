"""Known-good seam fixture: the history store's sanctioned clock.

Mirrors the live ``repro/history/store.py`` -- this path is listed in
``LintConfig.clock_seam_paths`` (age retention is inherently
wall-time-based), so its ``time.time`` default is exempt from D1.  The
store class is also a pinned cache-store: its mutations follow the
try/except-rollback discipline, which X1 accepts because ``rollback``
is a sanctioned reset name.
"""

import time


class HistoryStore:
    def default_anchor(self, recorded_at):
        return time.time() if recorded_at is None else recorded_at

    def append(self, rows):
        try:
            for row in rows:
                self._pending[row] = True
            self._conn.commit()
        except Exception:
            self._conn.rollback()
            raise
