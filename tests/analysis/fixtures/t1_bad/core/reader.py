"""Reads raw fields out of source-typed telemetry objects."""


def read_rate(snap: "RouterSnapshot"):
    return snap.rate


def relay_rate(snap: "RouterSnapshot"):
    value = read_rate(snap)
    return value
