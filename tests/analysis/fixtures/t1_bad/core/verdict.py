"""Sinks fed by raw input across function boundaries."""

from core.reader import relay_rate


def verdict(snap: "RouterSnapshot"):
    rate = relay_rate(snap)
    return check_link_entity(rate)


def summarize(store, epoch: "AssembledEpoch"):
    flows = store.flows_of(epoch)
    return ValidationReport(flows)
