"""Method-dispatch leg of the taint chain."""


class EpochStore:
    def flows_of(self, epoch: "AssembledEpoch"):
        return epoch.flows
