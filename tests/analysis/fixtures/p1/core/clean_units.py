"""Known-good P1 fixture: per-entity units that copy instead of mutate."""


def collect_counter_entity(snapshot, key):
    counters = dict(snapshot.counters)
    counters[key] = 0
    return counters


def check_node_entity(demand, state, node):
    rows = list(state.rows.get(node, ()))
    rows.append(node)
    return tuple(rows)
