"""Known-bad P1 fixture: per-entity units that mutate their arguments."""


def collect_counter_entity(snapshot, key):
    snapshot.counters[key] = 0
    return snapshot.counters.get(key)


def harden_edge_entity(collected, state):
    derived = state.edge_flows
    derived["a"] = 1
    return derived


def check_node_entity(demand, state, node):
    rows = state.rows.get(node)
    rows.append(node)
    return rows


def repair_flows(collected, state):
    state.dirty = True
    del state.cache["x"]
    return state
