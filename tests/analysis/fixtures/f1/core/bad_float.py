"""Known-bad F1 fixture: bare float equality in a core module."""


def exact(a: float, b: float):
    return a == b


def ratio(x, y):
    return x / y == 0.5


def literal(z):
    return z != 1.5
