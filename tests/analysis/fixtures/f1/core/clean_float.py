"""Known-good F1 fixture: tolerance compares and non-float equality."""

import math


def close(a: float, b: float, tol: float):
    return math.isclose(a, b, rel_tol=tol)


def names_match(mode, other):
    return mode == other


def int_count(n: int):
    return n == 0
