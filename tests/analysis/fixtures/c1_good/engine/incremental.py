"""C1 fixture (good): incremental registry dispatching the same unit."""


class Incremental:
    def run(self, collector, snapshot):
        return [collector.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
