"""C1 fixture (good): unit wired into serial and incremental paths."""


class Collector:
    def collect_flow_entity(self, snapshot, key):
        return key

    def run(self, snapshot):
        return [self.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
