"""Known-good P2 fixture: constants are fine; state flows through args."""

LIMIT = 16
NAMES = ("a", "b")


def lookup(registry, name):
    return registry.get(name, LIMIT)
