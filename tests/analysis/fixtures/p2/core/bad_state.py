"""Known-bad P2 fixture: core stage touching module-level mutable state."""

REGISTRY = {}
_SEEN = []


def lookup(name):
    return REGISTRY[name]


def remember(name):
    _SEEN.append(name)


def rebind(name):
    global REGISTRY
    REGISTRY = {name: 1}
