"""Known-good fuzz-core fixture: every random draw comes from a seeded
``random.Random`` instance, so a case seed regenerates the exact case.
Iteration is over sorted views only -- nothing here should be flagged
even though ``fuzz/`` is core scope.
"""

import random


def generate_case(seed, nodes):
    rng = random.Random(seed)
    picked = []
    for name in sorted(nodes):
        if rng.random() < 0.5:
            picked.append(name)
    return picked
