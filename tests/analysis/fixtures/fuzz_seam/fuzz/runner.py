"""Known-bad fuzz-core fixture: the exact hazards that would make a
reproducer unreplayable.  A global-RNG draw picks a different case on
every run, and a wall-clock case id ties the reproducer to the moment
it was found -- both must be flagged now that ``fuzz/`` is core scope.
"""

import random
import time


def pick_case_seed():
    return random.randrange(2**32)


def stamp_case_id(prefix):
    return f"{prefix}_{time.time()}"
