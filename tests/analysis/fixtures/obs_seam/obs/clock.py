"""Known-good seam fixture: the sanctioned wall-clock wrapper.

Mirrors the live ``repro/obs/clock.py`` -- this path is listed in
``LintConfig.clock_seam_paths``, so its ``time.time()`` read is exempt
from D1 while the rest of the obs tree stays in scope.
"""

import time


def system_wall_time():
    return time.time()
