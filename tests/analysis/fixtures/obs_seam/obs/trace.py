"""Known-bad seam fixture: wall-clock read outside the seam module.

A ``time.time()`` inside a span body is exactly the bug the seam
exists to prevent -- trace timestamps must come from the injected
clock, so this module (not listed in ``clock_seam_paths``) must still
be flagged even though it lives under ``obs/``.
"""

import time


class Span:
    def __enter__(self):
        self.start = time.time()
        return self

    def __exit__(self, *exc):
        self.end = time.perf_counter()
