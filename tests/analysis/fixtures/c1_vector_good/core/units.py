"""C1 fixture (good): units wired into every execution path."""


class Collector:
    def collect_flow_entity(self, snapshot, key):
        return key

    def harden_span_entity(self, snapshot, key):
        return key

    def run(self, snapshot):
        out = [self.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
        out += [self.harden_span_entity(snapshot, k) for k in sorted(snapshot)]
        return out
