"""C1 fixture (good): array backend with a replacement manifest.

``harden_span_entity`` is replicated as array math here rather than
dispatched; naming it in this manifest satisfies the three-way C1
coverage check.
"""


class VectorBackend:
    def run(self, collector, snapshot):
        return [collector.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
