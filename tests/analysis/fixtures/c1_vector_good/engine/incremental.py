"""C1 fixture (good): incremental registry dispatching every unit."""


class Incremental:
    def run(self, collector, snapshot):
        out = [collector.collect_flow_entity(snapshot, k) for k in sorted(snapshot)]
        out += [collector.harden_span_entity(snapshot, k) for k in sorted(snapshot)]
        return out
