"""Instance state straddling awaits, three hazard shapes."""


class Tracker:
    async def step(self, queue):
        before = self._count
        item = await queue.get()
        self._count = before + 1
        return item

    async def spin(self, queue):
        for item in self._items:
            self._seen += 1
            await queue.put(item)


class Pair:
    async def produce(self, queue):
        self._live -= 1
        await queue.put(None)

    async def consume(self, queue):
        while self._live > 0:
            await queue.get()
