"""Known-bad fleet-core fixture: a wall-clock quarantine cooldown.

``fleet/`` is core scope: admission decisions must be a pure function
of the digest sequence so a fleet run replays deterministically.  A
cooldown anchored to ``time.time()`` makes readmission timing depend
on host load -- D1 must flag it.  The epoch-counted variant below it
is the sanctioned pattern and stays clean.
"""

import time


def quarantined_long_enough(quarantined_at_wall):
    return time.time() - quarantined_at_wall > 60.0


def cooldown_elapsed(observed, quarantined_at, cooldown_epochs):
    return observed - quarantined_at >= cooldown_epochs
