"""Known-bad fleet-core fixture: blocking and unordered worker code.

A worker hosts many tenants' pipelines on one event loop; a blocking
sleep in an async handler stalls *every* tenant on that worker (A1).
Draining an unsorted set of tenant tasks makes shutdown order -- and
therefore the results-channel message order the supervisor replays --
nondeterministic (D1).
"""

import time


async def backoff_then_ack(results, worker_id):
    time.sleep(0.2)
    results.put(("worker_done", worker_id))


def drain_order(running, cancelled):
    active = set(running) | set(cancelled)
    order = []
    for tenant in active:
        order.append(tenant)
    return order
