"""Queue and lock disciplines that make the a2_bad shapes safe."""


class Guarded:
    async def step(self, queue):
        async with self._lock:
            self._count += 1
        await queue.put(None)


class Channelled:
    async def produce(self, queue):
        total = 0
        for item in self._items:
            total += item
            await queue.put(item)
        await queue.put(total)
