"""Known-bad D1 fixture: nondeterminism hazards in a core module."""

import random
import time


def stamp():
    return time.time()


def jitter():
    return random.random()


def ordered(names):
    seen = {name for name in names}
    out = []
    for name in seen:
        out.append(name)
    return out


def listed(a, b):
    return list(a.keys() & b.keys())


def keyed(objs):
    return {id(obj): obj for obj in objs}
