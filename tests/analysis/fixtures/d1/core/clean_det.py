"""Known-good D1 fixture: deterministic counterparts of every hazard."""

import random
import time


def stamp():
    return time.perf_counter()


def jitter(seed):
    return random.Random(seed).random()


def ordered(names):
    seen = {name for name in names}
    out = []
    for name in sorted(seen):
        out.append(name)
    return out


def total(names):
    seen = {name for name in names}
    count = 0
    for _name in seen:
        count += 1
    return count


def listed(a, b):
    return sorted(a.keys() & b.keys())


def keyed(objs):
    return {obj.name: obj for obj in objs}
