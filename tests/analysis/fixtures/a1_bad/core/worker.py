"""Blocking calls and lost executor futures inside coroutines."""

import time


async def poll(loop, executor, job):
    time.sleep(0.1)
    data = open("/tmp/scratch").read()
    loop.run_in_executor(executor, job)
    future = loop.run_in_executor(executor, job)
    return data
