"""Diagnostic record semantics: ordering, rendering, JSON round-trip."""

import pytest

from repro.analysis.diagnostics import Diagnostic, Severity


def test_severity_parse_round_trips():
    for member in Severity:
        assert Severity.parse(member.value) is member


def test_severity_parse_rejects_unknown():
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_render_is_path_line_col_code_severity_message():
    diagnostic = Diagnostic(
        code="D1", message="set iteration", path="core/x.py", line=12, col=4
    )
    assert diagnostic.render() == "core/x.py:12:4: D1 [error] set iteration"


def test_sort_key_orders_by_location_then_code():
    a = Diagnostic(code="P1", message="m", path="a.py", line=5)
    b = Diagnostic(code="D1", message="m", path="a.py", line=5)
    c = Diagnostic(code="P1", message="m", path="a.py", line=2)
    d = Diagnostic(code="P1", message="m", path="b.py", line=1)
    ordered = sorted([a, b, c, d], key=Diagnostic.sort_key)
    assert ordered == [c, b, a, d]


def test_to_dict_from_dict_round_trip():
    diagnostic = Diagnostic(
        code="F1",
        message="bare float equality",
        path="engine/diff.py",
        line=41,
        col=11,
        severity=Severity.WARNING,
    )
    payload = diagnostic.to_dict()
    assert Diagnostic.from_dict(payload) == diagnostic
    assert Diagnostic.from_dict(payload).to_dict() == payload
