"""Mutation-testing the analyzer: plant known bugs, assert detection.

A taint engine that never fires is indistinguishable from a correct
one on a clean tree.  These tests copy a known-clean fixture, plant
the exact bug class each rule exists for, and assert the finding
appears at the planted line -- plus the manifest-sensitivity check:
deleting a sanitizer entry must flip a passing tree to failing.
"""

import shutil
from pathlib import Path

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def _findings(result):
    return [(d.path, d.line, d.code) for d in result.diagnostics]


def test_planted_route_around_hardening_is_caught(tmp_path):
    """Raw link_status piped past the hardening step into a report."""
    root = tmp_path / "plant"
    shutil.copytree(FIXTURES / "t1_good", root)
    assert run_lint(FIXTURES / "t1_good").ok
    (root / "core" / "leak.py").write_text(
        '"""Planted bug: raw status routed around hardening."""\n'
        "\n"
        "\n"
        'def gather(snap: "NetworkSnapshot"):\n'
        "    return snap.link_status\n"
        "\n"
        "\n"
        'def publish(snap: "NetworkSnapshot"):\n'
        "    status = gather(snap)\n"
        "    return ValidationReport(status)\n",
        encoding="utf-8",
    )
    planted = run_lint(root)
    assert not planted.ok
    assert ("core/leak.py", 10, "T1") in _findings(planted)
    # The trace must walk back through gather() to the raw field read.
    trace = planted.taint_traces[0]["steps"]
    assert trace[0]["kind"] == "source"
    assert trace[0]["line"] == 5
    assert trace[-1]["kind"] == "sink"


def test_planted_await_straddle_is_caught(tmp_path):
    """State read before an await and written after it."""
    root = tmp_path / "plant"
    shutil.copytree(FIXTURES / "a2_good", root)
    assert run_lint(FIXTURES / "a2_good").ok
    state = root / "core" / "state.py"
    state.write_text(
        state.read_text(encoding="utf-8")
        + "\n"
        + "\n"
        + "class Straddler:\n"
        + "    async def tick(self, queue):\n"
        + "        count = self._pending\n"
        + "        await queue.put(count)\n"
        + "        self._pending = count - 1\n",
        encoding="utf-8",
    )
    planted = run_lint(root)
    assert not planted.ok
    codes = _findings(planted)
    assert any(
        path == "core/state.py" and code == "A2" for path, _line, code in codes
    ), codes


def test_removing_a_sanitizer_manifest_entry_flips_t1():
    """The pass verdict must depend on the manifest, not luck."""
    assert run_lint(FIXTURES / "t1_good").ok
    stripped = run_lint(
        FIXTURES / "t1_good", config=LintConfig(taint_sanitizers=())
    )
    assert not stripped.ok
    assert [
        (path, code) for path, _line, code in _findings(stripped)
    ] == [("core/verdict.py", "T1")]


def test_adding_a_sink_manifest_entry_extends_coverage():
    """Symmetric check: manifests widen detection, not just narrow it."""
    base = run_lint(FIXTURES / "t1_bad")
    widened = run_lint(
        FIXTURES / "t1_bad",
        config=LintConfig(taint_sinks=(r"^check_\w+_entity$",)),
    )
    # Dropping the ValidationReport pattern removes exactly that finding.
    assert len(widened.diagnostics) == len(base.diagnostics) - 1
    assert all("check_link_entity" in d.message for d in widened.diagnostics)
