"""Meta-test: the live tree must satisfy its own lint contract.

This is the same gate CI runs (``python -m repro lint``); keeping it in
the test suite means a violation fails fast locally even without the
CI step.
"""

from pathlib import Path

import repro
from repro.analysis import run_lint


def test_live_tree_is_lint_clean():
    result = run_lint(Path(repro.__file__).parent)
    rendered = "\n".join(d.render() for d in result.diagnostics)
    assert result.ok and not result.diagnostics, f"lint findings:\n{rendered}"


def test_live_tree_suppressions_are_all_used():
    # run_lint would have raised L1 findings otherwise; additionally
    # pin that every suppression in the tree carries at least one used
    # code, so the suppression inventory in --json stays honest.
    result = run_lint(Path(repro.__file__).parent)
    assert result.suppressions, "expected documented suppressions in the tree"
    for entry in result.suppressions:
        assert entry["used"], f"stale suppression: {entry}"
