"""One JSON schema, golden-pinned: ``--json``, suppressions, EngineStats.

The lint payload the CLI prints, the payload ``run_lint`` returns, and
the suppression entries embedded in it are the same document; this
module pins it against a golden file and proves both
``LintResult`` and ``EngineStats`` round-trip through their dict forms
without drift.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import run_lint, to_json_text
from repro.analysis.runner import LintResult
from repro.engine import EngineStats

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden"


def test_json_output_matches_golden():
    result = run_lint(FIXTURES / "suppressed")
    payload = json.loads(to_json_text(result))
    payload["root"] = "<ROOT>"
    payload["timing"]["wall_time_s"] = "<WALL>"
    golden = json.loads((GOLDEN / "suppressed.json").read_text())
    assert payload == golden


def test_lint_result_payload_round_trips():
    result = run_lint(FIXTURES / "suppressed")
    payload = result.to_payload()
    rebuilt = LintResult.from_payload(payload)
    assert rebuilt.to_payload() == payload
    assert rebuilt.diagnostics == result.diagnostics
    assert rebuilt.suppressed_count == result.suppressed_count


def test_lint_result_rejects_unknown_payload_version():
    result = run_lint(FIXTURES / "clean")
    payload = result.to_payload()
    payload["version"] = 99
    with pytest.raises(ValueError):
        LintResult.from_payload(payload)


def _populated_stats():
    stats = EngineStats(shards=3, mode="incremental")
    stats.epochs = 7
    stats.cache_hits = 6
    stats.cache_misses = 1
    stats.record_stage("collect", 0.25)
    stats.record_stage("harden", 0.5)
    stats.record_stage("check", 0.125)
    stats.record_stage("total", 1.0)
    stats.shard_tasks = 21
    stats.shard_busy_seconds = 0.75
    stats.record_reuse("counters", 4, 60)
    stats.record_reuse("demand", 2, 30)
    stats.repair_solves = 3
    stats.repair_reuses = 9
    return stats


def test_engine_stats_round_trips_through_to_dict():
    stats = _populated_stats()
    payload = stats.to_dict()
    rebuilt = EngineStats.from_dict(payload)
    assert rebuilt.to_dict() == payload
    # Derived keys were recomputed from counters, not copied through.
    assert rebuilt.cache_hit_rate == pytest.approx(6 / 7)
    assert rebuilt.reuse_rate() == pytest.approx(90 / 96)


def test_engine_stats_from_dict_ignores_derived_but_rejects_unknown():
    payload = _populated_stats().to_dict()
    for key in EngineStats.DERIVED_KEYS:
        assert key in payload  # golden: to_dict still exports them
    payload["mystery_counter"] = 5
    with pytest.raises(ValueError, match="mystery_counter"):
        EngineStats.from_dict(payload)


def test_engine_stats_json_round_trip_via_text():
    stats = _populated_stats()
    text = json.dumps(stats.to_dict(), sort_keys=True)
    rebuilt = EngineStats.from_dict(json.loads(text))
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == text
