"""Every rule against its known-good/known-bad fixture tree.

The fixtures live under ``tests/analysis/fixtures/<rule>/``; each is a
miniature lint root whose ``core/`` subdirectory marks files as
pipeline-core.  Expectations pin (path, line, code) exactly -- the
analyzer's file:line spans are part of its contract.
"""

from pathlib import Path

from repro.analysis import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def _findings(result):
    return [(d.path, d.line, d.code) for d in result.diagnostics]


def test_clean_tree_is_clean():
    result = run_lint(FIXTURES / "clean")
    assert result.ok
    assert result.diagnostics == []
    assert result.files_scanned == 1


def test_p1_flags_every_argument_mutation_and_nothing_else():
    result = run_lint(FIXTURES / "p1")
    assert not result.ok
    assert _findings(result) == [
        ("core/bad_units.py", 5, "P1"),   # snapshot.counters[key] = 0
        ("core/bad_units.py", 11, "P1"),  # store via local alias of state
        ("core/bad_units.py", 17, "P1"),  # .append() on alias chain
        ("core/bad_units.py", 22, "P1"),  # state.dirty = True
        ("core/bad_units.py", 23, "P1"),  # del state.cache["x"]
    ]


def test_p2_flags_global_state_reads_writes_and_global_stmt():
    result = run_lint(FIXTURES / "p2")
    assert _findings(result) == [
        ("core/bad_state.py", 8, "P2"),   # read of REGISTRY
        ("core/bad_state.py", 12, "P2"),  # _SEEN.append receiver read
        ("core/bad_state.py", 16, "P2"),  # global REGISTRY
        ("core/bad_state.py", 17, "P2"),  # rebind of REGISTRY
    ]


def test_d1_flags_each_hazard_class_once():
    result = run_lint(FIXTURES / "d1")
    assert _findings(result) == [
        ("core/bad_det.py", 8, "D1"),   # time.time()
        ("core/bad_det.py", 12, "D1"),  # global random.random()
        ("core/bad_det.py", 18, "D1"),  # for over set, appending
        ("core/bad_det.py", 24, "D1"),  # list(keys-view intersection)
        ("core/bad_det.py", 28, "D1"),  # id()-keyed dict comprehension
    ]


def test_d1_messages_name_the_hazard():
    result = run_lint(FIXTURES / "d1")
    messages = "\n".join(d.message for d in result.diagnostics)
    assert "wall-clock" in messages
    assert "global RNG" in messages
    assert "sorted(" in messages
    assert "id()-keyed" in messages


def test_obs_clock_seam_exempts_only_the_seam_module():
    result = run_lint(FIXTURES / "obs_seam")
    # obs/ is core scope, so the time.time() inside the span body is
    # flagged; the identical call inside the seam module is not.
    assert _findings(result) == [
        ("obs/trace.py", 14, "D1"),  # time.time() in __enter__
    ]
    assert "wall-clock" in result.diagnostics[0].message


def test_obs_clock_seam_is_per_file_not_per_directory():
    from repro.analysis import LintConfig

    result = run_lint(
        FIXTURES / "obs_seam", config=LintConfig(clock_seam_paths=frozenset())
    )
    assert _findings(result) == [
        ("obs/clock.py", 12, "D1"),
        ("obs/trace.py", 14, "D1"),
    ]


def test_stream_event_loop_clock_flagged_outside_the_seam():
    result = run_lint(FIXTURES / "stream_seam")
    # stream/ is core scope, so both the direct factory chain and the
    # assignment-tracked loop.time() are flagged; the identical read
    # inside the pinned seam module (obs/clock.py) is not.
    assert _findings(result) == [
        ("stream/ingest.py", 15, "D1"),  # asyncio.get_event_loop().time()
        ("stream/ingest.py", 20, "D1"),  # loop = ...; loop.time()
    ]
    assert all("event-loop clock" in d.message for d in result.diagnostics)


def test_stream_event_loop_seam_is_per_file_not_per_directory():
    from repro.analysis import LintConfig

    result = run_lint(
        FIXTURES / "stream_seam", config=LintConfig(clock_seam_paths=frozenset())
    )
    assert _findings(result) == [
        ("obs/clock.py", 13, "D1"),
        ("stream/ingest.py", 15, "D1"),
        ("stream/ingest.py", 20, "D1"),
    ]


def test_fuzz_is_core_scope_and_seeded_rng_passes():
    result = run_lint(FIXTURES / "fuzz_seam")
    # fuzz/ is core scope: the global-RNG case seed and the wall-clock
    # case id -- the two ways a reproducer stops replaying -- are
    # flagged; the seeded-Random generator next to them is clean.
    assert result.files_scanned == 2
    assert _findings(result) == [
        ("fuzz/runner.py", 12, "D1"),  # random.randrange() on global RNG
        ("fuzz/runner.py", 16, "D1"),  # time.time() case id
    ]
    messages = "\n".join(d.message for d in result.diagnostics)
    assert "global RNG" in messages
    assert "wall-clock" in messages


def test_f1_flags_annotated_division_and_literal_float_compares():
    result = run_lint(FIXTURES / "f1")
    assert _findings(result) == [
        ("core/bad_float.py", 5, "F1"),   # float-annotated params
        ("core/bad_float.py", 9, "F1"),   # division result
        ("core/bad_float.py", 13, "F1"),  # float literal
    ]


def test_suppressions_silence_and_stale_one_raises_l1():
    result = run_lint(FIXTURES / "suppressed")
    assert result.suppressed_count == 2
    assert _findings(result) == [("core/bad_sup.py", 15, "L1")]


def test_rule_filter_runs_only_selected_codes():
    from repro.analysis import LintConfig

    result = run_lint(FIXTURES / "d1", config=LintConfig(enabled_codes=frozenset({"F1"})))
    assert result.diagnostics == []
    result = run_lint(FIXTURES / "d1", config=LintConfig(enabled_codes=frozenset({"D1"})))
    assert len(result.diagnostics) == 5


def test_syntax_error_surfaces_as_e1_diagnostic(tmp_path):
    bad = tmp_path / "core"
    bad.mkdir()
    (bad / "broken.py").write_text("def broken(:\n")
    result = run_lint(tmp_path)
    assert [(d.path, d.code) for d in result.diagnostics] == [("core/broken.py", "E1")]
    assert not result.ok


def test_t1_flags_interprocedural_and_dispatch_chains():
    result = run_lint(FIXTURES / "t1_bad")
    assert _findings(result) == [
        ("core/verdict.py", 8, "T1"),   # check_link_entity(relay chain)
        ("core/verdict.py", 13, "T1"),  # ValidationReport(dispatch chain)
    ]
    messages = "\n".join(d.message for d in result.diagnostics)
    # The message names the cross-file origin, not just the sink line.
    assert "core/reader.py:5" in messages
    assert "core/store.py:6" in messages


def test_t1_sanitized_and_benign_field_chains_are_clean():
    result = run_lint(FIXTURES / "t1_good")
    assert result.ok
    assert result.diagnostics == []


def test_a1_flags_each_blocking_shape_once():
    result = run_lint(FIXTURES / "a1_bad")
    assert _findings(result) == [
        ("core/worker.py", 7, "A1"),   # time.sleep()
        ("core/worker.py", 8, "A1"),   # open()
        ("core/worker.py", 9, "A1"),   # discarded executor future
        ("core/worker.py", 10, "A1"),  # future assigned, never awaited
    ]


def test_a1_async_equivalents_are_clean():
    result = run_lint(FIXTURES / "a1_good")
    assert result.diagnostics == []


def test_a2_flags_straddle_loop_and_cross_coroutine_hazards():
    result = run_lint(FIXTURES / "a2_bad")
    assert _findings(result) == [
        ("core/state.py", 8, "A2"),   # read-await-write straddle
        ("core/state.py", 13, "A2"),  # mutation in awaiting loop
        ("core/state.py", 19, "A2"),  # producer writes, consumer reads
    ]


def test_a2_lock_and_queue_disciplines_are_clean():
    result = run_lint(FIXTURES / "a2_good")
    assert result.diagnostics == []


def test_x1_flags_unprotected_store_and_cache_param_writes():
    result = run_lint(FIXTURES / "x1_bad")
    assert _findings(result) == [
        ("core/cache.py", 7, "X1"),   # store-class write in fallible loop
        ("core/cache.py", 10, "X1"),  # write then fallible call
        ("core/cache.py", 16, "X1"),  # cache-pattern param in loop
    ]


def test_x1_reset_handler_and_build_then_swap_are_clean():
    result = run_lint(FIXTURES / "x1_good")
    assert result.diagnostics == []


def test_history_is_core_scope_with_store_as_the_clock_seam():
    result = run_lint(FIXTURES / "history_seam")
    # history/ is core scope: the wall-clock anchor outside the pinned
    # seam module and the unprotected HistoryStore mutation are both
    # flagged; the seam's time.time default and the rollback-protected
    # append in store.py are clean.
    assert _findings(result) == [
        ("history/ledger.py", 12, "X1"),  # store write then fallible flush
        ("history/sink.py", 12, "D1"),    # time.time() off the seam
    ]


def test_history_clock_seam_is_per_file_not_per_directory():
    from repro.analysis import LintConfig

    result = run_lint(
        FIXTURES / "history_seam", config=LintConfig(clock_seam_paths=frozenset())
    )
    assert _findings(result) == [
        ("history/ledger.py", 12, "X1"),
        ("history/sink.py", 12, "D1"),
        ("history/store.py", 16, "D1"),
    ]


def test_fleet_is_core_scope():
    result = run_lint(FIXTURES / "fleet_seam")
    # fleet/ is core scope: wall-clock admission cooldowns, blocking
    # calls on a worker's event loop, and unordered drain sequencing
    # would all make fleet recovery unreplayable.  The epoch-counted
    # cooldown in admission.py stays clean.
    assert _findings(result) == [
        ("fleet/admission.py", 14, "D1"),  # wall-clock cooldown
        ("fleet/worker.py", 14, "A1"),     # sleep on the worker loop
        ("fleet/worker.py", 21, "D1"),     # set-ordered drain
    ]


def test_fleet_scope_off_when_core_dirs_excludes_it():
    from repro.analysis import LintConfig

    result = run_lint(
        FIXTURES / "fleet_seam",
        config=LintConfig(core_dirs=frozenset({"core"})),
    )
    # Outside core scope nothing fires: the findings above are owed
    # entirely to fleet/ joining core_dirs.
    assert _findings(result) == []
