"""Suppression comment parsing, matching, and the L1 unused check."""

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.suppress import SuppressionIndex


def _diag(code, line, path="core/x.py"):
    return Diagnostic(code=code, message="m", path=path, line=line)


def test_coded_suppression_silences_only_listed_codes():
    index = SuppressionIndex.from_source("x = 1  # lint: ignore[P1,F1]\n")
    assert index.suppresses(_diag("P1", 1))
    assert index.suppresses(_diag("F1", 1))
    assert not index.suppresses(_diag("D1", 1))
    assert not index.suppresses(_diag("P1", 2))


def test_blanket_suppression_silences_every_code():
    index = SuppressionIndex.from_source("x = 1  # lint: ignore\n")
    assert index.suppresses(_diag("P1", 1))
    assert index.suppresses(_diag("C1", 1))


def test_mention_in_docstring_is_not_a_suppression():
    source = '"""Docs may mention # lint: ignore[P1] freely."""\nx = 1\n'
    index = SuppressionIndex.from_source(source)
    assert len(index) == 0
    assert not index.suppresses(_diag("P1", 1))


def test_unused_coded_suppression_raises_l1_per_dead_code():
    index = SuppressionIndex.from_source("x = 1  # lint: ignore[P1,F1]\n")
    index.suppresses(_diag("P1", 1))
    unused = index.unused("core/x.py")
    assert [d.code for d in unused] == ["L1"]
    assert "F1" in unused[0].message
    assert unused[0].line == 1


def test_unused_blanket_suppression_raises_one_l1():
    index = SuppressionIndex.from_source("x = 1  # lint: ignore\n")
    unused = index.unused("core/x.py")
    assert len(unused) == 1
    assert "blanket" in unused[0].message


def test_used_suppressions_raise_nothing():
    index = SuppressionIndex.from_source("x = 1  # lint: ignore[D1]\n")
    assert index.suppresses(_diag("D1", 1))
    assert index.unused("core/x.py") == []


def test_to_dicts_reports_codes_and_usage_in_line_order():
    source = "a = 1  # lint: ignore[P1]\nb = 2\nc = 3  # lint: ignore\n"
    index = SuppressionIndex.from_source(source)
    index.suppresses(_diag("P1", 1))
    entries = index.to_dicts("core/x.py")
    assert entries == [
        {"path": "core/x.py", "line": 1, "codes": ["P1"], "used": ["P1"]},
        {"path": "core/x.py", "line": 3, "codes": "*", "used": []},
    ]


def test_codes_with_interior_whitespace_parse():
    index = SuppressionIndex.from_source("x = 1  # lint: ignore[P1 , F1]\n")
    assert index.suppresses(_diag("P1", 1))
    assert index.suppresses(_diag("F1", 1))
    assert not index.suppresses(_diag("D1", 1))


def test_pairs_round_trip_preserves_codes_and_blanket():
    source = "a = 1  # lint: ignore[P1,F1]\nb = 2  # lint: ignore\n"
    index = SuppressionIndex.from_source(source)
    rebuilt = SuppressionIndex.from_pairs(index.pairs())
    assert rebuilt.pairs() == index.pairs()
    assert rebuilt.suppresses(_diag("F1", 1))
    assert rebuilt.suppresses(_diag("D1", 2))  # blanket on line 2
    assert not rebuilt.suppresses(_diag("D1", 1))


def test_suppression_on_decorator_line_does_not_cover_the_body(tmp_path):
    from repro.analysis import run_lint

    core = tmp_path / "core"
    core.mkdir()
    (core / "deco.py").write_text(
        "import functools\n"
        "import time\n"
        "\n"
        "\n"
        "@functools.lru_cache  # lint: ignore[A1]\n"
        "async def tick():\n"
        "    time.sleep(1)\n",
        encoding="utf-8",
    )
    result = run_lint(tmp_path)
    # The diagnostic anchors on the blocking call, not the decorated
    # def, so the decorator-line suppression is stale: A1 still fires
    # and the suppression itself raises L1.
    found = sorted((d.path, d.line, d.code) for d in result.diagnostics)
    assert found == [("core/deco.py", 5, "L1"), ("core/deco.py", 7, "A1")]


def test_new_code_families_participate_in_stale_l1(tmp_path):
    from repro.analysis import run_lint

    core = tmp_path / "core"
    core.mkdir()
    (core / "mixed.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "async def tick():\n"
        "    time.sleep(1)  # lint: ignore[A1,X1]\n",
        encoding="utf-8",
    )
    result = run_lint(tmp_path)
    # A1 is genuinely silenced; the X1 half of the comment did nothing
    # and must surface as exactly one stale-suppression finding.
    assert [(d.line, d.code) for d in result.diagnostics] == [(5, "L1")]
    assert "X1" in result.diagnostics[0].message
    assert result.suppressed_count == 1
