"""Incremental lint: content-hash reuse, invalidation, wall time.

The cache contract: a byte-identical file is never re-parsed; any
changed file is; a changed manifest (config fingerprint) or changed
import/def skeleton discards the cross-file artifacts that depend on
it.  Findings must be identical between cold and warm runs -- the
cache is a pure accelerator, never an oracle.
"""

import shutil
from pathlib import Path

from repro.analysis import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
LIVE = Path(__file__).resolve().parents[2] / "src" / "repro"


def _findings(result):
    return [(d.path, d.line, d.code) for d in result.diagnostics]


def test_warm_run_reuses_every_file_and_the_call_graph(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "t1_bad", root)
    cache = tmp_path / "lint-cache.json"

    cold = run_lint(root, cache_path=cache)
    assert cold.files_reparsed == 3
    assert cold.files_cached == 0
    assert not cold.callgraph_reused

    warm = run_lint(root, cache_path=cache)
    assert warm.files_reparsed == 0
    assert warm.files_cached == 3
    assert warm.callgraph_reused
    assert _findings(warm) == _findings(cold)
    # T1 traces survive the cached path (summaries round-trip).
    assert len(warm.taint_traces) == len(cold.taint_traces) == 2


def test_touched_file_is_reparsed_but_skeleton_reuse_holds(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "t1_bad", root)
    cache = tmp_path / "lint-cache.json"
    run_lint(root, cache_path=cache)

    reader = root / "core" / "reader.py"
    # A body-level edit: same imports, same defs -> same skeleton.
    reader.write_text(
        reader.read_text(encoding="utf-8").replace(
            "value = read_rate(snap)", "value = read_rate(snap)  # touched"
        ),
        encoding="utf-8",
    )
    warm = run_lint(root, cache_path=cache)
    assert warm.files_reparsed == 1
    assert warm.files_cached == 2
    assert warm.callgraph_reused


def test_skeleton_change_rebuilds_the_call_graph(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "t1_bad", root)
    cache = tmp_path / "lint-cache.json"
    run_lint(root, cache_path=cache)

    store = root / "core" / "store.py"
    store.write_text(
        store.read_text(encoding="utf-8") + "\n\ndef extra_probe():\n    return 0\n",
        encoding="utf-8",
    )
    warm = run_lint(root, cache_path=cache)
    assert warm.files_reparsed == 1
    assert not warm.callgraph_reused


def test_config_fingerprint_change_discards_the_whole_cache(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "t1_bad", root)
    cache = tmp_path / "lint-cache.json"
    run_lint(root, cache_path=cache)

    # A removed sanitizer entry MUST flip verdicts, so summaries keyed
    # to the old manifest may not be reused.
    altered = run_lint(
        root, config=LintConfig(taint_sanitizers=()), cache_path=cache
    )
    assert altered.files_reparsed == 3
    assert altered.files_cached == 0


def test_corrupt_cache_degrades_to_a_cold_run(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(FIXTURES / "t1_bad", root)
    cache = tmp_path / "lint-cache.json"
    cache.write_text("{ not json", encoding="utf-8")
    result = run_lint(root, cache_path=cache)
    assert result.files_reparsed == 3
    assert len(result.diagnostics) == 2


def test_warm_run_on_the_live_tree_is_faster(tmp_path):
    cache = tmp_path / "lint-cache.json"
    cold = run_lint(LIVE, cache_path=cache)
    warm = run_lint(LIVE, cache_path=cache)
    assert cold.ok and warm.ok
    assert warm.files_reparsed == 0
    assert warm.files_cached == cold.files_reparsed == cold.files_scanned
    assert warm.callgraph_reused
    assert warm.wall_time_s < cold.wall_time_s
