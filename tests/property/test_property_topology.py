"""Property-based tests for topology structures and generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.routing import k_shortest_paths, path_cost, shortest_path
from repro.net.topology import Node
from repro.topologies.synthetic import gnp_topology, grid_topology, waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestGeneratedTopologies:
    @given(count=st.integers(min_value=2, max_value=30), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_waxman_connected_and_simple(self, count, seed):
        topo = waxman_topology(count, seed=seed)
        assert topo.is_connected()
        assert topo.num_nodes == count
        # simple graph: adjacency is symmetric, no self loops
        for link in topo.links():
            assert link.a != link.b

    @given(
        count=st.integers(min_value=2, max_value=20),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_gnp_connected(self, count, p, seed):
        assert gnp_topology(count, p=p, seed=seed).is_connected()

    @given(rows=st.integers(min_value=1, max_value=5), cols=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_grid_link_count(self, rows, cols):
        topo = grid_topology(rows, cols)
        assert topo.num_links == rows * (cols - 1) + cols * (rows - 1)

    @given(count=st.integers(min_value=2, max_value=15), seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_directed_edges_pair_up(self, count, seed):
        topo = waxman_topology(count, seed=seed)
        edges = set(topo.directed_edges())
        assert all((v, u) in edges for u, v in edges)
        assert len(edges) == 2 * topo.num_links


class TestRoutingProperties:
    @given(count=st.integers(min_value=3, max_value=15), seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_shortest_path_endpoints_and_validity(self, count, seed):
        topo = waxman_topology(count, seed=seed)
        nodes = topo.node_names()
        src, dst = nodes[0], nodes[-1]
        path = shortest_path(topo, src, dst)
        assert path.source == src
        assert path.destination == dst
        for u, v in path.edges():
            assert topo.link_between(u, v) is not None

    @given(count=st.integers(min_value=4, max_value=12), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_k_shortest_sorted_and_distinct(self, count, seed):
        topo = waxman_topology(count, seed=seed)
        nodes = topo.node_names()
        paths = k_shortest_paths(topo, nodes[0], nodes[-1], 4)
        costs = [path_cost(p) for p in paths]
        assert costs == sorted(costs)
        assert len({p.nodes for p in paths}) == len(paths)

    @given(count=st.integers(min_value=3, max_value=12), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_triangle_inequality_of_shortest_paths(self, count, seed):
        from repro.net.routing import shortest_path_lengths

        topo = waxman_topology(count, seed=seed)
        nodes = topo.node_names()
        a, b, c = nodes[0], nodes[len(nodes) // 2], nodes[-1]
        d_from_a = shortest_path_lengths(topo, a)
        d_from_b = shortest_path_lengths(topo, b)
        assert d_from_a[c] <= d_from_a[b] + d_from_b[c] + 1e-9


class TestCopySemantics:
    @given(count=st.integers(min_value=2, max_value=12), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_copy_equals_original(self, count, seed):
        topo = waxman_topology(count, seed=seed)
        assert topo.copy() == topo

    @given(count=st.integers(min_value=3, max_value=12), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_without_drained_is_subgraph(self, count, seed):
        topo = waxman_topology(count, seed=seed)
        victim = topo.node_names()[0]
        topo.replace_node(Node(victim, drained=True))
        serving = topo.without_drained()
        assert serving.num_nodes == topo.num_nodes - 1
        for link in serving.links():
            assert topo.link_between(link.a, link.b) is not None
