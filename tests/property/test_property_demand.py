"""Property-based tests for demand matrices and generators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.demand import (
    bimodal_demand,
    gravity_demand,
    lognormal_demand,
    scale_entries,
    throttle,
    zero_entries,
)

node_counts = st.integers(min_value=2, max_value=8)
totals = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def names(count: int):
    return [f"n{i}" for i in range(count)]


class TestGeneratorInvariants:
    @given(count=node_counts, total=totals, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_gravity_total_and_nonnegativity(self, count, total, seed):
        matrix = gravity_demand(names(count), total=total, seed=seed)
        assert matrix.total() == pytest.approx(total, rel=1e-9, abs=1e-9)
        assert all(rate >= 0 for _s, _d, rate in matrix.entries())

    @given(count=node_counts, total=totals, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_lognormal_total(self, count, total, seed):
        matrix = lognormal_demand(names(count), total=total, seed=seed)
        assert matrix.total() == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(count=node_counts, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_diagonal_always_zero(self, count, seed):
        matrix = gravity_demand(names(count), total=100.0, seed=seed)
        for node in matrix.nodes:
            assert matrix[node, node] == 0.0

    @given(count=st.integers(min_value=3, max_value=8), seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_bimodal_total(self, count, seed):
        matrix = bimodal_demand(names(count), total=50.0, seed=seed)
        assert matrix.total() == pytest.approx(50.0)


class TestSumDecomposition:
    @given(count=node_counts, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_row_sums_equal_total(self, count, seed):
        matrix = gravity_demand(names(count), total=77.0, seed=seed)
        assert sum(matrix.row_sum(n) for n in matrix.nodes) == pytest.approx(77.0)

    @given(count=node_counts, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_column_sums_equal_total(self, count, seed):
        matrix = gravity_demand(names(count), total=77.0, seed=seed)
        assert sum(matrix.column_sum(n) for n in matrix.nodes) == pytest.approx(77.0)


class TestPerturbationInvariants:
    @given(
        count=st.integers(min_value=3, max_value=8),
        zeroed=st.integers(min_value=0, max_value=5),
        seed=seeds,
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_entries_only_removes(self, count, zeroed, seed):
        matrix = gravity_demand(names(count), total=50.0, seed=seed)
        available = len(matrix.nonzero_entries())
        zeroed = min(zeroed, available)
        perturbed = zero_entries(matrix, zeroed, seed=seed)
        assert len(perturbed.nonzero_entries()) == available - zeroed
        for src, dst, rate in perturbed.entries():
            assert rate in (0.0, matrix[src, dst])

    @given(factor=st.floats(min_value=0.0, max_value=10.0), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_scale_entries_preserves_untouched(self, factor, seed):
        matrix = gravity_demand(names(5), total=50.0, seed=seed)
        perturbed = scale_entries(matrix, 2, factor, seed=seed)
        changed = sum(
            1
            for src, dst, rate in perturbed.entries()
            if not math.isclose(rate, matrix[src, dst], rel_tol=1e-12, abs_tol=1e-12)
        )
        assert changed <= 2

    @given(fraction=st.floats(min_value=0.0, max_value=1.0), seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_throttle_scales_linearly(self, fraction, seed):
        matrix = gravity_demand(names(4), total=40.0, seed=seed)
        assert throttle(matrix, fraction).total() == pytest.approx(
            matrix.total() * fraction, abs=1e-9
        )
