"""Property-based tests for full-epoch invariants.

World-level guarantees that must hold whatever the faults are:

- realized traffic never exceeds true demand,
- health metrics stay in their domains,
- Hodor never crashes on any fault combination,
- a fault-free world is always accepted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    DelayedTelemetry,
    InconsistentLinkDrain,
    MalformedTelemetry,
    MissingTelemetry,
    PartialDemandAggregation,
    PartialTopologyStitch,
    ProbeOutage,
    RandomCounterCorruption,
    SpuriousDrain,
    ZeroedDuplicateTelemetry,
)
from repro.net.demand import gravity_demand
from repro.scenarios.world import World
from repro.topologies import ABILENE_NODES, abilene

seeds = st.integers(min_value=0, max_value=2**31 - 1)

NODES = [name for name, _site in ABILENE_NODES]


def random_fault(draw_index: int, seed: int):
    """A deterministic pick from the signal-fault zoo."""
    node = NODES[seed % len(NODES)]
    peer_options = {
        "atla": "hstn", "atlam": "atla", "chin": "ipls", "dnvr": "kscy",
        "hstn": "kscy", "ipls": "kscy", "kscy": "dnvr", "losa": "snva",
        "nycm": "wash", "snva": "sttl", "sttl": "dnvr", "wash": "atla",
    }
    peer = peer_options[node]
    zoo = [
        ZeroedDuplicateTelemetry(interfaces=[(node, peer)]),
        MalformedTelemetry(interfaces=[(node, peer)]),
        DelayedTelemetry(interfaces=[(node, peer)], delay_s=400.0),
        MissingTelemetry(interfaces=[(node, peer)]),
        SpuriousDrain([node]),
        InconsistentLinkDrain([(node, peer)]),
        ProbeOutage([node]),
        RandomCounterCorruption(2, mode="scale", factor=4.0),
    ]
    return zoo[draw_index % len(zoo)]


def build_world(seed: int, fault_picks=(), demand_bug=False, topo_bug=False) -> World:
    topo = abilene()
    demand = gravity_demand(
        topo.node_names(), total=40.0, seed=seed, weights={"atlam": 0.15}
    )
    return World(
        topo,
        demand,
        signal_faults=[random_fault(i, seed + i) for i in fault_picks],
        demand_bugs=[PartialDemandAggregation(drop_fraction=0.3, seed=seed)]
        if demand_bug
        else [],
        topo_bugs=[PartialTopologyStitch({NODES[seed % len(NODES)]})] if topo_bug else [],
        seed=seed,
    )


class TestEpochInvariants:
    @given(
        seed=seeds,
        picks=st.lists(st.integers(min_value=0, max_value=7), max_size=4),
        demand_bug=st.booleans(),
        topo_bug=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_crashes_and_metrics_in_domain(self, seed, picks, demand_bug, topo_bug):
        world = build_world(seed, picks, demand_bug, topo_bug)
        outcome = world.run_epoch()
        assert 0.0 <= outcome.health.loss_rate <= 1.0
        assert 0.0 <= outcome.health.delivered_fraction <= 1.0 + 1e-9
        assert outcome.health.mlu >= 0.0
        assert outcome.detected in (True, False)

    @given(
        seed=seeds,
        picks=st.lists(st.integers(min_value=0, max_value=7), max_size=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_realized_never_exceeds_true_demand(self, seed, picks):
        world = build_world(seed, picks)
        outcome = world.run_epoch()
        assert outcome.realized.total_rate() <= world.actual_demand.total() * (1 + 1e-9)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_clean_world_always_accepted(self, seed):
        outcome = build_world(seed).run_epoch()
        assert not outcome.detected
        assert outcome.report.all_valid

    @given(seed=seeds, picks=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_injections_recorded_for_applied_faults(self, seed, picks):
        world = build_world(seed, picks)
        outcome = world.run_epoch()
        # every applied fault either corrupted something (records) or
        # found no target; reports must stay internally consistent
        for record in outcome.injections:
            assert record.fault
            assert record.node
