"""Property-based tests for Hodor's hardening invariants.

Core soundness properties:

- **No false alarms**: hardening a clean (jitter-free) snapshot flags
  nothing and reproduces ground truth exactly.
- **Repair soundness**: whenever hardening claims REPAIRED, the value
  matches ground truth (an isolated corruption never produces a wrong
  repair -- it is either fixed correctly or left unknown).
- **Detection soundness**: a corruption beyond tau_h on one side of a
  link never survives as a CORROBORATED value.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HodorConfig
from repro.core.pipeline import Hodor
from repro.core.signals import Confidence
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies.synthetic import waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def clean_world(seed: int, size: int = 8):
    topo = waxman_topology(size, seed=seed, capacity=1000.0)
    demand = gravity_demand(topo.node_names(), total=80.0, seed=seed)
    truth = NetworkSimulator(topo, demand).run()
    snapshot = TelemetryCollector(Jitter(0.0)).collect(truth)
    return topo, truth, snapshot


class TestNoFalseAlarms:
    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_clean_snapshot_reproduces_truth(self, seed):
        topo, truth, snapshot = clean_world(seed)
        hardened = Hodor(topo).harden(snapshot)
        assert hardened.unknown_edges() == []
        for edge, value in hardened.edge_flows.items():
            assert value.confidence == Confidence.CORROBORATED
            assert value.value == pytest.approx(truth.edge_flows[edge], abs=1e-9)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_jitter_within_tau_never_flags(self, seed):
        topo = waxman_topology(8, seed=seed, capacity=1000.0)
        demand = gravity_demand(topo.node_names(), total=80.0, seed=seed)
        truth = NetworkSimulator(topo, demand).run()
        # worst-case pairwise disagreement of 1% jitter is ~2% = tau_h;
        # use 0.9% to stay strictly inside
        snapshot = TelemetryCollector(Jitter(0.009, seed=seed)).collect(truth)
        hardened = Hodor(topo).harden(snapshot)
        assert hardened.unknown_edges() == []


class TestRepairSoundness:
    @given(seed=seeds, factor=st.floats(min_value=1.5, max_value=50.0))
    @settings(max_examples=25, deadline=None)
    def test_single_corruption_repaired_or_unknown_never_wrong(self, seed, factor):
        topo, truth, snapshot = clean_world(seed)
        edges = sorted(truth.edge_flows)
        target = edges[seed % len(edges)]
        reading = snapshot.counters[target]
        base = reading.tx_rate
        if base == 0:
            return  # zero-rate edges scale to zero: no corruption
        reading.tx_rate = base * factor

        hardened = Hodor(topo).harden(snapshot)
        value = hardened.edge_flows[target]
        assert value.confidence != Confidence.CORROBORATED
        if value.known:
            assert value.value == pytest.approx(truth.edge_flows[target], rel=1e-6, abs=1e-9)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_repaired_values_never_negative(self, seed):
        topo, _truth, snapshot = clean_world(seed)
        edges = sorted(snapshot.counters)
        target = edges[seed % len(edges)]
        snapshot.counters[target].tx_rate = 0.0
        hardened = Hodor(topo).harden(snapshot)
        for value in hardened.edge_flows.values():
            if value.known:
                assert value.value >= 0.0


class TestDetectionSoundness:
    @given(seed=seeds, gap=st.floats(min_value=0.05, max_value=5.0))
    @settings(max_examples=25, deadline=None)
    def test_gap_beyond_tau_always_flagged(self, seed, gap):
        topo, truth, snapshot = clean_world(seed)
        flows = [(e, r) for e, r in truth.edge_flows.items() if r > 1.0]
        if not flows:
            return
        target, rate = flows[seed % len(flows)]
        snapshot.counters[target].tx_rate = rate * (1.0 + gap)
        hardened = Hodor(topo, HodorConfig(enable_repair=False)).harden(snapshot)
        assert not hardened.edge_flows[target].known

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_findings_well_formed(self, seed):
        topo, _truth, snapshot = clean_world(seed)
        target = sorted(snapshot.counters)[0]
        snapshot.counters[target].rx_rate = "garbage"
        hardened = Hodor(topo).harden(snapshot)
        for finding in hardened.findings:
            assert finding.code
            assert finding.subject
            assert finding.severity is not None
