"""Metamorphic properties of the validation pipeline.

Transformations that must not change verdicts:

- **Unit invariance**: multiplying every rate in the world (demand,
  capacities) by a constant rescales hardened values but preserves
  every relative check -- Hodor must not care whether rates are in
  Gbps or Mbps.
- **Label invariance**: consistently renaming routers changes nothing
  semantic; detection verdicts must be identical under relabeling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Hodor
from repro.net.demand import DemandMatrix, gravity_demand, zero_entries
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Link, Node, Topology
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies.synthetic import waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build(seed: int, scale: float = 1.0, rename=None):
    base = waxman_topology(8, seed=seed, capacity=500.0)
    rename = rename or (lambda name: name)
    topo = Topology(base.name)
    for node in base.nodes():
        topo.add_node(Node(rename(node.name), site=node.site, vendor=node.vendor))
    for link in base.links():
        topo.add_link(Link(rename(link.a), rename(link.b), capacity=link.capacity * scale))

    raw = gravity_demand(base.node_names(), total=60.0, seed=seed)
    demand = DemandMatrix([rename(n) for n in raw.nodes], raw.to_array() * scale)
    truth = NetworkSimulator(topo, demand).run()
    snapshot = TelemetryCollector(Jitter(0.005, seed=seed + 5)).collect(truth)
    return topo, demand, snapshot


class TestUnitInvariance:
    @given(seed=seeds, scale=st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=15, deadline=None)
    def test_clean_verdict_scale_invariant(self, seed, scale):
        topo1, demand1, snap1 = build(seed, scale=1.0)
        topo2, demand2, snap2 = build(seed, scale=scale)
        report1 = Hodor(topo1).validate_demand(snap1, demand1)
        report2 = Hodor(topo2).validate_demand(snap2, demand2)
        assert report1.all_valid == report2.all_valid

    @given(seed=seeds, scale=st.floats(min_value=1e-2, max_value=1e2))
    @settings(max_examples=15, deadline=None)
    def test_perturbation_detection_scale_invariant(self, seed, scale):
        topo1, demand1, snap1 = build(seed, scale=1.0)
        topo2, demand2, snap2 = build(seed, scale=scale)
        bad1 = zero_entries(demand1, 3, seed=seed)
        bad2 = zero_entries(demand2, 3, seed=seed)  # same entries (same RNG)
        verdict1 = Hodor(topo1).validate_demand(snap1, bad1).all_valid
        verdict2 = Hodor(topo2).validate_demand(snap2, bad2).all_valid
        assert verdict1 == verdict2

    @given(seed=seeds, scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=10, deadline=None)
    def test_hardened_values_scale_linearly(self, seed, scale):
        topo1, _d1, snap1 = build(seed, scale=1.0)
        topo2, _d2, snap2 = build(seed, scale=scale)
        hardened1 = Hodor(topo1).harden(snap1)
        hardened2 = Hodor(topo2).harden(snap2)
        for edge, value1 in hardened1.edge_flows.items():
            value2 = hardened2.edge_flows[edge]
            if value1.known and value1.value > 1e-6:
                # jitter draws differ between runs; linearity holds
                # within the 1% jitter envelope
                assert value2.value == pytest.approx(value1.value * scale, rel=0.02)


class TestLabelInvariance:
    @staticmethod
    def _renamer():
        return lambda name: f"pop-{name}-x"

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_clean_verdict_rename_invariant(self, seed):
        topo1, demand1, snap1 = build(seed)
        topo2, demand2, snap2 = build(seed, rename=self._renamer())
        assert (
            Hodor(topo1).validate_demand(snap1, demand1).all_valid
            == Hodor(topo2).validate_demand(snap2, demand2).all_valid
        )

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_detection_rename_invariant(self, seed):
        topo1, demand1, snap1 = build(seed)
        topo2, demand2, snap2 = build(seed, rename=self._renamer())
        bad1 = demand1.scaled(0.6)
        bad2 = demand2.scaled(0.6)
        report1 = Hodor(topo1).validate_demand(snap1, bad1)
        report2 = Hodor(topo2).validate_demand(snap2, bad2)
        assert report1.all_valid == report2.all_valid
        assert (
            report1.verdicts["demand"].num_violations
            == report2.verdicts["demand"].num_violations
        )
