"""Property-based tests for the simulator's conservation guarantees.

These are the invariants the whole paper rests on: flow conservation
holds exactly on ground truth, drops are non-negative, delivery never
exceeds demand.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.topologies.synthetic import waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)
sizes = st.integers(min_value=2, max_value=12)
totals = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False, allow_infinity=False)


def simulate(size, seed, total, strategy="ecmp"):
    topo = waxman_topology(size, seed=seed, capacity=100.0)
    demand = gravity_demand(topo.node_names(), total=total, seed=seed)
    return topo, demand, NetworkSimulator(topo, demand, strategy=strategy).run()


class TestConservation:
    @given(size=sizes, seed=seeds, total=totals)
    @settings(max_examples=40, deadline=None)
    def test_flow_conservation_exact(self, size, seed, total):
        topo, _demand, truth = simulate(size, seed, total)
        scale = max(1.0, total)
        for node in topo.node_names():
            assert abs(truth.conservation_residual(node)) <= 1e-7 * scale

    @given(size=sizes, seed=seeds, total=totals)
    @settings(max_examples=40, deadline=None)
    def test_drops_nonnegative(self, size, seed, total):
        _topo, _demand, truth = simulate(size, seed, total)
        assert all(dropped >= -1e-9 for dropped in truth.dropped.values())

    @given(size=sizes, seed=seeds, total=totals)
    @settings(max_examples=40, deadline=None)
    def test_edge_flows_within_capacity(self, size, seed, total):
        topo, _demand, truth = simulate(size, seed, total)
        for (u, v), rate in truth.edge_flows.items():
            capacity = topo.link_between(u, v).capacity
            assert rate <= capacity * (1 + 1e-9)

    @given(size=sizes, seed=seeds, total=totals)
    @settings(max_examples=40, deadline=None)
    def test_delivery_bounded_by_demand(self, size, seed, total):
        _topo, demand, truth = simulate(size, seed, total)
        for (src, dst), delivered in truth.delivered.items():
            assert delivered <= demand[src, dst] * (1 + 1e-9)

    @given(size=sizes, seed=seeds, total=totals)
    @settings(max_examples=40, deadline=None)
    def test_global_balance(self, size, seed, total):
        _topo, _demand, truth = simulate(size, seed, total)
        admitted = sum(truth.ext_in.values())
        delivered = sum(truth.ext_out.values())
        dropped = truth.total_dropped()
        assert admitted == pytest.approx(delivered + dropped, rel=1e-6, abs=1e-6)

    @given(size=sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_loss_rate_in_unit_interval(self, size, seed):
        _topo, _demand, truth = simulate(size, seed, 3000.0)
        assert 0.0 <= truth.loss_rate() <= 1.0


class TestStrategyAgreement:
    @given(size=st.integers(min_value=3, max_value=10), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_total_admitted_independent_of_strategy(self, size, seed):
        topo = waxman_topology(size, seed=seed, capacity=1e9)
        demand = gravity_demand(topo.node_names(), total=50.0, seed=seed)
        ecmp = NetworkSimulator(topo, demand, strategy="ecmp").run()
        single = NetworkSimulator(topo, demand, strategy="single").run()
        assert sum(ecmp.ext_in.values()) == pytest.approx(sum(single.ext_in.values()))
        # with effectively infinite capacity, everything is delivered
        assert ecmp.total_delivered() == pytest.approx(single.total_delivered())
