"""Property-based tests for end-to-end validation invariants.

The acceptance/detection contract, fuzzed:

- A clean epoch over any connected topology and unsaturated demand is
  accepted (no false positives).
- Removing a demand-visible fraction of the matrix is detected (no
  false negatives for the paper's bug class at meaningful sizes).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Hodor
from repro.net.demand import gravity_demand, zero_entries
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.topologies.synthetic import waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build(seed: int, size: int = 8, total: float = 60.0):
    topo = waxman_topology(size, seed=seed, capacity=1000.0)
    demand = gravity_demand(topo.node_names(), total=total, seed=seed)
    truth = NetworkSimulator(topo, demand).run()
    snapshot = TelemetryCollector(Jitter(0.004, seed=seed + 1)).collect(truth)
    return topo, demand, snapshot


class TestAcceptanceContract:
    @given(seed=seeds, size=st.integers(min_value=3, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_clean_epoch_accepted(self, seed, size):
        topo, demand, snapshot = build(seed, size)
        report = Hodor(topo).validate_demand(snapshot, demand)
        assert report.all_valid

    @given(seed=seeds, fraction=st.floats(min_value=0.2, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_global_underreporting_detected(self, seed, fraction):
        topo, demand, snapshot = build(seed)
        report = Hodor(topo).validate_demand(snapshot, demand.scaled(fraction))
        assert not report.all_valid

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_large_single_entry_loss_detected(self, seed):
        topo, demand, snapshot = build(seed)
        # remove the single largest entry: guaranteed demand-visible
        src, dst, _rate = max(demand.nonzero_entries(), key=lambda e: e[2])
        perturbed = demand.copy()
        perturbed[src, dst] = 0.0
        report = Hodor(topo).validate_demand(snapshot, perturbed)
        assert not report.all_valid

    @given(seed=seeds, zeroed=st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_detection_never_crashes_and_is_boolean(self, seed, zeroed):
        topo, demand, snapshot = build(seed)
        available = len(demand.nonzero_entries())
        assume(available >= zeroed)
        perturbed = zero_entries(demand, zeroed, seed=seed)
        report = Hodor(topo).validate_demand(snapshot, perturbed)
        assert report.verdicts["demand"].valid in (True, False)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_verdict_counts_consistent(self, seed):
        topo, demand, snapshot = build(seed)
        report = Hodor(topo).validate_demand(snapshot, demand)
        verdict = report.verdicts["demand"]
        check = report.checks["demand"]
        assert verdict.num_violations == len(check.violations)
        assert verdict.num_evaluated == check.num_evaluated
        assert verdict.num_evaluated + check.num_skipped == len(check.results)
