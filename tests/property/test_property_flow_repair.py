"""Property-based tests for the flow-conservation solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flow_repair import edge_var, solve_flow_conservation
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.topologies.synthetic import waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def true_system(seed: int, size: int = 8):
    """A consistent conservation system from a real simulation."""
    topo = waxman_topology(size, seed=seed, capacity=1e9)
    demand = gravity_demand(topo.node_names(), total=90.0, seed=seed)
    truth = NetworkSimulator(topo, demand).run()
    nodes = topo.node_names()
    edges = list(topo.directed_edges())
    edge_values = {e: truth.edge_flows[e] for e in edges}
    ext_in = dict(truth.ext_in)
    ext_out = dict(truth.ext_out)
    drops = dict(truth.dropped)
    return nodes, edges, edge_values, ext_in, ext_out, drops, truth


class TestSolverSoundness:
    @given(seed=seeds, how_many=st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_recovered_values_match_truth(self, seed, how_many):
        nodes, edges, edge_values, ext_in, ext_out, drops, truth = true_system(seed)
        import random

        rng = random.Random(seed)
        hidden = rng.sample(edges, min(how_many, len(edges)))
        for edge in hidden:
            edge_values[edge] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        for edge in hidden:
            value = result.values[edge_var(*edge)]
            if value is not None:
                assert value == pytest.approx(truth.edge_flows[edge], rel=1e-6, abs=1e-6)

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_consistent_system_low_residual(self, seed):
        nodes, edges, edge_values, ext_in, ext_out, drops, _truth = true_system(seed)
        edge_values[edges[0]] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.residual < 1e-6

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_solved_subset_of_unknowns(self, seed):
        nodes, edges, edge_values, ext_in, ext_out, drops, _truth = true_system(seed)
        edge_values[edges[0]] = None
        ext_in[nodes[0]] = None
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.num_unknowns == 2
        assert set(result.solved()) <= set(result.values)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_rank_bounded_by_nodes(self, seed):
        # The paper: up to |V| - 1 unknowns are recoverable (rank of M).
        nodes, edges, edge_values, ext_in, ext_out, drops, _truth = true_system(seed)
        for edge in edges:
            edge_values[edge] = None  # everything unknown
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.rank <= len(nodes)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_no_unknowns_empty_result(self, seed):
        nodes, edges, edge_values, ext_in, ext_out, drops, _truth = true_system(seed)
        result = solve_flow_conservation(nodes, edges, edge_values, ext_in, ext_out, drops)
        assert result.values == {}
        assert result.num_unknowns == 0
        assert result.residual < 1e-6
