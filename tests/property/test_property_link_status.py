"""Exhaustive + property tests for the link-status truth table.

The combination logic is a pure function over a small input space, so
we enumerate it completely and assert global safety properties instead
of sampling.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HodorConfig, RiskProfile
from repro.core.link_status import LinkEvidence, combine_link_evidence
from repro.core.signals import LinkVerdict

STATUS_VALUES = (True, False, None)
PROBE_VALUES = (True, False, None)
RATE_SETS = ((5.0, 5.0, 5.0, 5.0), (0.0, 0.0, 0.0, 0.0), ())


def all_evidence():
    for status_a, status_b, rates, probe_ab, probe_ba in itertools.product(
        STATUS_VALUES, STATUS_VALUES, RATE_SETS, PROBE_VALUES, PROBE_VALUES
    ):
        yield LinkEvidence(
            status_a=status_a,
            status_b=status_b,
            rates=rates,
            probe_ab=probe_ab,
            probe_ba=probe_ba,
        )


ALL_CASES = list(all_evidence())


class TestExhaustiveSafety:
    @pytest.mark.parametrize("profile", RiskProfile.ALL)
    def test_total_function_no_crashes(self, profile):
        config = HodorConfig(risk_profile=profile)
        for evidence in ALL_CASES:
            status = combine_link_evidence(evidence, config)
            assert status.verdict in LinkVerdict
            assert status.forwarding in (True, False, None)

    def test_active_counters_never_yield_down(self):
        """Traffic demonstrably flowing means the link is not down."""
        for evidence in ALL_CASES:
            if evidence.counters_active(1e-3):
                for profile in RiskProfile.ALL:
                    status = combine_link_evidence(
                        evidence, HodorConfig(risk_profile=profile)
                    )
                    assert status.verdict != LinkVerdict.DOWN, vars(evidence)

    def test_successful_probe_never_yields_down(self):
        for evidence in ALL_CASES:
            if evidence.probe_consensus() == "ok":
                status = combine_link_evidence(evidence)
                assert status.verdict != LinkVerdict.DOWN

    def test_agreeing_healthy_story_is_up(self):
        """No profile may reject a fully consistent healthy link."""
        evidence = LinkEvidence(True, True, (5.0,) * 4, True, True)
        for profile in RiskProfile.ALL:
            status = combine_link_evidence(evidence, HodorConfig(risk_profile=profile))
            assert status.verdict == LinkVerdict.UP
            assert status.usable

    def test_agreeing_dead_story_is_down(self):
        evidence = LinkEvidence(False, False, (0.0,) * 4, False, False)
        for profile in RiskProfile.ALL:
            status = combine_link_evidence(evidence, HodorConfig(risk_profile=profile))
            assert status.verdict == LinkVerdict.DOWN

    def test_conservative_never_up_on_conflict(self):
        """The conservative profile never silently trusts a conflicted
        status pair."""
        config = HodorConfig(risk_profile=RiskProfile.CONSERVATIVE)
        for evidence in ALL_CASES:
            if evidence.status_consensus() == "conflict":
                status = combine_link_evidence(evidence, config)
                assert status.verdict in (LinkVerdict.SUSPECT, LinkVerdict.DOWN)

    def test_permissive_at_least_as_optimistic_as_balanced(self):
        """Ordering: permissive never declares DOWN where balanced says
        UP, and never SUSPECT where balanced says UP."""
        rank = {LinkVerdict.DOWN: 0, LinkVerdict.SUSPECT: 1, LinkVerdict.UP: 2}
        for evidence in ALL_CASES:
            balanced = combine_link_evidence(
                evidence, HodorConfig(risk_profile=RiskProfile.BALANCED)
            )
            permissive = combine_link_evidence(
                evidence, HodorConfig(risk_profile=RiskProfile.PERMISSIVE)
            )
            assert rank[permissive.verdict] >= rank[balanced.verdict], vars(evidence)

    def test_forwarding_true_only_with_positive_evidence(self):
        for evidence in ALL_CASES:
            status = combine_link_evidence(evidence)
            if status.forwarding is True:
                assert evidence.counters_active(1e-3) or evidence.probe_consensus() == "ok"


class TestFuzzedRates:
    @given(
        rates=st.lists(
            st.one_of(st.none(), st.floats(min_value=0, max_value=1e9)),
            min_size=0,
            max_size=4,
        ),
        status_a=st.sampled_from(STATUS_VALUES),
        status_b=st.sampled_from(STATUS_VALUES),
    )
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_rates_never_crash(self, rates, status_a, status_b):
        evidence = LinkEvidence(status_a, status_b, tuple(rates))
        status = combine_link_evidence(evidence)
        assert status.verdict in LinkVerdict
