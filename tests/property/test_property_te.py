"""Property-based tests for the TE allocator and traffic realization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.te import greedy_te
from repro.net.demand import gravity_demand
from repro.net.flows import edge_offered_loads
from repro.net.realize import realize_traffic
from repro.topologies.synthetic import waxman_topology

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def setup(seed: int, total: float, size: int = 8, capacity: float = 100.0):
    topo = waxman_topology(size, seed=seed, capacity=capacity)
    demand = gravity_demand(topo.node_names(), total=total, seed=seed)
    return topo, demand


class TestGreedyTeInvariants:
    @given(seed=seeds, total=st.floats(min_value=0.0, max_value=2000.0))
    @settings(max_examples=30, deadline=None)
    def test_everything_placed_or_unrouted(self, seed, total):
        topo, demand = setup(seed, total)
        assignment = greedy_te(topo, demand)
        placed = assignment.total_rate() + assignment.total_unrouted()
        # abs floor matches the allocator's minimum-placement noise gate
        # (sub-nano rates are legitimately dropped).
        assert placed == pytest.approx(demand.total(), rel=1e-9, abs=1e-6)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_connected_topology_routes_everything(self, seed):
        topo, demand = setup(seed, total=100.0)
        assignment = greedy_te(topo, demand)
        assert assignment.unrouted == {}

    @given(seed=seeds, total=st.floats(min_value=1.0, max_value=300.0))
    @settings(max_examples=25, deadline=None)
    def test_within_headroom_when_demand_fits(self, seed, total):
        # With enormous capacity, nothing should ever exceed the target.
        topo, demand = setup(seed, total, capacity=1e6)
        assignment = greedy_te(topo, demand, target_utilization=0.9)
        for (u, v), load in edge_offered_loads(assignment).items():
            capacity = topo.link_between(u, v).capacity
            assert load <= capacity * 0.9 + 1e-6

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_rates_nonnegative(self, seed):
        topo, demand = setup(seed, total=500.0, capacity=10.0)
        assignment = greedy_te(topo, demand)
        for _src, _dst, rule in assignment.iter_rules():
            assert rule.rate >= 0

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_paths_exist_in_topology(self, seed):
        topo, demand = setup(seed, total=200.0)
        assignment = greedy_te(topo, demand)
        for _src, _dst, rule in assignment.iter_rules():
            for u, v in rule.path.edges():
                assert topo.link_between(u, v) is not None


class TestRealizeInvariants:
    @given(seed=seeds, believe_factor=st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=25, deadline=None)
    def test_realized_total_matches_true_demand(self, seed, believe_factor):
        topo, demand = setup(seed, total=100.0)
        believed = demand.scaled(believe_factor)
        programmed = greedy_te(topo, believed)
        realized = realize_traffic(programmed, demand, topo)
        assert realized.total_rate() + realized.total_unrouted() == pytest.approx(
            demand.total(), rel=1e-9
        )

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_realization_preserves_programmed_paths(self, seed):
        topo, demand = setup(seed, total=100.0)
        programmed = greedy_te(topo, demand.scaled(0.5))
        realized = realize_traffic(programmed, demand, topo)
        for pair, rules in realized.rules.items():
            if pair in programmed.rules and programmed.rate_for(*pair) > 0:
                programmed_paths = {r.path.nodes for r in programmed.rules[pair]}
                realized_paths = {r.path.nodes for r in rules}
                assert realized_paths <= programmed_paths
