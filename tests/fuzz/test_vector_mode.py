"""The oracle's fourth differential mode: the vector backend.

PR 7 extends the tri-modal oracle with the array-compiled engine
backend.  These tests pin that (a) the mode exists and runs clean
timelines cleanly, and (b) it is load-bearing -- a bug planted in the
vector path (via the hooks seam) is attributed to the ``vector`` mode,
not masked by the other three.
"""

import dataclasses

from repro.fuzz import CaseGenerator, TriModalOracle


def _flip_first_verdict(_index, report):
    if not report.verdicts:
        return report
    name = sorted(report.verdicts)[0]
    verdicts = dict(report.verdicts)
    verdicts[name] = dataclasses.replace(
        verdicts[name], valid=not verdicts[name].valid
    )
    return dataclasses.replace(report, verdicts=verdicts)


class TestVectorMode:
    def test_vector_is_a_registered_mode(self):
        assert "vector" in TriModalOracle.MODES

    def test_clean_timelines_pass_all_four_modes(self):
        oracle = TriModalOracle()
        for seed in (0, 1, 2):
            result = oracle.run(CaseGenerator().generate(seed))
            assert result.passed, result.detail()

    def test_planted_vector_bug_is_attributed_to_vector_mode(self):
        oracle = TriModalOracle(hooks={"vector": _flip_first_verdict})
        result = oracle.run(CaseGenerator().generate(0))
        assert result.failed
        assert result.kind == "divergence"
        assert {d.mode for d in result.divergences} == {"vector"}
