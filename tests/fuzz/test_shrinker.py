"""Mutation test: a planted mode-divergence bug is found and shrunk.

The PR's acceptance gate: plant a deliberate divergence between the
incremental path and the serial reference (via the oracle's hooks
seam), prove the tri-modal oracle catches it on a deliberately bloated
timeline, and prove the deterministic shrinker minimizes that timeline
to a reproducer of at most 3 epochs and at most 2 faults that still
fails -- and that the minimized reproducer round-trips through the
corpus byte-stably.
"""

import dataclasses

import pytest

from repro.faults.router_faults import (
    MalformedTelemetry,
    ProbeOutage,
    UnitChangeTelemetry,
)
from repro.fuzz import (
    CaseGenerator,
    EpochPlan,
    Reproducer,
    Shrinker,
    TimelineSpec,
    TriModalOracle,
    load_corpus,
    save_reproducer,
)
from repro.net.demand import gravity_demand
from repro.topologies.synthetic import ring_topology


def _flip_first_verdict_when_findings(index, report):
    """The planted bug: whenever hardening produced findings, the
    incremental path flips one verdict.  Divergence therefore needs a
    fault actually present -- benign epochs agree, so the shrinker
    cannot shrink past the faults that matter."""
    if not report.hardened.findings:
        return report
    if not report.verdicts:
        return report
    name = sorted(report.verdicts)[0]
    verdict = report.verdicts[name]
    verdicts = dict(report.verdicts)
    verdicts[name] = dataclasses.replace(verdict, valid=not verdict.valid)
    return dataclasses.replace(report, verdicts=verdicts)


@pytest.fixture(scope="module")
def bloated_spec():
    """Four epochs, several faults, only one of which (the unit-change
    corruption) reliably produces hardening findings every epoch."""
    topology = ring_topology(6)
    demand = gravity_demand(topology.node_names(), total=12.0, seed=5)
    trigger = UnitChangeTelemetry(interfaces=[("r0", "r1")], factor=1000.0)
    benign = ProbeOutage(nodes=["r3"])
    noisy = MalformedTelemetry(interfaces=[("r4", "r5")])
    return TimelineSpec(
        topology=topology,
        demand=demand,
        epochs=(
            EpochPlan(signal_faults=(benign,)),
            EpochPlan(signal_faults=(trigger, benign)),
            EpochPlan(signal_faults=(noisy, trigger)),
            EpochPlan(signal_faults=(benign, noisy)),
        ),
        seed=5,
    )


@pytest.fixture(scope="module")
def hooked_oracle():
    return TriModalOracle(hooks={"incremental": _flip_first_verdict_when_findings})


@pytest.fixture(scope="module")
def shrunk(bloated_spec, hooked_oracle):
    return Shrinker(hooked_oracle).shrink(bloated_spec)


class TestPlantedBugIsFound:
    def test_oracle_flags_the_divergence(self, bloated_spec, hooked_oracle):
        result = hooked_oracle.run(bloated_spec)
        assert result.failed
        assert result.kind == "divergence"
        assert any(d.mode == "incremental" for d in result.divergences)

    def test_clean_oracle_passes_the_same_spec(self, bloated_spec):
        assert TriModalOracle().run(bloated_spec).passed


class TestShrinking:
    def test_minimized_within_acceptance_bounds(self, shrunk):
        assert shrunk.spec.num_epochs <= 3
        assert shrunk.total_faults <= 2

    def test_minimized_still_fails_with_planted_bug(self, shrunk, hooked_oracle):
        assert hooked_oracle.run(shrunk.spec).failed

    def test_minimized_passes_without_planted_bug(self, shrunk):
        assert TriModalOracle().run(shrunk.spec).passed

    def test_shrinking_is_deterministic(self, bloated_spec, hooked_oracle, shrunk):
        again = Shrinker(hooked_oracle).shrink(bloated_spec)
        assert again.spec.canonical_json() == shrunk.spec.canonical_json()

    def test_reductions_bounded_by_checks(self, shrunk):
        assert 0 < shrunk.reductions <= shrunk.checks


class TestCorpusRoundTrip:
    def test_minimized_reproducer_round_trips_byte_stably(self, shrunk, tmp_path):
        reproducer = Reproducer(
            reproducer_id="planted_0",
            spec=shrunk.spec,
            case_seed=5,
            kind="divergence",
            detail="planted incremental flip",
        )
        save_reproducer(reproducer, tmp_path)
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].canonical_json() == reproducer.canonical_json()
        assert loaded[0].kind == "divergence"

    def test_runner_emits_reproducer_for_planted_bug(self, tmp_path):
        """End to end: a campaign against the hooked oracle finds the
        bug in generated cases too and lands a minimized reproducer."""
        from repro.fuzz import FuzzRunner

        oracle = TriModalOracle(
            hooks={"incremental": _flip_first_verdict_when_findings}
        )
        runner = FuzzRunner(
            seed=3,
            budget_s=None,
            max_cases=6,
            generator=CaseGenerator(),
            oracle=oracle,
            corpus_dir=tmp_path,
        )
        report = runner.run()
        assert report.failures > 0
        corpus = load_corpus(tmp_path)
        assert corpus
        for entry in corpus:
            assert oracle.run(entry.spec).failed
