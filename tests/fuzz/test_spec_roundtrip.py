"""Every catalog scenario round-trips through the fuzzer's timeline
serialization byte-stably (satellite of the fuzzer PR).

``timeline_from_world`` must be able to describe any world the catalog
can build, and ``to_payload``/``from_payload`` must be a lossless,
canonical pair: serializing the rebuilt timeline reproduces the exact
bytes, and the rebuilt world behaves identically (same validation
report) to the original.
"""

import pytest

from repro.engine import compare_reports
from repro.fuzz import TimelineSpec, timeline_from_world
from repro.scenarios.catalog import all_scenarios

SCENARIOS = all_scenarios()
SEED = 1


@pytest.mark.parametrize("scenario", SCENARIOS, ids=[s.scenario_id for s in SCENARIOS])
class TestCatalogRoundTrip:
    def test_payload_bytes_stable(self, scenario):
        spec = timeline_from_world(scenario.build(seed=SEED), epochs=3)
        encoded = spec.canonical_json()
        rebuilt = TimelineSpec.from_payload(spec.to_payload())
        assert rebuilt.canonical_json() == encoded

    def test_rebuilt_world_behaves_identically(self, scenario):
        original = scenario.build(seed=SEED)
        spec = TimelineSpec.from_payload(
            timeline_from_world(original, epochs=1).to_payload()
        )
        rebuilt = spec.world_for_epoch(0)
        want = original.run_epoch(timestamp=0.0)
        got = rebuilt.run_epoch(timestamp=0.0)
        assert compare_reports(want.report, got.report) == []
        assert got.detected == want.detected
        assert got.damaged == want.damaged


class TestTimelineFromWorld:
    def test_world_faults_become_base_faults(self):
        world = SCENARIOS[0].build(seed=SEED)
        spec = timeline_from_world(world, epochs=3)
        assert spec.num_epochs == 3
        assert len(spec.base_faults) == len(world.signal_faults)
        assert all(not plan.signal_faults for plan in spec.epochs)

    def test_rejects_empty_timeline(self):
        world = SCENARIOS[0].build(seed=SEED)
        with pytest.raises(ValueError):
            timeline_from_world(world, epochs=0)
