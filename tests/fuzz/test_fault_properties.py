"""Property tests for fault composition (satellite of the fuzzer PR).

Two invariants the fuzzer's whole design leans on:

- injection is deterministic: the same fault list under the same seed
  produces the identical corrupted snapshot and records, so a case
  seed pins a case exactly;
- injection records are truthful: every record names a signal that
  existed in the pre-injection snapshot, so precision/recall scoring
  against injection ground truth can trust them.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.base import FaultInjector, SignalFault
from repro.faults.intent_faults import InconsistentLinkDrain, SpuriousDrain
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    DelayedTelemetry,
    MalformedTelemetry,
    MissingTelemetry,
    ProbeOutage,
    RandomCounterCorruption,
    UnitChangeTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import ProbeEngine
from repro.topologies.abilene import abilene

seeds = st.integers(min_value=0, max_value=2**31 - 1)

_TOPO = abilene()
_EDGES = sorted(_TOPO.directed_edges())
_NODES = sorted(_TOPO.node_names())

_TRUTH = NetworkSimulator(
    _TOPO, gravity_demand(_TOPO.node_names(), total=40.0, seed=5)
).run()
_SNAPSHOT = TelemetryCollector(
    Jitter(0.01, seed=5), probe_engine=ProbeEngine(seed=5)
).collect(_TRUTH)


def _fault_strategy() -> st.SearchStrategy[SignalFault]:
    edge_lists = st.lists(
        st.sampled_from(_EDGES), min_size=1, max_size=3, unique=True
    )
    node_lists = st.lists(
        st.sampled_from(_NODES), min_size=1, max_size=3, unique=True
    )
    return st.one_of(
        edge_lists.map(lambda e: ZeroedDuplicateTelemetry(interfaces=e)),
        edge_lists.map(lambda e: MalformedTelemetry(interfaces=e)),
        edge_lists.map(
            lambda e: UnitChangeTelemetry(interfaces=e, factor=1000.0)
        ),
        edge_lists.map(
            lambda e: DelayedTelemetry(interfaces=e, delay_s=300.0, drift=0.5)
        ),
        edge_lists.map(lambda e: MissingTelemetry(interfaces=e)),
        node_lists.map(lambda n: MissingTelemetry(nodes=n)),
        st.tuples(edge_lists, st.booleans()).map(
            lambda args: WrongLinkStatus(interfaces=args[0], report_up=args[1])
        ),
        node_lists.map(SpuriousDrain),
        edge_lists.map(InconsistentLinkDrain),
        node_lists.map(ProbeOutage),
        node_lists.map(lambda n: CorrelatedCounterFault(nodes=n, factor=0.5)),
        st.tuples(
            st.integers(min_value=1, max_value=3),
            st.sampled_from(("zero", "scale", "missing")),
            st.sampled_from(("rx", "tx", "both")),
        ).map(
            lambda args: RandomCounterCorruption(
                count=args[0], mode=args[1], side=args[2], factor=2.0
            )
        ),
    )


fault_lists = st.lists(_fault_strategy(), min_size=0, max_size=4)


class TestInjectionDeterminism:
    @given(faults=fault_lists, seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_same_faults_same_seed_identical(self, faults, seed):
        """Injecting twice is bit-for-bit identical: snapshot dataclass
        equality plus identical record lists."""
        first_snap, first_records = FaultInjector(faults, seed=seed).inject(_SNAPSHOT)
        second_snap, second_records = FaultInjector(faults, seed=seed).inject(_SNAPSHOT)
        assert first_snap == second_snap
        assert first_records == second_records

    @given(faults=fault_lists, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_input_snapshot_never_mutated(self, faults, seed):
        pristine = _SNAPSHOT.copy()
        FaultInjector(faults, seed=seed).inject(_SNAPSHOT)
        assert _SNAPSHOT == pristine


class TestInjectionRecordsTruthful:
    @given(faults=fault_lists, seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_records_name_existing_signals(self, faults, seed):
        """Every record's (signal, node[, peer]) resolves to a signal
        present in the pre-injection snapshot."""
        _, records = FaultInjector(faults, seed=seed).inject(_SNAPSHOT)
        containers = {
            "rx": _SNAPSHOT.counters,
            "tx": _SNAPSHOT.counters,
            "reading": _SNAPSHOT.counters,
            "oper_status": _SNAPSHOT.link_status,
            "drain": _SNAPSHOT.drains,
            "link_drain": _SNAPSHOT.link_drains,
            "drops": _SNAPSHOT.drops,
            "probe": _SNAPSHOT.probes,
        }
        nodes = set(_SNAPSHOT.nodes())
        for record in records:
            assert record.signal in containers, record
            container = containers[record.signal]
            if record.peer is not None:
                assert record.interface_key in container, record
            else:
                assert record.node in nodes, record

    @given(faults=fault_lists, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_records_attribute_the_right_fault(self, faults, seed):
        _, records = FaultInjector(faults, seed=seed).inject(_SNAPSHOT)
        applied_names = {type(fault).__name__ for fault in faults}
        for record in records:
            assert record.fault in applied_names
