"""Tier-1 replay of the fuzzer's regression corpus.

Every reproducer under ``tests/fuzz/regressions/`` runs through the
tri-modal oracle and must pass: a ``divergence``/``crash`` entry is a
bug that was fixed and must stay fixed, a ``pinned`` entry is coverage
that must stay stable.  The corpus files themselves must stay
byte-canonical so committed reproducers never drift.

New entries land here automatically: ``python -m repro fuzz`` writes
minimized reproducers into this directory when it finds a failure.
"""

from pathlib import Path

import pytest

from repro.fuzz import TriModalOracle, canonical_json, load_corpus, load_reproducer
from repro.fuzz.corpus import reproducer_scenario

CORPUS_DIR = Path(__file__).parent / "regressions"
CORPUS = load_corpus(CORPUS_DIR)
IDS = [entry.reproducer_id for entry in CORPUS]


def test_corpus_is_not_empty():
    """The shipped corpus carries the pinned coverage cases."""
    assert len(CORPUS) >= 3


@pytest.mark.parametrize("entry", CORPUS, ids=IDS)
class TestCorpusReplay:
    def test_oracle_passes(self, entry):
        result = TriModalOracle().run(entry.spec)
        assert result.passed, (
            f"{entry.reproducer_id} ({entry.kind}) regressed: {result.detail()}"
        )

    def test_file_is_byte_canonical(self, entry):
        path = CORPUS_DIR / f"repro_{entry.reproducer_id}.json"
        on_disk = path.read_text(encoding="utf-8")
        assert on_disk == canonical_json(entry.to_payload()) + "\n"

    def test_regeneration_from_case_seed_matches(self, entry):
        """A pinned (unshrunk) entry must equal what its case seed
        regenerates -- the seed really is the case."""
        if entry.kind != "pinned":
            pytest.skip("shrunk reproducers no longer match their seed")
        from repro.fuzz import CaseGenerator

        regenerated = CaseGenerator().generate(entry.case_seed)
        assert regenerated.canonical_json() == entry.spec.canonical_json()

    def test_promotes_to_catalog_scenario(self, entry):
        scenario = reproducer_scenario(entry)
        assert scenario.scenario_id == f"FZ-{entry.reproducer_id}"
        world = scenario.build(seed=0)
        outcome = world.run_epoch()
        assert outcome.report is not None


def test_load_reproducer_rejects_garbage(tmp_path):
    from repro.fuzz import SpecError

    bad = tmp_path / "repro_bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(SpecError):
        load_reproducer(bad)


def test_load_corpus_on_missing_directory_is_empty(tmp_path):
    assert load_corpus(tmp_path / "nope") == []
