"""EpochAssembler under fuzzer-generated pathological feeds.

The streamed path's safety property: whatever the delivery pathology
(all routers late, 100% duplicated streams, a router silent forever),
a sealed epoch never *fabricates* data.  A counter half whose update
was dropped stays ``None`` (an unknown collection refuses to read as
zero), a missing router contributes no keys at all, and duplicates
deduplicate to the exact unperturbed snapshot.
"""

import pytest

from repro.engine import ValidationEngine
from repro.fuzz import CaseGenerator
from repro.stream import EpochAssembler, Perturbations, StreamPipeline, make_feeds

SEED = 11


def _timeline(case_seed: int):
    """Epoch snapshots + inputs for one fuzzer-generated world."""
    spec = CaseGenerator().generate(case_seed)
    epochs = []
    inputs_by_ts = {}
    for index in range(spec.num_epochs):
        outcome = spec.world_for_epoch(index).run_epoch(
            timestamp=spec.timestamp_for(index)
        )
        epochs.append((outcome.snapshot.timestamp, outcome.snapshot))
        inputs_by_ts[outcome.snapshot.timestamp] = outcome.inputs
    return spec, epochs, inputs_by_ts


def _stream(spec, epochs, inputs_by_ts, perturb, extra_routers=()):
    feeds = make_feeds(epochs, perturb=perturb, seed=3)
    assembler = EpochAssembler(
        list(feeds) + list(extra_routers), lateness_s=1.0
    )
    with ValidationEngine(
        spec.topology, config=spec.hodor_config, mode="full"
    ) as engine:
        pipeline = StreamPipeline(
            list(feeds.values()), assembler, engine, inputs_for=inputs_by_ts
        )
        return pipeline.run()


def _assert_no_fabrication(sealed, source_by_ts):
    """Sealed snapshots only ever contain source data or holes."""
    for epoch in sealed:
        source = source_by_ts[epoch.timestamp]
        for key, got in epoch.snapshot.counters.items():
            assert key in source.counters, f"invented interface {key}"
            want = source.counters[key]
            assert got.rx_rate is None or got.rx_rate == want.rx_rate, key
            assert got.tx_rate is None or got.tx_rate == want.tx_rate, key
        missing = set(epoch.missing)
        for node, _peer in epoch.snapshot.counters:
            assert node not in missing, (
                f"missing router {node} has fabricated counters"
            )


@pytest.mark.parametrize("case_seed", [11, 29])
class TestAllLateRouters:
    def test_partial_epochs_hold_unknowns_not_zeros(self, case_seed):
        spec, epochs, inputs_by_ts = _timeline(case_seed)
        result = _stream(
            spec, epochs, inputs_by_ts, Perturbations(delay=1.0, delay_s=100.0)
        )
        assert result.late_dropped > 0
        _assert_no_fabrication(result.epochs, dict(epochs))

    def test_half_late_never_fabricates(self, case_seed):
        spec, epochs, inputs_by_ts = _timeline(case_seed)
        result = _stream(
            spec, epochs, inputs_by_ts, Perturbations(delay=0.5, delay_s=100.0)
        )
        assert result.late_dropped > 0
        _assert_no_fabrication(result.epochs, dict(epochs))


@pytest.mark.parametrize("case_seed", [11, 29])
class TestFullyDuplicatedStreams:
    def test_dedupe_reproduces_exact_snapshots(self, case_seed):
        spec, epochs, inputs_by_ts = _timeline(case_seed)
        result = _stream(spec, epochs, inputs_by_ts, Perturbations(duplicate=1.0))
        assert result.duplicates > 0
        assert result.partial_epochs == 0
        source_by_ts = dict(epochs)
        assert len(result.epochs) == len(epochs)
        for epoch in result.epochs:
            assert epoch.snapshot == source_by_ts[epoch.timestamp]


class TestSilentRouter:
    def test_expected_but_silent_router_stays_absent(self):
        """A router the assembler expects but that never reports leaves
        partial epochs where it is listed missing and contributes no
        signals -- its state is unknown, not zero."""
        spec, epochs, inputs_by_ts = _timeline(SEED)
        result = _stream(
            spec,
            epochs,
            inputs_by_ts,
            Perturbations(),
            extra_routers=("ghost-router",),
        )
        assert len(result.epochs) == len(epochs)
        assert result.complete_epochs == 0
        source_by_ts = dict(epochs)
        for epoch in result.epochs:
            assert "ghost-router" in epoch.missing
            assert not any(
                node == "ghost-router" for node, _peer in epoch.snapshot.counters
            )
            # Everything the real routers reported still assembles
            # exactly; only the silent router is a hole.
            for key, got in epoch.snapshot.counters.items():
                assert got == source_by_ts[epoch.timestamp].counters[key]
