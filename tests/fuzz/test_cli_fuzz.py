"""The ``python -m repro fuzz`` command."""

import json

import pytest

from repro.__main__ import _parse_budget, main


class TestBudgetParsing:
    def test_seconds_suffix(self):
        assert _parse_budget("30s") == 30.0

    def test_minutes_suffix(self):
        assert _parse_budget("2m") == 120.0

    def test_bare_number_is_seconds(self):
        assert _parse_budget("45") == 45.0

    def test_fractional(self):
        assert _parse_budget("0.5s") == 0.5

    @pytest.mark.parametrize("raw", ["0s", "-3", "nonsense", ""])
    def test_rejects_bad_budgets(self, raw):
        with pytest.raises(ValueError):
            _parse_budget(raw)


class TestFuzzCommand:
    def test_green_run_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--budget",
                "5s",
                "--cases",
                "3",
                "--seed",
                "1",
                "--out",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 cases" in out
        assert "0 failures" in out
        assert not list(tmp_path.glob("*.json"))

    def test_json_report_shape(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--budget",
                "5s",
                "--cases",
                "2",
                "--seed",
                "2",
                "--out",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cases"] == 2
        assert payload["failures"] == 0
        assert payload["master_seed"] == 2
        assert payload["reproducers"] == []
        assert isinstance(payload["fault_census"], dict)

    def test_bad_budget_exits_two(self, capsys):
        assert main(["fuzz", "--budget", "bogus"]) == 2

    def test_bad_cases_exits_two(self, capsys):
        assert main(["fuzz", "--cases", "0"]) == 2

    def test_self_test_finds_planted_bug(self, capsys):
        """The planted incremental-mode divergence is found, shrunk,
        and reproduced -- exercising the failure path end to end."""
        code = main(["fuzz", "--budget", "60s", "--self-test", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "found and reproduced" in out
