"""The case generator: a seed IS the case.

Regeneration must be exact (the shrinker and regression corpus pin
case seeds), generated faults must reference elements that exist in
the generated topology, and generated stream perturbations must stay
inside the oracle's lateness window.
"""

import pytest

from repro.fuzz import CaseGenerator

SEEDS = tuple(range(30))


@pytest.fixture(scope="module")
def generator():
    return CaseGenerator()


class TestDeterminism:
    def test_same_seed_same_canonical_payload(self, generator):
        for seed in SEEDS:
            first = generator.generate(seed).canonical_json()
            second = generator.generate(seed).canonical_json()
            assert first == second, f"seed {seed} not reproducible"

    def test_different_seeds_differ(self, generator):
        payloads = {generator.generate(seed).canonical_json() for seed in SEEDS}
        assert len(payloads) > len(SEEDS) // 2


class TestGeneratedCasesAreWellFormed:
    def test_faults_reference_existing_elements(self, generator):
        for seed in SEEDS:
            spec = generator.generate(seed)
            nodes = set(spec.topology.node_names())
            edges = set(spec.topology.directed_edges())
            for index in range(spec.num_epochs):
                for fault in spec.faults_for_epoch(index):
                    params = fault.to_params()
                    for node in params.get("nodes") or ():
                        assert node in nodes, (seed, fault, node)
                    for pair in params.get("interfaces") or ():
                        assert tuple(pair) in edges, (seed, fault, pair)

    def test_link_health_references_existing_links(self, generator):
        for seed in SEEDS:
            spec = generator.generate(seed)
            link_names = {link.name for link in spec.topology.links()}
            for name in spec.link_health:
                assert name in link_names, (seed, name)

    def test_sizes_within_configured_bounds(self, generator):
        for seed in SEEDS:
            spec = generator.generate(seed)
            assert 4 <= spec.topology.num_nodes <= 10
            assert 2 <= spec.num_epochs <= 4
            for plan in spec.epochs:
                assert len(plan.signal_faults) <= 3

    def test_topology_always_connected(self, generator):
        for seed in SEEDS:
            assert generator.generate(seed).topology.is_connected(), seed

    def test_perturbations_stay_in_window(self, generator):
        """Only in-window reorder/duplicate are generated -- delay,
        drop, and fail would legitimately change streamed results."""
        for seed in SEEDS:
            perturb = generator.generate(seed).perturb
            assert perturb.delay == 0.0
            assert perturb.drop == 0.0
            assert perturb.fail == 0.0
            if perturb.reorder:
                assert perturb.reorder_jitter_s < 1.0


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            CaseGenerator(min_nodes=2)
        with pytest.raises(ValueError):
            CaseGenerator(min_nodes=6, max_nodes=5)
        with pytest.raises(ValueError):
            CaseGenerator(min_epochs=0)
        with pytest.raises(ValueError):
            CaseGenerator(min_epochs=3, max_epochs=2)
