"""Scatter-path differential: folded epochs == applied epochs, exactly.

The scatter path (``EpochAssembler(build_snapshots=False)`` +
``ValidationEngine.validate_events``) replaces the assembler's
per-event ``SignalPath.parse`` with :class:`repro.stream.fold.EventFolder`'s
cached decode.  Its correctness bar is absolute: for every catalog
scenario, every engine mode and backend, the folded pipeline must
produce verdicts AND provenance identical to the classic applied
pipeline -- and both identical to batch.  Any drift here would poison
the fleet differential (which runs tenants through the scatter path).
"""

import pytest

from repro.engine import ValidationEngine, compare_reports
from repro.scenarios.catalog import all_scenarios, scenario_by_id
from repro.stream import EpochAssembler, Perturbations, StreamPipeline, make_feeds
from repro.stream.events import UpdateEvent, apply_update, router_updates
from repro.stream.fold import EventFolder
from repro.telemetry.counters import CounterReading
from repro.telemetry.snapshot import LinkStatusReport, NetworkSnapshot, ProbeResult

EPOCHS = 3


def _provenance_dict(report):
    return {name: record.to_dict() for name, record in report.provenance.items()}


def _timeline(world):
    epochs, inputs_by_ts, batch_reports = [], {}, []
    for epoch in range(EPOCHS):
        outcome = world.run_epoch(timestamp=float(epoch) * 10.0)
        epochs.append((outcome.snapshot.timestamp, outcome.snapshot))
        inputs_by_ts[outcome.snapshot.timestamp] = outcome.inputs
        batch_reports.append(outcome.report)
    return epochs, inputs_by_ts, batch_reports


def _stream_reports(world, epochs, inputs_by_ts, mode, backend, scatter, perturb=None, seed=0):
    feeds = make_feeds(epochs, perturb=perturb, seed=seed)
    assembler = EpochAssembler(list(feeds), lateness_s=1.0, build_snapshots=not scatter)
    with ValidationEngine(
        world.topology, config=world.hodor_config, mode=mode, backend=backend
    ) as engine:
        pipeline = StreamPipeline(
            list(feeds.values()), assembler, engine, inputs_for=inputs_by_ts
        )
        return pipeline.run()


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.scenario_id)
def test_scatter_matches_batch_all_modes_and_backends(scenario):
    """Every catalog scenario, scattered, across all 4 engine combos."""
    world = scenario.build(seed=7)
    epochs, inputs_by_ts, batch_reports = _timeline(world)
    for mode in ("full", "incremental"):
        for backend in ("python", "vector"):
            result = _stream_reports(
                world, epochs, inputs_by_ts, mode, backend, scatter=True
            )
            assert len(result.reports) == EPOCHS
            assert result.complete_epochs == EPOCHS
            assert all(e.snapshot is None for e in result.epochs)
            assert all(e.events for e in result.epochs)
            for index, (batch, streamed) in enumerate(
                zip(batch_reports, result.reports)
            ):
                diffs = compare_reports(batch, streamed)
                assert not diffs, (
                    f"{scenario.scenario_id} {mode}/{backend} epoch {index}: "
                    f"{diffs[:5]}"
                )
                assert _provenance_dict(batch) == _provenance_dict(streamed), (
                    f"{scenario.scenario_id} {mode}/{backend} epoch {index}: "
                    "provenance diverged"
                )


@pytest.mark.parametrize("scenario_id", ["S01", "S16"])
def test_scatter_equals_classic_under_perturbation(scenario_id):
    """Scattered and applied pipelines agree report-for-report even
    when feeds reorder and duplicate deliveries: the sorted seal buffer
    feeds both paths identically."""
    world = scenario_by_id(scenario_id).build(seed=7)
    epochs, inputs_by_ts, _ = _timeline(world)
    perturb = Perturbations(reorder=0.5, duplicate=0.3, reorder_jitter_s=0.4)
    classic = _stream_reports(
        world, epochs, inputs_by_ts, "full", "python",
        scatter=False, perturb=perturb, seed=11,
    )
    scattered = _stream_reports(
        world, epochs, inputs_by_ts, "full", "python",
        scatter=True, perturb=perturb, seed=11,
    )
    assert scattered.duplicates == classic.duplicates > 0
    assert len(scattered.reports) == len(classic.reports) == EPOCHS
    for index, (applied, folded) in enumerate(
        zip(classic.reports, scattered.reports)
    ):
        diffs = compare_reports(applied, folded)
        assert not diffs, f"epoch {index}: {diffs[:5]}"
        assert _provenance_dict(applied) == _provenance_dict(folded)


def test_fold_parity_on_malformed_junk():
    """The folder must pass raw wire values through untouched -- the
    same junk-preserving contract as apply_update, because hardening
    this early would hide what the engine's harden stages catch."""
    snapshot = NetworkSnapshot(timestamp=5.0)
    snapshot.counters[("a", "b")] = CounterReading(
        rx_rate=float("nan"), tx_rate="garbage", sequence=-3
    )
    snapshot.link_status[("a", "b")] = LinkStatusReport(oper_up="maybe", admin_up=None)
    snapshot.drains["a"] = "not-a-bool"
    snapshot.drain_reasons["a"] = 12345
    snapshot.link_drains[("a", "b")] = float("inf")
    snapshot.drops["a"] = -1.5
    snapshot.probes[("a", "b")] = ProbeResult(ok=True, rtt_ms="slow")

    events = [
        UpdateEvent(
            router="a", uid=i, epoch_ts=5.0, emit_ts=5.0,
            path=path, value=value, meta=meta,
        )
        for i, (path, value, meta) in enumerate(router_updates(snapshot, "a"))
    ]
    ordered = sorted(events, key=lambda e: (e.router, e.uid))

    applied = NetworkSnapshot(timestamp=5.0)
    for event in ordered:
        apply_update(applied, event.path, event.value, event.meta)  # lint: ignore[T1]
    folded = EventFolder().fold(ordered, timestamp=5.0)

    assert folded.timestamp == applied.timestamp
    assert set(folded.counters) == set(applied.counters)
    for key, want in applied.counters.items():
        got = folded.counters[key]
        assert repr(got.rx_rate) == repr(want.rx_rate)
        assert got.tx_rate == want.tx_rate
        assert got.sequence == want.sequence
        assert got.timestamp == want.timestamp
        assert got.window_s == want.window_s
    assert folded.link_status == applied.link_status or {
        k: (v.oper_up, v.admin_up) for k, v in folded.link_status.items()
    } == {k: (v.oper_up, v.admin_up) for k, v in applied.link_status.items()}
    assert folded.drains == applied.drains
    assert folded.drain_reasons == applied.drain_reasons
    assert folded.link_drains == applied.link_drains
    assert folded.drops == applied.drops
    assert {k: (p.ok, p.rtt_ms) for k, p in folded.probes.items()} == {
        k: (p.ok, p.rtt_ms) for k, p in applied.probes.items()
    }


def test_folder_caches_paths_across_epochs():
    """Second fold of the same vocabulary decodes nothing new."""
    snapshot = NetworkSnapshot(timestamp=0.0)
    snapshot.drains["r1"] = False
    snapshot.drops["r1"] = 10.0
    updates = list(router_updates(snapshot, "r1"))
    events = [
        UpdateEvent(
            router="r1", uid=i, epoch_ts=0.0, emit_ts=0.0,
            path=p, value=v, meta=m,
        )
        for i, (p, v, m) in enumerate(updates)
    ]
    folder = EventFolder()
    folder.fold(events, timestamp=0.0)
    first = folder.cached_paths
    assert first == len({e.path for e in events})
    folder.fold(events, timestamp=1.0)
    assert folder.cached_paths == first
