"""EpochAssembler: watermarks, dedupe, partial epochs, lateness."""

import pytest

from repro.stream import EpochAssembler, UpdateEvent


def _event(router, epoch_ts, uid, emit_ts=None, node=None):
    node = node or router
    return UpdateEvent(
        router=router,
        path=f"/system/processes/drain[node={node}]/state/drained",
        epoch_ts=epoch_ts,
        emit_ts=epoch_ts if emit_ts is None else emit_ts,
        uid=uid,
        value=False,
    )


class TestWatermark:
    def test_starts_below_everything(self):
        assembler = EpochAssembler(["a", "b"])
        assert assembler.watermark() == float("-inf")

    def test_is_min_over_live_routers(self):
        assembler = EpochAssembler(["a", "b"], lateness_s=1.0)
        assembler.offer(_event("a", 0.0, 1, emit_ts=50.0))
        assert assembler.watermark() == float("-inf")  # b has not spoken
        assembler.offer(_event("b", 0.0, 1, emit_ts=5.0))
        assert assembler.watermark() == 5.0

    def test_epoch_seals_when_watermark_passes_lateness(self):
        assembler = EpochAssembler(["a", "b"], lateness_s=1.0)
        assert assembler.offer(_event("a", 0.0, 1)) == []
        assert assembler.offer(_event("b", 0.0, 1)) == []
        # Watermark 0.0 < 0.0 + 1.0: still open.
        assert assembler.open_epochs == 1
        sealed = assembler.offer(_event("a", 10.0, 2, emit_ts=10.0))
        assert sealed == []  # b's frontier still at 0.0
        sealed = assembler.offer(_event("b", 10.0, 2, emit_ts=10.0))
        assert [epoch.timestamp for epoch in sealed] == [0.0]
        assert sealed[0].sealed_by == "watermark"
        assert sealed[0].complete

    def test_mark_done_releases_the_watermark(self):
        assembler = EpochAssembler(["a", "b"], lateness_s=1.0)
        assembler.offer(_event("a", 0.0, 1, emit_ts=50.0))
        assert assembler.open_epochs == 1
        sealed = assembler.mark_done("b")
        assert [epoch.timestamp for epoch in sealed] == [0.0]
        assert sealed[0].missing == ("b",)
        assert not sealed[0].complete

    def test_unknown_router_never_holds_sealing_back(self):
        assembler = EpochAssembler(["a"], lateness_s=0.0)
        assembler.offer(_event("ghost", 0.0, 1))  # not in expected set
        sealed = assembler.offer(_event("a", 0.0, 1, emit_ts=5.0))
        assert [epoch.timestamp for epoch in sealed] == [0.0]
        assert sealed[0].coverage == {"a": 1, "ghost": 1}


class TestDedupeAndLateness:
    def test_duplicates_suppressed_by_router_uid(self):
        assembler = EpochAssembler(["a"], lateness_s=1.0)
        assembler.offer(_event("a", 0.0, 1))
        assembler.offer(_event("a", 0.0, 1, emit_ts=0.2))  # same uid redelivered
        (epoch,) = assembler.drain()
        assert epoch.updates == 1
        assert epoch.duplicates == 1
        assert assembler.duplicates == 1

    def test_same_uid_from_different_routers_not_deduped(self):
        assembler = EpochAssembler(["a", "b"], lateness_s=1.0)
        assembler.offer(_event("a", 0.0, 1))
        assembler.offer(_event("b", 0.0, 1))
        (epoch,) = assembler.drain()
        assert epoch.updates == 2
        assert epoch.duplicates == 0

    def test_late_delivery_counted_and_never_applied(self):
        assembler = EpochAssembler(["a", "b"], lateness_s=0.0)
        assembler.offer(_event("a", 0.0, 1))
        sealed = assembler.offer(_event("b", 0.0, 1, emit_ts=5.0))
        assert [epoch.timestamp for epoch in sealed] == [0.0]
        before = dict(sealed[0].snapshot.drains)
        late = assembler.offer(_event("a", 0.0, 99, emit_ts=9.0))
        assert late == []
        assert assembler.late_dropped == 1
        assert sealed[0].snapshot.drains == before  # history untouched

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError):
            EpochAssembler(["a"], lateness_s=-1.0)


class TestDrainAndMetrics:
    def test_drain_seals_in_timestamp_order(self):
        assembler = EpochAssembler(["a"], lateness_s=100.0)
        assembler.offer(_event("a", 10.0, 2))
        assembler.offer(_event("a", 0.0, 1))
        drained = assembler.drain()
        assert [epoch.timestamp for epoch in drained] == [0.0, 10.0]
        assert all(epoch.sealed_by == "drain" for epoch in drained)
        assert assembler.open_epochs == 0

    def test_metric_families_present_from_boot(self):
        assembler = EpochAssembler(["a"])
        rendered = assembler.metrics.render()
        assert "stream_updates_total 0" in rendered
        assert "stream_late_updates_total 0" in rendered
        assert "stream_duplicate_updates_total 0" in rendered
        assert "stream_open_epochs 0" in rendered

    def test_sealed_counter_labelled_by_completeness(self):
        assembler = EpochAssembler(["a", "b"], lateness_s=0.0)
        assembler.offer(_event("a", 0.0, 1))
        assembler.offer(_event("b", 0.0, 1, emit_ts=5.0))  # seals complete
        assembler.offer(_event("a", 10.0, 2, emit_ts=10.0))
        assembler.mark_done("a")
        assembler.mark_done("b")  # seals partial (b never spoke for 10.0)
        rendered = assembler.metrics.render()
        assert 'stream_epochs_sealed_total{result="complete"} 1' in rendered
        assert 'stream_epochs_sealed_total{result="partial"} 1' in rendered

    def test_interleaving_cannot_change_the_snapshot(self):
        forward = EpochAssembler(["a", "b"], lateness_s=100.0)
        backward = EpochAssembler(["a", "b"], lateness_s=100.0)
        events = [
            _event("a", 0.0, 1),
            _event("b", 0.0, 1),
            _event("a", 0.0, 2, node="x"),
            _event("b", 0.0, 2, node="y"),
        ]
        for event in events:
            forward.offer(event)
        for event in reversed(events):
            backward.offer(event)
        (left,) = forward.drain()
        (right,) = backward.drain()
        assert left.snapshot.drains == right.snapshot.drains
        assert left.coverage == right.coverage
