"""StreamPipeline: backpressure, retry/abandon, determinism."""

import pytest

from repro.engine import ValidationEngine, compare_reports
from repro.stream import (
    EpochAssembler,
    FeedError,
    IngestConfig,
    Perturbations,
    StreamPipeline,
    make_feeds,
)
from repro.telemetry.snapshot import NetworkSnapshot

from tests.engine.conftest import random_epoch


def _timeline(size=6, seed=0, count=3, spacing=10.0):
    topology, snapshot, inputs = random_epoch(size, seed)
    epochs = []
    for index in range(count):
        ts = float(index) * spacing
        epochs.append(
            (
                ts,
                NetworkSnapshot(
                    timestamp=ts,
                    counters=dict(snapshot.counters),
                    link_status=dict(snapshot.link_status),
                    drains=dict(snapshot.drains),
                    drain_reasons=dict(snapshot.drain_reasons),
                    drops=dict(snapshot.drops),
                    link_drains=dict(snapshot.link_drains),
                    probes=dict(snapshot.probes),
                ),
            )
        )
    return topology, epochs, inputs


def _run(topology, epochs, inputs, perturb=None, seed=0, config=None, lateness=1.0):
    feeds = make_feeds(epochs, perturb=perturb, seed=seed)
    assembler = EpochAssembler(list(feeds), lateness_s=lateness)
    with ValidationEngine(topology) as engine:
        pipeline = StreamPipeline(
            list(feeds.values()),
            assembler,
            engine,
            inputs_for=lambda _ts: inputs,
            config=config,
        )
        return pipeline.run()


class _AlwaysFailingFeed:
    """A feed whose every delivery attempt raises FeedError."""

    def __init__(self, router):
        self.router = router

        class _Stats:
            dropped = 0

        self.stats = _Stats()

    def next_event(self):
        raise FeedError(f"{self.router} is down")


class TestHappyPath:
    def test_all_epochs_sealed_and_validated(self):
        topology, epochs, inputs = _timeline()
        result = _run(topology, epochs, inputs)
        assert len(result.epochs) == len(result.reports) == 3
        assert result.complete_epochs == 3
        assert result.partial_epochs == 0
        assert [e.timestamp for e in result.epochs] == [0.0, 10.0, 20.0]
        assert len(result.epoch_latency_s) == 3
        assert result.abandoned == ()

    def test_concurrent_mode_matches_deterministic_mode(self):
        topology, epochs, inputs = _timeline()
        ordered = _run(topology, epochs, inputs, config=IngestConfig(deterministic=True))
        racing = _run(topology, epochs, inputs, config=IngestConfig(deterministic=False))
        assert len(ordered.reports) == len(racing.reports) == 3
        for left, right in zip(ordered.reports, racing.reports):
            assert not compare_reports(left, right)

    def test_inputs_for_accepts_a_mapping(self):
        topology, epochs, inputs = _timeline()
        feeds = make_feeds(epochs)
        assembler = EpochAssembler(list(feeds))
        by_ts = {ts: inputs for ts, _snapshot in epochs}
        with ValidationEngine(topology) as engine:
            result = StreamPipeline(
                list(feeds.values()), assembler, engine, inputs_for=by_ts
            ).run()
        assert len(result.reports) == 3


class TestRetryAndAbandon:
    def test_transient_failures_are_retried(self):
        topology, epochs, inputs = _timeline()
        result = _run(
            topology, epochs, inputs, perturb=Perturbations(fail=1.0), seed=1
        )
        # fail=1.0 makes every delivery hiccup exactly once; every one
        # must be retried and then succeed, losing nothing.
        assert result.retries == result.updates > 0
        assert result.abandoned == ()
        assert result.complete_epochs == 3

    def test_dead_feed_is_abandoned_and_epochs_seal_partial(self):
        topology, epochs, inputs = _timeline()
        feeds = make_feeds(epochs)
        dead = _AlwaysFailingFeed("zz-dead-router")
        assembler = EpochAssembler(list(feeds) + [dead.router], lateness_s=1.0)
        config = IngestConfig(max_retries=2, backoff_base_s=0.0001)
        with ValidationEngine(topology) as engine:
            pipeline = StreamPipeline(
                list(feeds.values()) + [dead],
                assembler,
                engine,
                inputs_for=lambda _ts: inputs,
                config=config,
            )
            result = pipeline.run()
        assert result.abandoned == (dead.router,)
        assert result.retries == config.max_retries + 1
        assert len(result.epochs) == 3  # sealing survived the dead feed
        assert result.partial_epochs == 3
        assert all(epoch.missing == (dead.router,) for epoch in result.epochs)


class TestBackpressure:
    def test_block_policy_loses_nothing_on_a_tiny_queue(self):
        topology, epochs, inputs = _timeline()
        result = _run(
            topology,
            epochs,
            inputs,
            config=IngestConfig(queue_size=2, backpressure="block"),
        )
        assert result.backpressure_dropped == 0
        assert result.complete_epochs == 3

    def test_drop_oldest_sheds_but_still_seals_every_epoch(self):
        topology, epochs, inputs = _timeline()
        result = _run(
            topology,
            epochs,
            inputs,
            config=IngestConfig(queue_size=2, backpressure="drop-oldest"),
        )
        assert result.backpressure_dropped > 0
        # Shedding whole early epochs is allowed (their every event may
        # be discarded before the consumer runs); the run must still
        # terminate, seal the freshest epoch, and account for every
        # emitted delivery as either offered or shed.
        assert 1 <= len(result.epochs) <= 3
        assert result.epochs[-1].timestamp == 20.0
        assert result.updates + result.backpressure_dropped == sum(
            feed.stats.emitted
            for feed in make_feeds(epochs).values()
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IngestConfig(backpressure="drop-newest")
        with pytest.raises(ValueError):
            IngestConfig(queue_size=0)
        with pytest.raises(ValueError):
            IngestConfig(max_retries=-1)


class _RecordingAssembler(EpochAssembler):
    """Records the consumer-facing call sequence for ordering asserts."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def offer(self, event):
        self.calls.append(("offer", event.router))
        return super().offer(event)

    def mark_done(self, router):
        self.calls.append(("mark_done", router))
        return super().mark_done(router)

    def drain(self):
        self.calls.append(("drain",))
        return super().drain()


class _EmptyFeed:
    """A feed that is exhausted from the start."""

    def __init__(self, router):
        self.router = router

        class _Stats:
            dropped = 0
            emitted = 0

        self.stats = _Stats()

    def next_event(self):
        return None


class _NullEngine:
    def validate(self, snapshot, inputs, topology=None):
        return object()


class TestTerminationOrdering:
    def test_every_done_marker_is_processed_before_drain(self):
        # Regression: the consumer used to stop on a shared live-producer
        # count decremented *before* the done-marker was enqueued.  With
        # queue_size=1 and two concurrent producers, producer B blocks
        # putting its marker behind A's; the consumer, scheduled in that
        # window, saw count==0 and an empty queue and shut down without
        # ever processing mark_done("B").  Termination now counts the
        # terminal markers themselves, which travel through the queue.
        assembler = _RecordingAssembler(["A", "B"], lateness_s=1.0)
        pipeline = StreamPipeline(
            [_EmptyFeed("A"), _EmptyFeed("B")],
            assembler,
            _NullEngine(),
            inputs_for=lambda _ts: None,
            config=IngestConfig(queue_size=1, deterministic=False),
        )
        result = pipeline.run()
        marked = {call[1] for call in assembler.calls if call[0] == "mark_done"}
        assert marked == {"A", "B"}
        assert assembler.calls[-1] == ("drain",)
        assert result.epochs == []

    def test_tiny_queue_concurrent_mode_still_seals_by_watermark(self):
        # End-to-end shape of the same property: with real events on a
        # one-slot queue, every epoch must seal on the watermark path
        # (all done-markers processed), never by shutdown drain.
        topology, epochs, inputs = _timeline()
        result = _run(
            topology,
            epochs,
            inputs,
            config=IngestConfig(queue_size=1, deterministic=False),
        )
        assert len(result.epochs) == 3
        assert all(epoch.sealed_by == "watermark" for epoch in result.epochs)


class TestMetrics:
    def test_pipeline_families_present_from_boot(self):
        topology, epochs, inputs = _timeline()
        feeds = make_feeds(epochs)
        assembler = EpochAssembler(list(feeds))
        with ValidationEngine(topology) as engine:
            pipeline = StreamPipeline(
                list(feeds.values()), assembler, engine, inputs_for=lambda _ts: inputs
            )
            pipeline.run()
        rendered = pipeline.metrics.render()
        for family in (
            "stream_queue_depth",
            "stream_backpressure_dropped_total",
            "stream_feed_retries_total",
            "stream_feeds_abandoned_total",
            "stream_feed_dropped_total",
            "stream_updates_total",
            "stream_epochs_sealed_total",
            "stream_assembly_latency_seconds_bucket",
        ):
            assert family in rendered, family
