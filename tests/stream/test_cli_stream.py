"""Golden tests for ``python -m repro stream``."""

import json

from repro.__main__ import main


class TestStreamScenario:
    def test_single_scenario_matches_batch(self, capsys):
        assert main(["stream", "--scenario", "S16", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].split() == [
            "id", "sealed", "complete", "partial", "late", "dups", "matches", "batch"
        ]
        assert lines[2].split() == ["S16", "2/2", "2", "0", "0", "0", "yes"]

    def test_json_payload(self, capsys):
        assert main(["stream", "--scenario", "S01", "--epochs", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mismatched"] == 0
        assert payload["scenarios"] == [
            {
                "id": "S01",
                "sealed": "2/2",
                "complete": 2,
                "partial": 0,
                "late_dropped": 0,
                "duplicates": 0,
                "matches_batch": "yes",
            }
        ]

    def test_incremental_mode(self, capsys):
        assert main(
            ["stream", "--scenario", "S16", "--epochs", "2", "--mode", "incremental"]
        ) == 0
        assert "yes" in capsys.readouterr().out

    def test_perturbed_run_skips_identity_check(self, capsys):
        assert main(
            ["stream", "--scenario", "S16", "--epochs", "2", "--drop", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "-" in out.splitlines()[2].split()

    def test_invalid_probability_is_a_usage_error(self, capsys):
        assert main(["stream", "--scenario", "S16", "--drop", "1.5"]) == 2

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        assert main(["stream", "--scenario", "S99"]) == 2

    def test_metrics_prom_export(self, capsys, tmp_path):
        target = tmp_path / "stream.prom"
        assert main(
            [
                "stream", "--scenario", "S16", "--epochs", "2",
                "--metrics-prom", str(target),
            ]
        ) == 0
        text = target.read_text()
        assert "stream_updates_total" in text
        assert "stream_epochs_sealed_total" in text
        assert "engine_epoch_latency_seconds" in text  # shared registry


class TestStreamSoak:
    def test_small_soak_json(self, capsys):
        assert main(
            [
                "stream", "--soak", "--nodes", "8", "--epochs", "3",
                "--reorder", "0.1", "--duplicate", "0.1", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"] == 8
        assert payload["epochs_streamed"] == payload["epochs_sealed"] == 3
        assert payload["updates"] > 0
        assert payload["duplicates"] > 0
        assert payload["updates_per_s"] > 0
