"""RouterFeed: seeded, deterministic delivery perturbation."""

import pytest

from repro.stream import FeedError, Perturbations, RouterFeed, make_feeds, reporting_routers

from tests.engine.conftest import random_epoch


def _epochs(size=8, seed=0, count=3, spacing=10.0):
    """A small epoch sequence: one churnless snapshot re-timestamped."""
    from repro.telemetry.snapshot import NetworkSnapshot

    _topology, snapshot, _inputs = random_epoch(size, seed)
    out = []
    for index in range(count):
        ts = float(index) * spacing
        out.append(
            (
                ts,
                NetworkSnapshot(
                    timestamp=ts,
                    counters=dict(snapshot.counters),
                    link_status=dict(snapshot.link_status),
                    drains=dict(snapshot.drains),
                    drain_reasons=dict(snapshot.drain_reasons),
                    drops=dict(snapshot.drops),
                    link_drains=dict(snapshot.link_drains),
                    probes=dict(snapshot.probes),
                ),
            )
        )
    return out


def _drainfeed(feed):
    """Every delivery, retrying through scheduled failures."""
    events = []
    while not feed.exhausted:
        try:
            event = feed.next_event()
        except FeedError:
            continue
        if event is None:
            break
        events.append(event)
    return events


PERTURB = Perturbations(reorder=0.2, duplicate=0.1, delay=0.05, drop=0.05, fail=0.02)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        a = _drainfeed(RouterFeed(router, epochs, perturb=PERTURB, seed=42))
        b = _drainfeed(RouterFeed(router, epochs, perturb=PERTURB, seed=42))
        assert a == b
        assert len(a) > 0

    def test_different_seed_different_stream(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        a = _drainfeed(RouterFeed(router, epochs, perturb=PERTURB, seed=1))
        b = _drainfeed(RouterFeed(router, epochs, perturb=PERTURB, seed=2))
        assert a != b

    def test_sibling_routers_perturb_independently(self):
        epochs = _epochs()
        feeds = make_feeds(epochs, perturb=PERTURB, seed=7)
        stats = {router: feed.stats.dropped for router, feed in feeds.items()}
        # Identical per-router streams would drop identical counts
        # everywhere; independent RNG streams will not.
        assert len(set(stats.values())) > 1


class TestPerfectFeed:
    def test_lossless_in_order_punctual(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        feed = RouterFeed(router, epochs)
        events = _drainfeed(feed)
        assert feed.stats.emitted == feed.stats.updates == len(events)
        assert feed.stats.dropped == feed.stats.failures == 0
        for event in events:
            assert event.emit_ts in dict(epochs)  # punctual: emit == epoch
            assert event.emit_ts == pytest.approx(event.epoch_ts)
        uids = [event.uid for event in events]
        assert uids == sorted(uids)  # delivery order is uid order


class TestPerturbations:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            Perturbations(drop=1.5)
        with pytest.raises(ValueError):
            Perturbations(reorder=-0.1)

    def test_drop_removes_deliveries(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        feed = RouterFeed(router, epochs, perturb=Perturbations(drop=0.5), seed=3)
        assert feed.stats.dropped > 0
        assert len(feed) == feed.stats.updates - feed.stats.dropped

    def test_duplicate_reuses_uid(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        feed = RouterFeed(router, epochs, perturb=Perturbations(duplicate=0.5), seed=3)
        events = _drainfeed(feed)
        assert feed.stats.duplicated > 0
        assert len(events) == feed.stats.updates + feed.stats.duplicated
        uids = [event.uid for event in events]
        assert len(uids) - len(set(uids)) == feed.stats.duplicated

    def test_delay_pushes_past_window(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        perturb = Perturbations(delay=0.5, delay_s=30.0)
        feed = RouterFeed(router, epochs, perturb=perturb, seed=3)
        late = [e for e in _drainfeed(feed) if e.emit_ts >= e.epoch_ts + perturb.delay_s]
        assert len(late) == feed.stats.delayed > 0

    def test_reorder_stays_inside_window(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        perturb = Perturbations(reorder=0.5, reorder_jitter_s=0.4)
        feed = RouterFeed(router, epochs, perturb=perturb, seed=3)
        assert feed.stats.reordered > 0
        for event in _drainfeed(feed):
            assert event.emit_ts <= event.epoch_ts + perturb.reorder_jitter_s

    def test_failure_raises_once_and_holds_position(self):
        epochs = _epochs()
        router = reporting_routers(epochs[0][1])[0]
        feed = RouterFeed(router, epochs, perturb=Perturbations(fail=1.0), seed=3)
        with pytest.raises(FeedError):
            feed.next_event()
        event = feed.next_event()  # retry succeeds, same delivery
        assert event is not None and event.uid == 1
        assert feed.stats.failures == 1


class TestMakeFeeds:
    def test_covers_every_reporting_router(self):
        epochs = _epochs()
        feeds = make_feeds(epochs, seed=0)
        assert sorted(feeds) == reporting_routers(epochs[0][1])
        assert all(feeds[r].router == r for r in feeds)
