"""Streaming differential harness: streamed == batch, end to end.

The acceptance bar for the streaming subsystem: replaying every
catalog scenario's timeline through perturbation-free feeds, the
assembler, and the ingest pipeline must produce validation reports
that are observably identical to the batch path's -- verdict for
verdict AND provenance record for provenance record -- in both full
and incremental engine modes.
"""

import pytest

from repro.engine import ValidationEngine, compare_reports
from repro.scenarios.catalog import all_scenarios, scenario_by_id
from repro.stream import EpochAssembler, Perturbations, StreamPipeline, make_feeds

EPOCHS = 3


def _provenance_dict(report):
    return {name: record.to_dict() for name, record in report.provenance.items()}


def _stream_reports(world, epochs, inputs_by_ts, mode, perturb=None, seed=0):
    feeds = make_feeds(epochs, perturb=perturb, seed=seed)
    assembler = EpochAssembler(list(feeds), lateness_s=1.0)
    with ValidationEngine(
        world.topology, config=world.hodor_config, mode=mode
    ) as engine:
        pipeline = StreamPipeline(
            list(feeds.values()), assembler, engine, inputs_for=inputs_by_ts
        )
        return pipeline.run()


def _timeline(world):
    epochs, inputs_by_ts, batch_reports = [], {}, []
    for epoch in range(EPOCHS):
        outcome = world.run_epoch(timestamp=float(epoch) * 10.0)
        epochs.append((outcome.snapshot.timestamp, outcome.snapshot))
        inputs_by_ts[outcome.snapshot.timestamp] = outcome.inputs
        batch_reports.append(outcome.report)
    return epochs, inputs_by_ts, batch_reports


@pytest.mark.parametrize("scenario", all_scenarios(), ids=lambda s: s.scenario_id)
def test_streamed_timeline_matches_batch_in_both_modes(scenario):
    """Every catalog scenario, streamed, in full AND incremental mode."""
    world = scenario.build(seed=7)
    epochs, inputs_by_ts, batch_reports = _timeline(world)
    for mode in ("full", "incremental"):
        result = _stream_reports(world, epochs, inputs_by_ts, mode)
        assert len(result.reports) == EPOCHS
        assert result.complete_epochs == EPOCHS
        assert result.late_dropped == 0
        assert [e.timestamp for e in result.epochs] == [ts for ts, _ in epochs]
        for index, (batch, streamed) in enumerate(zip(batch_reports, result.reports)):
            diffs = compare_reports(batch, streamed)
            assert not diffs, (
                f"{scenario.scenario_id} {mode} epoch {index}: {diffs[:5]}"
            )
            assert _provenance_dict(batch) == _provenance_dict(streamed), (
                f"{scenario.scenario_id} {mode} epoch {index}: provenance diverged"
            )


@pytest.mark.parametrize("scenario_id", ["S01", "S16"])
def test_in_window_reordering_is_verdict_invisible(scenario_id):
    """Reorder jitter inside the lateness window must not change one
    verdict: the assembler's buffer-and-sort sealing absorbs it."""
    world = scenario_by_id(scenario_id).build(seed=7)
    epochs, inputs_by_ts, batch_reports = _timeline(world)
    perturb = Perturbations(reorder=0.5, duplicate=0.3, reorder_jitter_s=0.4)
    result = _stream_reports(world, epochs, inputs_by_ts, "full", perturb=perturb, seed=11)
    assert result.duplicates > 0  # the perturbation actually fired
    assert len(result.reports) == EPOCHS
    assert result.complete_epochs == EPOCHS
    for index, (batch, streamed) in enumerate(zip(batch_reports, result.reports)):
        diffs = compare_reports(batch, streamed)
        assert not diffs, f"epoch {index}: {diffs[:5]}"
        assert _provenance_dict(batch) == _provenance_dict(streamed)
