"""Admission controller unit tests: strikes, quarantine, cooldown, eviction.

The controller is pure bookkeeping over a digest sequence, so every
edge case the supervisor relies on -- sustained vs transient
misbehaviour, cooldown arithmetic, the flap-then-evict ladder -- is
checked here with synthetic digests and no processes.
"""

import pytest

from repro.fleet.admission import (
    ADMITTED,
    EVICTED,
    QUARANTINED,
    AdmissionController,
    AdmissionPolicy,
)
from repro.fleet.digest import EpochDigest


def _digest(tenant="t0", timestamp=0.0, updates=10, duplicates=0, missing=0):
    return EpochDigest(
        tenant=tenant,
        timestamp=timestamp,
        sealed_by="watermark",
        complete=missing == 0,
        updates=updates,
        duplicates=duplicates,
        missing=missing,
        detected=False,
        violations=0,
        verdicts=(),
        provenance_json="{}",
        latency_s=0.0,
        fingerprint="f" * 64,
    )


class TestPolicy:
    def test_update_budget_strike(self):
        policy = AdmissionPolicy(max_updates_per_epoch=100)
        assert not policy.striking(_digest(updates=100))
        assert policy.striking(_digest(updates=101))

    def test_no_budget_means_no_volume_strikes(self):
        policy = AdmissionPolicy(max_updates_per_epoch=None)
        assert not policy.striking(_digest(updates=10**9))

    def test_duplicate_budget_strike(self):
        policy = AdmissionPolicy(max_duplicates_per_epoch=2)
        assert not policy.striking(_digest(duplicates=2))
        assert policy.striking(_digest(duplicates=3))

    def test_partial_epoch_strike_only_when_disallowed(self):
        assert not AdmissionPolicy(allow_partial=True).striking(_digest(missing=3))
        assert AdmissionPolicy(allow_partial=False).striking(_digest(missing=1))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(sustain_epochs=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(cooldown_epochs=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_readmissions=-1)


class TestSustainThreshold:
    def test_single_bad_epoch_never_quarantines(self):
        ctl = AdmissionController(AdmissionPolicy(max_duplicates_per_epoch=0))
        assert ctl.observe(_digest(duplicates=5)) is None
        assert ctl.status("t0") == ADMITTED

    def test_clean_epoch_resets_strikes(self):
        ctl = AdmissionController(
            AdmissionPolicy(max_duplicates_per_epoch=0, sustain_epochs=3)
        )
        # bad, bad, clean, bad, bad: never 3 consecutive -> admitted.
        for duplicates in (5, 5, 0, 5, 5):
            assert ctl.observe(_digest(duplicates=duplicates)) is None
        assert ctl.status("t0") == ADMITTED

    def test_sustained_strikes_quarantine_on_threshold_epoch(self):
        ctl = AdmissionController(
            AdmissionPolicy(max_duplicates_per_epoch=0, sustain_epochs=3)
        )
        assert ctl.observe(_digest(duplicates=1)) is None
        assert ctl.observe(_digest(duplicates=1)) is None
        assert ctl.observe(_digest(duplicates=1)) == "quarantine"
        assert ctl.status("t0") == QUARANTINED
        assert ctl.active_quarantines == 1

    def test_quarantined_tenant_not_rescored(self):
        """In-flight digests after quarantine count as observations but
        cannot double-quarantine or evict."""
        ctl = AdmissionController(
            AdmissionPolicy(max_duplicates_per_epoch=0, sustain_epochs=1)
        )
        assert ctl.observe(_digest(duplicates=9)) == "quarantine"
        for _ in range(5):
            assert ctl.observe(_digest(duplicates=9)) is None
        assert ctl.status("t0") == QUARANTINED
        assert ctl.observed == 6

    def test_tenants_scored_independently(self):
        ctl = AdmissionController(
            AdmissionPolicy(max_duplicates_per_epoch=0, sustain_epochs=2)
        )
        ctl.observe(_digest(tenant="bad", duplicates=7))
        ctl.observe(_digest(tenant="good"))
        ctl.observe(_digest(tenant="bad", duplicates=7))
        assert ctl.status("bad") == QUARANTINED
        assert ctl.status("good") == ADMITTED


class TestCooldownAndReadmission:
    def _quarantine(self, ctl, tenant="t0"):
        decision = None
        while decision != "quarantine":
            decision = ctl.observe(_digest(tenant=tenant, duplicates=99))
        return ctl

    def test_cooldown_respected(self):
        """Readmission before the cooldown elapses must raise -- early
        readmission is exactly the flapping the cooldown prevents."""
        ctl = AdmissionController(
            AdmissionPolicy(
                max_duplicates_per_epoch=0, sustain_epochs=1, cooldown_epochs=4
            )
        )
        self._quarantine(ctl)
        assert ctl.readmittable() == []
        with pytest.raises(ValueError, match="cooldown not elapsed"):
            ctl.readmit("t0")
        # Other tenants' digests advance the fleet clock.
        for index in range(4):
            ctl.observe(_digest(tenant="other", timestamp=float(index)))
        assert ctl.readmittable() == ["t0"]
        ctl.readmit("t0")
        assert ctl.status("t0") == ADMITTED

    def test_readmit_requires_quarantine(self):
        ctl = AdmissionController()
        with pytest.raises(ValueError, match="not quarantined"):
            ctl.readmit("t0")

    def test_flapping_tenant_evicted_after_max_readmissions(self):
        """Quarantine -> cooldown -> readmit -> re-offend: the second
        quarantine evicts (max_readmissions=1)."""
        ctl = AdmissionController(
            AdmissionPolicy(
                max_duplicates_per_epoch=0,
                sustain_epochs=2,
                cooldown_epochs=2,
                max_readmissions=1,
            )
        )
        self._quarantine(ctl)
        ctl.observe(_digest(tenant="other"))
        ctl.observe(_digest(tenant="other"))
        ctl.readmit("t0")
        state = ctl.snapshot()["t0"]
        assert state["readmissions"] == 1 and state["quarantines"] == 1
        # Strikes were reset on readmission: takes the full sustain run again.
        assert ctl.observe(_digest(duplicates=5)) is None
        assert ctl.observe(_digest(duplicates=5)) == "quarantine"
        assert ctl.status("t0") == EVICTED
        assert "t0" not in ctl.readmittable()
        with pytest.raises(ValueError, match="not quarantined"):
            ctl.readmit("t0")

    def test_zero_readmissions_evicts_on_first_quarantine(self):
        ctl = AdmissionController(
            AdmissionPolicy(
                max_duplicates_per_epoch=0, sustain_epochs=1, max_readmissions=0
            )
        )
        assert ctl.observe(_digest(duplicates=1)) == "quarantine"
        assert ctl.status("t0") == EVICTED


class TestDegradedMode:
    def test_degrade_threshold_counts_quarantined_and_evicted(self):
        ctl = AdmissionController(
            AdmissionPolicy(
                max_duplicates_per_epoch=0,
                sustain_epochs=1,
                max_readmissions=0,
                degrade_after_quarantines=2,
            )
        )
        ctl.observe(_digest(tenant="a", duplicates=1))
        assert not ctl.should_degrade()
        ctl.observe(_digest(tenant="b", duplicates=1))
        assert ctl.should_degrade()

    def test_snapshot_shape(self):
        ctl = AdmissionController(
            AdmissionPolicy(max_duplicates_per_epoch=0, sustain_epochs=1)
        )
        ctl.observe(_digest(tenant="bad", duplicates=1))
        ctl.observe(_digest(tenant="good"))
        snap = ctl.snapshot()
        assert list(snap) == ["bad", "good"]
        assert snap["bad"]["status"] == QUARANTINED
        assert snap["good"] == {
            "status": ADMITTED,
            "strikes": 0,
            "quarantines": 0,
            "readmissions": 0,
        }
