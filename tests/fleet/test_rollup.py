"""Metrics rollup tests: exposition round-trip and fleet merge."""

import pytest

from repro.fleet.rollup import merge_expositions, registry_from_exposition
from repro.obs.metrics import MetricsRegistry, parse_exposition


def _sample_registry(scale=1):
    registry = MetricsRegistry()
    counter = registry.counter("stream_updates_total", "Updates ingested.")
    counter.labels().inc(100 * scale)
    labelled = registry.counter(
        "engine_verdicts_total", "Verdicts by outcome.", ("outcome",)
    )
    labelled.labels(outcome="valid").inc(7 * scale)
    labelled.labels(outcome="invalid").inc(2 * scale)
    gauge = registry.gauge("stream_queue_depth", "Queue depth.")
    gauge.labels().set_to(5.0 * scale)
    hist = registry.histogram(
        "stream_seal_latency_seconds",
        "Seal-to-verdict latency.",
        (),
        (0.001, 0.01, 0.1, 1.0),
    )
    child = hist.labels()
    for value in (0.0005, 0.005, 0.005, 0.05, 2.0):
        for _ in range(scale):
            child.observe(value)
    return registry


def _samples(text):
    return sorted(parse_exposition(text))


class TestRoundTrip:
    def test_exposition_round_trips_exactly(self):
        original = _sample_registry()
        text = original.render()
        rebuilt = registry_from_exposition(text)
        assert rebuilt.render() == text

    def test_histogram_buckets_survive(self):
        rebuilt = registry_from_exposition(_sample_registry().render())
        buckets = {
            tuple(pairs): value
            for name, pairs, value in parse_exposition(rebuilt.render())
            if name == "stream_seal_latency_seconds_bucket"
        }
        # Cumulative counts: 1 <= .001, 3 <= .01, 4 <= .1, 4 <= 1, 5 total.
        assert buckets[(("le", "0.001"),)] == 1
        assert buckets[(("le", "0.01"),)] == 3
        assert buckets[(("le", "0.1"),)] == 4
        assert buckets[(("le", "+Inf"),)] == 5

    def test_unknown_family_kind_rejected(self):
        text = "# TYPE weird summary\nweird 1\n"
        with pytest.raises(ValueError, match="unsupported family kind"):
            registry_from_exposition(text)

    def test_sample_without_metadata_rejected(self):
        with pytest.raises(ValueError, match="no # TYPE metadata"):
            registry_from_exposition("orphan_total 3\n")

    def test_empty_exposition(self):
        empty = MetricsRegistry().render()
        assert registry_from_exposition("").render() == empty


class TestMerge:
    def test_counters_add_histograms_add_bucketwise(self):
        merged = merge_expositions(
            [_sample_registry(1).render(), _sample_registry(2).render()]
        )
        samples = dict(
            ((name, tuple(pairs)), value)
            for name, pairs, value in parse_exposition(merged.render())
        )
        assert samples[("stream_updates_total", ())] == 300
        assert samples[("engine_verdicts_total", (("outcome", "valid"),))] == 21
        assert samples[("stream_seal_latency_seconds_count", ())] == 15
        assert (
            samples[("stream_seal_latency_seconds_bucket", (("le", "0.01"),))] == 9
        )

    def test_merge_into_existing_registry(self):
        into = _sample_registry(1)
        merge_expositions([_sample_registry(1).render()], into=into)
        samples = dict(
            ((name, tuple(pairs)), value)
            for name, pairs, value in parse_exposition(into.render())
        )
        assert samples[("stream_updates_total", ())] == 200

    def test_merge_of_nothing_is_empty(self):
        assert merge_expositions([]).render() == MetricsRegistry().render()
