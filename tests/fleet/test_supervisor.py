"""Supervisor integration tests: crash recovery, quarantine, stores.

These drive real worker processes.  Fleets are kept small (tenants of
8-16 nodes, a handful of epochs) so the suite stays in tier-1 time,
but every failure path exercised here is the one E19 leans on at
100 tenants.
"""

import os

import pytest

from repro.fleet import (
    AdmissionPolicy,
    FleetConfig,
    FleetSupervisor,
    TenantSpec,
    run_tenant,
)
from repro.fleet.spec import synthetic_fleet, tenant_store_path


class TestCrashRecovery:
    def test_worker_crash_no_verdict_loss_or_duplication(self):
        """Hard-kill the only worker mid-epoch; every tenant still ends
        with exactly one digest per epoch, and the rescheduled run's
        overlap is fingerprint-identical to a standalone run."""
        specs = [
            TenantSpec(tenant="t0", nodes=16, epochs=25, seed=1),
            TenantSpec(tenant="t1", nodes=16, epochs=25, seed=2),
        ]
        config = FleetConfig(workers=1, chaos_crash=(0, 2))
        result = FleetSupervisor(specs, config).run()

        assert result.crashes == 1
        assert result.statuses() == {"done": 2}
        for spec in specs:
            summary = result.tenants[spec.tenant]
            assert summary.reschedules >= 1
            # No loss, no duplication: one digest per epoch timestamp.
            timestamps = [d.timestamp for d in summary.digests]
            assert len(timestamps) == len(set(timestamps)) == spec.epochs
            # Byte-identical to an untroubled standalone run.
            standalone = run_tenant(spec)
            assert [d.fingerprint for d in summary.digests] == [
                d.fingerprint for d in standalone.digests
            ]

    def test_crash_with_spare_worker_keeps_fleet_moving(self):
        specs = [
            TenantSpec(tenant="t0", nodes=12, epochs=15, seed=1),
            TenantSpec(tenant="t1", nodes=12, epochs=15, seed=2),
        ]
        config = FleetConfig(workers=2, chaos_crash=(0, 2))
        result = FleetSupervisor(specs, config).run()
        assert result.crashes == 1
        assert result.statuses() == {"done": 2}
        for summary in result.tenants.values():
            assert len(summary.digests) == 15


class TestQuarantine:
    def test_duplicate_storm_tenant_evicted_healthy_unharmed(self):
        """A tenant whose feed duplicates 90% of deliveries is evicted;
        healthy tenants complete with full digest sets."""
        specs = [
            TenantSpec(tenant="bad", nodes=10, epochs=8, seed=1, duplicate=0.9),
            TenantSpec(tenant="good-a", nodes=10, epochs=8, seed=2),
            TenantSpec(tenant="good-b", nodes=10, epochs=8, seed=3),
        ]
        policy = AdmissionPolicy(
            max_duplicates_per_epoch=0, sustain_epochs=2, max_readmissions=0
        )
        config = FleetConfig(workers=2, admission=policy)
        result = FleetSupervisor(specs, config).run()

        assert result.tenants["bad"].status == "evicted"
        assert result.admission["bad"]["status"] == "evicted"
        for tenant in ("good-a", "good-b"):
            summary = result.tenants[tenant]
            assert summary.status == "done"
            assert len(summary.digests) == 8
            # Healthy tenants' digests are unaffected by the eviction.
            standalone = run_tenant(result_spec(specs, tenant))
            assert [d.fingerprint for d in summary.digests] == [
                d.fingerprint for d in standalone.digests
            ]

    def test_readmitted_tenant_gets_fresh_run(self):
        """Quarantine with a short cooldown: the tenant is readmitted,
        re-runs from scratch, and (still misbehaving) is evicted --
        the flap ladder terminates."""
        specs = [
            TenantSpec(tenant="flappy", nodes=10, epochs=6, seed=1, duplicate=0.9),
            TenantSpec(tenant="steady", nodes=10, epochs=20, seed=2),
        ]
        policy = AdmissionPolicy(
            max_duplicates_per_epoch=0,
            sustain_epochs=2,
            cooldown_epochs=3,
            max_readmissions=1,
        )
        result = FleetSupervisor(specs, FleetConfig(workers=2, admission=policy)).run()
        flappy = result.admission["flappy"]
        assert flappy["readmissions"] == 1
        assert flappy["quarantines"] == 2
        assert result.tenants["flappy"].status == "evicted"
        steady = result.tenants["steady"]
        assert steady.status == "done"
        assert len(steady.digests) == 20


class TestStores:
    def test_store_per_tenant_layout(self, tmp_path):
        store_dir = str(tmp_path / "stores")
        specs = synthetic_fleet(3, nodes=8, epochs=3, seed=4, history=True)
        config = FleetConfig(workers=2, store_dir=store_dir)
        result = FleetSupervisor(specs, config).run()
        assert result.statuses() == {"done": 3}
        for spec in specs:
            path = tenant_store_path(store_dir, spec.tenant)
            assert result.tenants[spec.tenant].store_path == path
            assert os.path.exists(path)

    def test_store_bytes_deterministic_across_runs(self, tmp_path):
        spec = TenantSpec(tenant="t0", nodes=8, epochs=3, seed=4, history=True)
        blobs = []
        for run in ("a", "b"):
            store_dir = str(tmp_path / run)
            config = FleetConfig(workers=1, store_dir=store_dir)
            result = FleetSupervisor([spec], config).run()
            assert result.statuses() == {"done": 1}
            with open(tenant_store_path(store_dir, "t0"), "rb") as handle:
                blobs.append(handle.read())
        assert blobs[0] == blobs[1]


class TestManifest:
    def test_write_manifest(self, tmp_path):
        specs = synthetic_fleet(2, nodes=8, epochs=2, seed=9)
        result = FleetSupervisor(specs, FleetConfig(workers=1)).run()
        manifest = result.write_manifest(str(tmp_path))
        import json

        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["statuses"] == {"done": 2}
        assert payload["total_epochs_sealed"] == 4
        prom = (tmp_path / "fleet.prom").read_text()
        assert "stream_updates_total" in prom

    def test_duplicate_tenant_ids_rejected(self):
        specs = [TenantSpec(tenant="t0"), TenantSpec(tenant="t0")]
        with pytest.raises(ValueError, match="duplicate tenant"):
            FleetSupervisor(specs)


def result_spec(specs, tenant):
    return next(s for s in specs if s.tenant == tenant)
