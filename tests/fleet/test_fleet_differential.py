"""The in-fleet vs standalone differential (acceptance bar).

Catalog scenarios run as fleet tenants must produce digests --
verdicts, provenance, fingerprints -- identical to the same spec run
standalone through :func:`repro.fleet.scenario.run_tenant`, and the
standalone digests must in turn match a direct single-engine batch
run.  Both engine modes and both backends are covered, so the full
chain batch == standalone stream == in-fleet holds for every combo.

One supervisor run carries the whole matrix (3 scenarios x 2 modes x
2 backends = 12 tenants over 2 workers) -- the differential is
per-tenant, so multiplexing them is itself part of the test: tenants
must not bleed into each other's verdicts.
"""

import pytest

from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    TenantSpec,
    digest_report,
    run_tenant,
)
from repro.scenarios.catalog import scenario_by_id

SCENARIOS = ("S01", "S08", "S16")
EPOCHS = 3


def _matrix_specs():
    specs = []
    for scenario in SCENARIOS:
        for mode in ("full", "incremental"):
            for backend in ("python", "vector"):
                specs.append(
                    TenantSpec(
                        tenant=f"{scenario}-{mode}-{backend}",
                        scenario=scenario,
                        epochs=EPOCHS,
                        seed=11,
                        mode=mode,
                        backend=backend,
                    )
                )
    return specs


@pytest.fixture(scope="module")
def fleet_result():
    specs = _matrix_specs()
    supervisor = FleetSupervisor(specs, FleetConfig(workers=2))
    return supervisor.run()


def test_all_matrix_tenants_complete(fleet_result):
    assert fleet_result.statuses() == {"done": len(SCENARIOS) * 4}
    assert fleet_result.errors == []
    assert fleet_result.crashes == 0
    for summary in fleet_result.tenants.values():
        assert summary.epochs_sealed == EPOCHS
        assert len(summary.digests) == EPOCHS


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("mode", ["full", "incremental"])
@pytest.mark.parametrize("backend", ["python", "vector"])
def test_in_fleet_matches_standalone(fleet_result, scenario, mode, backend):
    """Fleet digests byte-match a standalone run of the same spec."""
    tenant = f"{scenario}-{mode}-{backend}"
    spec = TenantSpec(
        tenant=tenant,
        scenario=scenario,
        epochs=EPOCHS,
        seed=11,
        mode=mode,
        backend=backend,
    )
    standalone = run_tenant(spec)
    in_fleet = fleet_result.tenants[tenant].digests
    assert len(in_fleet) == len(standalone.digests) == EPOCHS
    for fleet_digest, solo_digest in zip(in_fleet, standalone.digests):
        assert fleet_digest.fingerprint == solo_digest.fingerprint
        assert fleet_digest.verdicts == solo_digest.verdicts
        assert fleet_digest.provenance_json == solo_digest.provenance_json


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fleet_matches_single_engine_batch(fleet_result, scenario):
    """Fleet verdicts and provenance == a direct batch engine run.

    This anchors the differential chain: the world's own ``run_epoch``
    reports (single engine, no streaming, no fleet) digest to the same
    verdict and provenance payloads the fleet shipped.
    """
    for mode in ("full", "incremental"):
        for backend in ("python", "vector"):
            tenant = f"{scenario}-{mode}-{backend}"
            in_fleet = fleet_result.tenants[tenant].digests
            batch_world = scenario_by_id(scenario).build(seed=11)
            for index, fleet_digest in enumerate(in_fleet):
                outcome = batch_world.run_epoch(timestamp=float(index) * 10.0)
                batch = digest_report(tenant, _BatchEpoch(outcome), outcome.report)
                assert fleet_digest.verdicts == batch.verdicts, (
                    f"{tenant} epoch {index}: verdicts diverged from batch"
                )
                assert fleet_digest.provenance_json == batch.provenance_json, (
                    f"{tenant} epoch {index}: provenance diverged from batch"
                )


class _BatchEpoch:
    """Adapts a batch EpochOutcome to digest_report's epoch interface."""

    def __init__(self, outcome):
        self.timestamp = outcome.snapshot.timestamp
        self.sealed_by = "watermark"
        self.complete = True
        self.updates = 0
        self.duplicates = 0
        self.missing = ()


def test_fleet_run_is_deterministic():
    """Two supervisor runs of the same small fleet produce identical
    digest fingerprints in identical order (deterministic drain)."""
    specs = [
        TenantSpec(tenant="S01-a", scenario="S01", epochs=2, seed=5),
        TenantSpec(tenant="S16-b", scenario="S16", epochs=2, seed=5),
        TenantSpec(tenant="syn-c", nodes=8, epochs=3, seed=5),
    ]
    first = FleetSupervisor(specs, FleetConfig(workers=2)).run()
    second = FleetSupervisor(specs, FleetConfig(workers=2)).run()
    assert first.statuses() == second.statuses() == {"done": 3}
    for tenant in first.tenants:
        a = [d.fingerprint for d in first.tenants[tenant].digests]
        b = [d.fingerprint for d in second.tenants[tenant].digests]
        assert a == b and a
