"""Digest and spec unit tests: fingerprint semantics, spec validation."""

import dataclasses

import pytest

from repro.fleet.digest import digest_report
from repro.fleet.spec import (
    FleetConfig,
    TenantSpec,
    synthetic_fleet,
    tenant_store_path,
)
from repro.scenarios.catalog import scenario_by_id


def _epoch_and_report(seed=3):
    from repro.stream import EpochAssembler, StreamPipeline, make_feeds

    world = scenario_by_id("S01").build(seed=seed)
    outcome = world.run_epoch(timestamp=0.0)
    epochs = [(0.0, outcome.snapshot)]
    feeds = make_feeds(epochs)
    from repro.engine import ValidationEngine

    assembler = EpochAssembler(list(feeds), lateness_s=1.0)
    with ValidationEngine(world.topology, config=world.hodor_config) as engine:
        result = StreamPipeline(
            list(feeds.values()),
            assembler,
            engine,
            inputs_for={0.0: outcome.inputs},
        ).run()
    return result.epochs[0], result.reports[0]


class TestDigest:
    def test_fingerprint_stable_across_calls(self):
        epoch, report = _epoch_and_report()
        a = digest_report("t0", epoch, report, latency_s=0.1)
        b = digest_report("t0", epoch, report, latency_s=9.9)
        assert a.fingerprint == b.fingerprint  # latency excluded
        assert a.latency_s != b.latency_s

    def test_fingerprint_covers_tenant(self):
        epoch, report = _epoch_and_report()
        a = digest_report("t0", epoch, report)
        b = digest_report("t1", epoch, report)
        assert a.fingerprint != b.fingerprint

    def test_fingerprint_covers_epoch_counters(self):
        epoch, report = _epoch_and_report()
        a = digest_report("t0", epoch, report)
        bumped = dataclasses.replace(epoch, duplicates=epoch.duplicates + 1)
        b = digest_report("t0", bumped, report)
        assert a.fingerprint != b.fingerprint

    def test_digest_carries_sorted_verdicts_and_counters(self):
        epoch, report = _epoch_and_report()
        digest = digest_report("t0", epoch, report)
        names = [v[0] for v in digest.verdicts]
        assert names == sorted(names)
        assert set(names) == set(report.verdicts)
        assert digest.updates == epoch.updates
        assert digest.complete == epoch.complete
        assert digest.violations == sum(
            v.num_violations for v in report.verdicts.values()
        )
        assert digest.detected == report.detected_anything()
        payload = digest.to_dict()
        assert payload["fingerprint"] == digest.fingerprint
        assert payload["verdicts"] == [list(v) for v in digest.verdicts]


class TestSpec:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            TenantSpec(tenant="")
        with pytest.raises(ValueError, match="must not contain"):
            TenantSpec(tenant="a/b")
        with pytest.raises(ValueError, match="unknown mode"):
            TenantSpec(tenant="t0", mode="turbo")
        with pytest.raises(ValueError, match="unknown backend"):
            TenantSpec(tenant="t0", backend="gpu")
        with pytest.raises(ValueError, match="epochs"):
            TenantSpec(tenant="t0", epochs=0)
        with pytest.raises(ValueError, match="nodes"):
            TenantSpec(tenant="t0", nodes=1)

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            FleetConfig(workers=0)
        with pytest.raises(ValueError, match="poll_s"):
            FleetConfig(poll_s=0.0)

    def test_spec_pickles_small(self):
        import pickle

        spec = TenantSpec(tenant="t0", nodes=200, epochs=1000)
        blob = pickle.dumps(spec)
        assert len(blob) < 1024  # specs travel by value, cheaply
        assert pickle.loads(blob) == spec

    def test_synthetic_fleet_seeds_decorrelated(self):
        fleet = synthetic_fleet(5, nodes=12, epochs=4, seed=3)
        assert [s.tenant for s in fleet] == [f"t{i:04d}" for i in range(5)]
        seeds = [s.seed for s in fleet]
        assert len(set(seeds)) == 5
        assert all(s.nodes == 12 and s.epochs == 4 for s in fleet)

    def test_tenant_store_path_layout(self):
        assert tenant_store_path("/x/stores", "t0001") == "/x/stores/t0001.sqlite"
