"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import ProbeEngine
from repro.topologies.abilene import abilene
from repro.topologies.synthetic import fig3_demand, fig3_network, line_topology


@pytest.fixture
def abilene_topo():
    return abilene()


@pytest.fixture
def abilene_demand(abilene_topo):
    """Unsaturated gravity demand over Abilene (MLU well below 1)."""
    return gravity_demand(
        abilene_topo.node_names(), total=30.0, seed=7, weights={"atlam": 0.15}
    )


@pytest.fixture
def abilene_truth(abilene_topo, abilene_demand):
    return NetworkSimulator(abilene_topo, abilene_demand).run()


@pytest.fixture
def clean_snapshot(abilene_truth):
    """Jitter-free snapshot with probes, ideal for exact assertions."""
    collector = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=1))
    return collector.collect(abilene_truth)


@pytest.fixture
def noisy_snapshot(abilene_truth):
    """Realistic 1%-jitter snapshot."""
    collector = TelemetryCollector(Jitter(0.01, seed=3), probe_engine=ProbeEngine(seed=1))
    return collector.collect(abilene_truth)


@pytest.fixture
def fig3_topo():
    return fig3_network()


@pytest.fixture
def fig3_matrix():
    return fig3_demand()


@pytest.fixture
def fig3_truth(fig3_topo, fig3_matrix):
    return NetworkSimulator(fig3_topo, fig3_matrix, strategy="single").run()


@pytest.fixture
def fig3_snapshot(fig3_truth):
    return TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(
        fig3_truth
    )


@pytest.fixture
def line5():
    return line_topology(5, capacity=100.0)
