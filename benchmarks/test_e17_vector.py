"""E17: the array-compiled vector backend at WAN scale.

PR 7's tentpole compiles the topology once into indexed numpy arrays
(:mod:`repro.core.vector`) and re-expresses the hot validation stages
as array math, with the per-entity units kept as the differential
oracle.  This bench prices that trade on two workload shapes and then
pushes the backend past the sizes the python path can sustain:

- **E9 shape** (steady replay, 80 nodes): the identical snapshot
  object replayed every epoch, the always-on engine's baseline
  workload.  Acceptance bar: the vector backend is >= 10x faster per
  epoch than the python full path.
- **E13 shape** (10% link churn, 80 nodes): the production steady
  state between two 30-second collections.  Acceptance bar: >= 4x
  (measured ~7x; the per-entity incremental mode's own bar on this
  stream is 3x).
- **Scale sweep** (200 / 500 / 1000 nodes, 10% churn): epochs/s and
  per-epoch p99 for the vector backend, with a bounded python
  reference column (one timed epoch) -- the sweep's acceptance bar is
  that a 1000-node epoch completes at all and the vector path wins at
  every size.

Report equality across backends is the differential harness's job
(``tests/engine/test_vector.py``); this file measures pure cost.
"""

from repro.experiments import ScaleStudy, format_table


def _table(rows):
    return format_table(
        [
            "nodes",
            "links",
            "churn",
            "python (ms)",
            "vector (ms)",
            "p99 (ms)",
            "speedup",
            "epochs/s",
            "reuse",
        ],
        [
            [
                row.nodes,
                row.links,
                f"{row.churn:.0%}",
                f"{row.python_ms:.1f}",
                f"{row.vector_ms:.2f}",
                f"{row.p99_ms:.2f}",
                f"{row.speedup:.1f}x",
                f"{row.epochs_per_s:.0f}",
                f"{row.reuse_rate:.0%}",
            ]
            for row in rows
        ],
    )


def test_vector_acceptance_at_80(benchmark, write_result):
    study = ScaleStudy(seed=0, repetitions=3)

    def run():
        replay = study.run_vector(sizes=(80,), epochs=10, churn=0.0)
        churned = study.run_vector(sizes=(20, 40, 80), epochs=10, churn=0.10)
        return replay + churned

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result("E17_vector", _table(rows))

    replay_80 = rows[0]
    assert replay_80.nodes == 80 and replay_80.churn == 0.0
    # Acceptance bar: >= 10x on the E9 steady-replay shape at 80 nodes.
    assert replay_80.speedup >= 10.0, (
        f"vector replay speedup {replay_80.speedup:.2f}x < 10x"
    )

    churned_80 = rows[-1]
    assert churned_80.nodes == 80 and churned_80.churn == 0.10
    # E13 shape: >= 4x against the python FULL path (the incremental
    # mode's own bar on this stream is 3x against the same baseline).
    assert churned_80.speedup >= 4.0, (
        f"vector churn speedup {churned_80.speedup:.2f}x < 4x"
    )
    assert churned_80.reuse_rate > 0.5


def test_e17_scale_sweep(benchmark, write_result):
    """200/500/1000 nodes: the sizes the ROADMAP's north star names.

    Bounded for CI: one repetition, three timed vector epochs, one
    timed python reference epoch per size.  The hard acceptance is
    completion -- a 1000-node epoch through the compiled path -- plus
    the vector backend beating the python reference at every size.
    """
    study = ScaleStudy(seed=0, repetitions=1)
    rows = benchmark.pedantic(
        lambda: study.run_vector(
            sizes=(200, 500, 1000),
            epochs=3,
            churn=0.10,
            python_epochs=1,
            fixture="sparse",
        ),
        rounds=1,
        iterations=1,
    )
    write_result("E17_vector_scale", _table(rows))

    assert [row.nodes for row in rows] == [200, 500, 1000]
    for row in rows:
        assert row.vector_ms > 0.0  # the epoch completed
        assert row.speedup > 1.0, (
            f"vector slower than python at {row.nodes} nodes "
            f"({row.vector_ms:.1f}ms vs {row.python_ms:.1f}ms)"
        )
