"""E13: incremental epochs vs full recompute under steady-state churn.

The production steady state between two 30-second WAN collections moves
only a small fraction of signals; the incremental engine
(:mod:`repro.engine.incremental`) makes epoch cost track that churn
instead of network size.  This bench replays identical churned epoch
streams through ``mode="full"`` and ``mode="incremental"`` engines and
asserts the acceptance bar: at 80 nodes and 10% link churn the
incremental path is at least 3x faster per epoch.  Report equality is
the differential harness's job (``tests/engine/test_incremental.py``);
this file measures pure cost.
"""

from repro.experiments import ScaleStudy, format_table

SIZES = (20, 40, 80)
EPOCHS = 10
CHURN = 0.10


def test_incremental_vs_full_sweep(benchmark, write_result):
    study = ScaleStudy(seed=0, repetitions=3)
    rows = benchmark.pedantic(
        lambda: study.run_incremental(sizes=SIZES, epochs=EPOCHS, churn=CHURN),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        [
            "nodes",
            "links",
            "epochs",
            "churn",
            "full (ms)",
            "incremental (ms)",
            "speedup",
            "reuse",
        ],
        [
            [
                row.nodes,
                row.links,
                row.epochs,
                f"{row.churn:.0%}",
                f"{row.full_ms:.1f}",
                f"{row.incremental_ms:.1f}",
                f"{row.speedup:.1f}x",
                f"{row.reuse_rate:.0%}",
            ]
            for row in rows
        ],
    )
    write_result("E13_incremental", table)

    at_80 = rows[-1]
    assert at_80.nodes == 80
    # Acceptance bar: >= 3x per-epoch speedup at 80 nodes, 10% churn.
    assert at_80.speedup >= 3.0, f"incremental speedup {at_80.speedup:.2f}x < 3x"
    # Reuse should dominate at 10% churn -- most entities are clean.
    assert at_80.reuse_rate > 0.5
    benchmark.extra_info["full_ms_at_80"] = at_80.full_ms
    benchmark.extra_info["incremental_ms_at_80"] = at_80.incremental_ms
    benchmark.extra_info["speedup_at_80"] = at_80.speedup
    benchmark.extra_info["reuse_rate_at_80"] = at_80.reuse_rate
