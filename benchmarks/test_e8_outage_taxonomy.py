"""E8 / the Section 2 root-cause taxonomy.

Paper: "incorrect inputs caused over one third of all major outages
over the past five years."  Our synthetic corpus is the substitution
for that proprietary dataset: this bench verifies the corpus covers
every Section 2 category and that the incorrect-input fraction clears
the paper's "over one third" bar, then prints the census table.
"""


from repro.experiments import format_percent, format_table, taxonomy_census
from repro.scenarios.catalog import Category, all_scenarios


def test_taxonomy_census(benchmark, write_result):
    census = benchmark(taxonomy_census)
    scenarios = all_scenarios()
    total = sum(census.values())

    assert total == len(scenarios)
    for category in (
        Category.ROUTER_TELEMETRY,
        Category.ROUTER_INTENT,
        Category.CONTROL_AGGREGATION,
        Category.EXTERNAL_INPUT,
    ):
        assert census[category] >= 2, f"need >= 2 scenarios of {category}"

    incorrect_inputs = total - census[Category.LEGITIMATE]
    assert incorrect_inputs / total > 1 / 3  # paper: "over one third"

    table = format_table(
        ["root-cause category", "paper section", "scenarios", "share"],
        [
            [
                Category.ROUTER_TELEMETRY,
                "2.1 telemetry bugs",
                census[Category.ROUTER_TELEMETRY],
                format_percent(census[Category.ROUTER_TELEMETRY] / total, 0),
            ],
            [
                Category.ROUTER_INTENT,
                "2.1 incorrect intent",
                census[Category.ROUTER_INTENT],
                format_percent(census[Category.ROUTER_INTENT] / total, 0),
            ],
            [
                Category.CONTROL_AGGREGATION,
                "2.2 control-plane bugs",
                census[Category.CONTROL_AGGREGATION],
                format_percent(census[Category.CONTROL_AGGREGATION] / total, 0),
            ],
            [
                Category.EXTERNAL_INPUT,
                "2.2 external input",
                census[Category.EXTERNAL_INPUT],
                format_percent(census[Category.EXTERNAL_INPUT] / total, 0),
            ],
            [
                Category.LEGITIMATE,
                "1 (disaster false-positive probe)",
                census[Category.LEGITIMATE],
                format_percent(census[Category.LEGITIMATE] / total, 0),
            ],
        ],
    )
    write_result("E8_taxonomy", table)
    benchmark.extra_info["incorrect_input_share"] = incorrect_inputs / total
