"""E10 / Section 3.1: the general (unsupervised) approach vs Hodor.

The paper sketches a design-space alternative -- mine invariants from
historical bundles with no system knowledge -- and predicts its failure
mode: spurious relationships that held during observation (a drained
POP's counters all equal) break on legitimate state changes.

This bench runs the simplest such miner on real telemetry bundles:

1. It *does* rediscover the true R1 symmetry invariants from clean
   history (the approach is not a strawman).
2. Trained during a drained period, it learns the spurious POP
   equalities and floods false positives the moment the region is
   undrained -- while Hodor, whose invariants come from system
   knowledge, accepts the same healthy epoch.
"""


from repro.baselines.correlation_miner import CorrelationMiner
from repro.core import Hodor
from repro.net.demand import gravity_demand
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Node
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.paths import SignalKind, SignalPath
from repro.topologies.abilene import abilene

DRAINED_REGION = ("sttl", "snva")
EPOCHS = 5


def _topo(drained=()):
    topo = abilene()
    for name in drained:
        node = topo.node(name)
        topo.replace_node(Node(name, site=node.site, drained=True))
    return topo


def _bundle(topo, seed, drained=()):
    demand = gravity_demand(
        topo.node_names(),
        total=30.0 * (1 + 0.08 * (seed % 5)),
        seed=seed,
        weights={"atlam": 0.15},
    )
    if drained:
        reduced = demand.copy()
        for name in drained:
            for other in demand.nodes:
                if other != name:
                    reduced[name, other] = 0.0
                    reduced[other, name] = 0.0
        demand = reduced
    truth = NetworkSimulator(topo, demand).run()
    snapshot = TelemetryCollector(Jitter(0.003, seed=seed)).collect(truth)
    return demand, snapshot


def test_general_vs_specialized(benchmark, write_result):
    # Train the miner on a history where the western region is drained.
    drained_topo = _topo(DRAINED_REGION)
    miner = CorrelationMiner(tolerance=0.02, min_epochs=3)
    for epoch in range(EPOCHS):
        _demand, snapshot = _bundle(drained_topo, epoch, drained=DRAINED_REGION)
        miner.observe(snapshot.flatten())
    mined = benchmark.pedantic(miner.mine, rounds=1, iterations=1)

    # Sanity: the miner rediscovers genuine R1 pairs from the same data.
    tx = SignalPath(SignalKind.TX_RATE, "atla", "hstn").render()
    rx = SignalPath(SignalKind.RX_RATE, "hstn", "atla").render()
    pairs = {(inv.left, inv.right) for inv in mined}
    assert (min(tx, rx), max(tx, rx)) in pairs

    # The undrained, perfectly healthy epoch:
    healthy_topo = _topo()
    demand, snapshot = _bundle(healthy_topo, seed=77)
    miner_violations = miner.check(snapshot.flatten())
    hodor_report = Hodor(healthy_topo).validate_demand(snapshot, demand)

    assert miner_violations, "spurious invariants must break on undrain"
    assert hodor_report.all_valid, "Hodor must accept the healthy epoch"

    spurious = [
        inv
        for inv in mined
        if any(n in inv.left for n in DRAINED_REGION)
        and any(n in inv.right for n in DRAINED_REGION)
        and inv.left.split("name=")[-1] != inv.right.split("name=")[-1]
    ]
    lines = [
        f"mined invariants from drained-region history : {len(mined)}",
        f"  of which inside the drained region          : {len(spurious)} (spurious)",
        f"violations on the healthy undrained epoch     : {len(miner_violations)} (all false positives)",
        "hodor verdict on the same epoch               : accepted (0 violations)",
        "",
        "paper, Section 3.1: unsupervised methods 'may capture spurious",
        "relationships that, while true during the historical observation",
        "period, are not fundamental to the system's operation.'",
    ]
    write_result("E10_general_vs_specialized", "\n".join(lines))
    benchmark.extra_info["false_positives"] = len(miner_violations)
