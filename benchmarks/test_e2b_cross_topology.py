"""E2b / Section 6: does the approach generalize beyond Abilene?

The paper's closing questions include whether the approach applies to
other environments.  Within the WAN setting we can answer the
topology-generality half: the same demand invariants, with the same
tau_e, run over GEANT (22 nodes, richer mesh) and the B4-like
inter-datacenter WAN -- detection shape must hold everywhere, because
the invariants derive from flow conservation, not from anything
Abilene-specific.
"""


from repro.experiments import PerturbationStudy, format_percent, format_table
from repro.topologies import abilene, b4, geant

TOPOLOGIES = [
    ("abilene", abilene, 12.0),
    ("geant", geant, 14.0),
    ("b4", b4, 400.0),
]


def test_cross_topology_detection(benchmark, write_result):
    def run_all():
        rows = []
        for name, factory, total in TOPOLOGIES:
            study = PerturbationStudy(
                topology=factory(), demand_total=total, matrices=5, seed=0
            )
            results = study.run(zero_counts=(1, 2, 3), trials=120)
            fp = study.false_positive_rate()
            rows.append((name, results, fp))
        return rows

    all_rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table_rows = []
    for name, results, fp in all_rows:
        by_zeroed = {row.zeroed: row.detection_rate for row in results}
        # The paper shape holds on every topology.
        assert by_zeroed[2] >= 0.93, (name, by_zeroed)
        assert by_zeroed[3] >= 0.97, (name, by_zeroed)
        assert fp == 0.0, name
        table_rows.append(
            [
                name,
                format_percent(by_zeroed[1]),
                format_percent(by_zeroed[2]),
                format_percent(by_zeroed[3]),
                format_percent(fp),
            ]
        )

    table = format_table(
        ["topology", "k=1", "k=2", "k=3", "false positives"], table_rows
    )
    write_result("E2b_cross_topology", table)
