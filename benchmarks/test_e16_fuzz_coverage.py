"""E16: fuzz coverage and mutation kill.

The scenario fuzzer is the repo's first harness that *searches* for
bugs instead of pinning known ones, so its own value needs measuring:

* a seed-pinned 40-case campaign must run green on the current tree
  while exercising the whole injector palette (coverage);
* a deliberately planted mode-divergence bug -- one verdict flipped in
  one execution path via the oracle's hooks seam -- must be found
  within the campaign and shrunk to the acceptance bounds of at most
  3 epochs and at most 2 faults (mutation kill), for each of the
  three execution paths.

Case caps, not wall-clock budgets, bound the campaign, so every
number here is machine-independent.
"""

from repro.experiments import FuzzCoverageStudy, format_table

CASES = 40
MUTATION_MAX_CASES = 60
MODES = ("full", "incremental", "streamed")


def test_fuzz_coverage_and_mutation_kill(benchmark, write_result):
    study = FuzzCoverageStudy(seed=0)

    def run():
        report, census = study.run_coverage(cases=CASES)
        mutation = study.run_mutation(modes=MODES, max_cases=MUTATION_MAX_CASES)
        return report, census, mutation

    report, census, mutation = benchmark.pedantic(run, rounds=1, iterations=1)

    census_table = format_table(
        ["fault kind", "cases"],
        [[row.fault, row.cases] for row in census],
    )
    mutation_table = format_table(
        ["planted in", "cases to find", "epochs", "faults", "oracle checks"],
        [
            [
                row.mode,
                row.cases_to_find,
                row.shrunk_epochs,
                row.shrunk_faults,
                row.checks,
            ]
            for row in mutation
        ],
    )
    write_result(
        "E16_fuzz_coverage",
        f"campaign: {report.cases} cases, {report.failures} failures, "
        f"{len(census)} distinct fault kinds\n\n"
        f"{census_table}\n\nmutation kill\n{mutation_table}",
    )

    # The current tree is green under tri-modal fuzzing.
    assert report.cases == CASES
    assert report.failures == 0
    # The generator exercises a broad slice of the palette.
    assert len(census) >= 12
    # Every planted mode-divergence is found and shrunk within the
    # acceptance bounds (<= 3 epochs, <= 2 faults).
    assert len(mutation) == len(MODES)
    for row in mutation:
        assert row.cases_to_find > 0, f"{row.mode}: planted bug never found"
        assert row.shrunk_epochs <= 3, row
        assert row.shrunk_faults <= 2, row
        assert row.reductions > 0, row
