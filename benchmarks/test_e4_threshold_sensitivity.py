"""E4 / footnote 2: the hardening threshold tau_h = 2%.

Paper: "This threshold depends on the network sampling frequency and
traffic patterns.  Based on production logs, we find 2% to be an
appropriate threshold."

Regenerated as two sweeps:

- false-positive rate of R1 flagging on clean snapshots, over
  (tau_h, jitter) -- at ~1% per-reading jitter (the production-like
  operating point), tau_h = 2% produces essentially no false flags
  while tau_h = 0.5% drowns in them;
- detection rate of a single corrupted counter vs corruption size --
  the minimum detectable error tracks tau_h.
"""

import pytest

from repro.experiments import ThresholdStudy, format_percent, format_table


@pytest.fixture(scope="module")
def study():
    return ThresholdStudy(seed=0)


def test_false_positive_sweep(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.false_positive_sweep(
            tau_values=(0.005, 0.01, 0.02, 0.05),
            jitters=(0.005, 0.01, 0.02, 0.04),
            trials=4,
        ),
        rounds=1,
        iterations=1,
    )
    cell = {(row.tau_h, row.jitter): row.false_positive_rate for row in rows}

    # The paper's operating point: tau_h=2% at ~1% jitter is clean.
    assert cell[(0.02, 0.01)] <= 0.02
    # A too-tight threshold misfires at the same jitter.
    assert cell[(0.005, 0.01)] > cell[(0.02, 0.01)]
    # More jitter means more false flags at fixed tau_h.
    assert cell[(0.02, 0.04)] >= cell[(0.02, 0.01)]

    taus = sorted({row.tau_h for row in rows})
    jitters = sorted({row.jitter for row in rows})
    table = format_table(
        ["tau_h \\ jitter"] + [f"{j:g}" for j in jitters],
        [
            [f"{tau:g}"] + [format_percent(cell[(tau, j)]) for j in jitters]
            for tau in taus
        ],
    )
    write_result("E4_false_positives", table)
    benchmark.extra_info["fp_at_paper_point"] = cell[(0.02, 0.01)]


def test_threshold_calibration(benchmark, write_result):
    """Footnote 2's procedure itself: calibrate tau_h from clean logs.

    History with ~1% per-reading jitter recommends ~2% -- the paper's
    number -- and the recommendation tracks the telemetry noise.
    """
    from repro.core import calibrate_tau_h
    from repro.net import NetworkSimulator, gravity_demand
    from repro.telemetry import Jitter, TelemetryCollector
    from repro.topologies import abilene

    def history(jitter, epochs=8):
        topo = abilene()
        snapshots = []
        for epoch in range(epochs):
            demand = gravity_demand(
                topo.node_names(),
                total=30.0 * (1 + 0.05 * (epoch % 4)),
                seed=epoch,
                weights={"atlam": 0.15},
            )
            truth = NetworkSimulator(topo, demand).run()
            snapshots.append(
                TelemetryCollector(Jitter(jitter, seed=epoch)).collect(truth)
            )
        return topo, snapshots

    def calibrate_all():
        rows = []
        for jitter in (0.002, 0.005, 0.01, 0.02):
            topo, snapshots = history(jitter)
            result = calibrate_tau_h(snapshots, topo)
            rows.append((jitter, result))
        return rows

    rows = benchmark.pedantic(calibrate_all, rounds=1, iterations=1)
    by_jitter = {jitter: result for jitter, result in rows}

    # The paper's operating point: ~1% noise -> ~2% threshold.
    assert 0.015 <= by_jitter[0.01].recommended_tau_h <= 0.03
    # Monotone in telemetry noise.
    recommendations = [result.recommended_tau_h for _j, result in rows]
    assert recommendations == sorted(recommendations)

    table = format_table(
        ["per-reading jitter", "recommended tau_h", "paper"],
        [
            [f"{jitter:g}", f"{result.recommended_tau_h:.3f}",
             "2%" if jitter == 0.01 else "-"]
            for jitter, result in rows
        ],
    )
    write_result("E4_calibration", table)


def test_detectability_sweep(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.detectability_sweep(
            tau_values=(0.01, 0.02, 0.05),
            corruptions=(0.01, 0.03, 0.05, 0.1, 0.25, 0.5, 1.0),
            trials=20,
        ),
        rounds=1,
        iterations=1,
    )
    cell = {(row.tau_h, row.corruption): row.detection_rate for row in rows}

    # Corruptions far above tau_h are always caught; below, never.
    assert cell[(0.02, 1.0)] == 1.0
    assert cell[(0.02, 0.5)] == 1.0
    assert cell[(0.02, 0.01)] <= 0.2
    # A looser threshold misses mid-size corruptions a tighter one catches.
    assert cell[(0.05, 0.03)] <= cell[(0.01, 0.03)]

    taus = sorted({row.tau_h for row in rows})
    corruptions = sorted({row.corruption for row in rows})
    table = format_table(
        ["tau_h \\ corruption"] + [f"{c:g}" for c in corruptions],
        [
            [f"{tau:g}"] + [format_percent(cell[(tau, c)], 0) for c in corruptions]
            for tau in taus
        ],
    )
    write_result("E4_detectability", table)
