"""E6 / Section 4.2: link-status truth table and topology validation.

Sweeps every link of Abilene through the failure modes Section 4.2
discusses and scores the hardened verdict per risk profile, plus the
evidence ablation (status only -> +counters -> +probes) that shows why
the manufactured probe signal (R4) is what catches the semantic
"up but not forwarding" bugs.
"""

import pytest

from repro.core.config import RiskProfile
from repro.experiments import FAULT_MODES, TopologyStudy, format_percent, format_table


@pytest.fixture(scope="module")
def study():
    return TopologyStudy(seed=0)


def test_truth_table_accuracy(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.run(modes=FAULT_MODES, profiles=RiskProfile.ALL),
        rounds=1,
        iterations=1,
    )
    cell = {(row.mode, row.risk_profile): row for row in rows}

    # Clean links are never misjudged, whatever the profile.
    for profile in RiskProfile.ALL:
        assert cell[("clean", profile)].accuracy == 1.0
    # The balanced profile resolves every mode on this topology.
    for mode in FAULT_MODES:
        row = cell[(mode, RiskProfile.BALANCED)]
        assert row.correct + row.suspect == row.links
        assert row.accuracy >= 0.9, (mode, row)

    table = format_table(
        ["mode \\ profile"] + list(RiskProfile.ALL),
        [
            [mode]
            + [
                f"{format_percent(cell[(mode, p)].accuracy, 0)}"
                + (f" ({cell[(mode, p)].suspect} suspect)" if cell[(mode, p)].suspect else "")
                for p in RiskProfile.ALL
            ]
            for mode in FAULT_MODES
        ],
    )
    write_result("E6_truth_table", table)


def test_evidence_ablation(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.evidence_ablation(mode="both-lie-up"),
        rounds=1,
        iterations=1,
    )
    # status-only is fooled by the lie; counters catch it on loaded
    # links; probes close the rest.
    accuracies = [row.accuracy for row in rows]
    assert accuracies[0] < accuracies[-1]
    assert accuracies[-1] == 1.0

    table = format_table(
        ["evidence", "accuracy", "suspect"],
        [
            [
                ("status only", "status+counters", "status+counters+probes")[i],
                format_percent(row.accuracy, 0),
                row.suspect,
            ]
            for i, row in enumerate(rows)
        ],
    )
    write_result("E6_evidence_ablation", table)
    benchmark.extra_info["status_only"] = accuracies[0]
    benchmark.extra_info["full_redundancy"] = accuracies[-1]
