"""Shared benchmark fixtures.

Every bench writes its regenerated paper table to ``results/`` next to
this directory, so ``pytest benchmarks/ --benchmark-only`` leaves both
timing numbers (pytest-benchmark) and the human-readable tables that
EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """``write_result(name, text)`` -> saves and echoes a table."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _write
