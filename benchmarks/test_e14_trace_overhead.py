"""E14: observability must be free when off and cheap when on.

The observatory (PR 4) threads a tracer and a metrics registry through
every engine epoch.  The shipped default is
:class:`~repro.obs.trace.NullTracer` -- every instrumentation site
costs one attribute check and one constant-returning call -- so the
acceptance bar is two-sided:

* tracing **off** must be statistically negligible: the NullTracer
  path *is* the default engine hot path, and E13's incremental speedup
  bar (which runs in the same CI job on that exact path) would fail if
  instrumentation had made epochs measurably slower than the PR-3
  baseline it was calibrated against;
* tracing **on** -- full span tree, per-verdict provenance instants,
  latency histograms -- must cost < 10% per epoch at 80 nodes.

The traced run's Chrome trace and Prometheus exposition are written to
``results/`` so the CI bench job archives real artifacts produced
under measurement.
"""

from repro.experiments import ScaleStudy, format_table

SIZES = (20, 80)
EPOCHS = 10
CHURN = 0.10
MAX_OVERHEAD_ON = 0.10


def test_trace_overhead(benchmark, write_result, results_dir):
    study = ScaleStudy(seed=0, repetitions=5)
    rows = benchmark.pedantic(
        lambda: study.run_trace_overhead(
            sizes=SIZES, epochs=EPOCHS, churn=CHURN, export_dir=str(results_dir)
        ),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        [
            "nodes",
            "links",
            "epochs",
            "off (ms)",
            "on (ms)",
            "overhead",
            "noise floor",
            "spans",
            "instants",
        ],
        [
            [
                row.nodes,
                row.links,
                row.epochs,
                f"{row.off_ms:.2f}",
                f"{row.on_ms:.2f}",
                f"{row.overhead:+.1%}",
                f"{row.off_noise:.1%}",
                row.spans,
                row.instants,
            ]
            for row in rows
        ],
    )
    write_result("E14_trace_overhead", table)

    at_80 = rows[-1]
    assert at_80.nodes == 80
    # Acceptance bar: full tracing costs < 10% per epoch at 80 nodes.
    assert at_80.overhead < MAX_OVERHEAD_ON, (
        f"tracing-on overhead {at_80.overhead:.1%} >= {MAX_OVERHEAD_ON:.0%} "
        f"(off={at_80.off_ms:.2f}ms on={at_80.on_ms:.2f}ms)"
    )
    # One traced replay must have recorded the whole tree: an epoch
    # span plus three stage spans per epoch (warm-up included), and
    # one verdict instant per controller input per epoch.
    timed_plus_warmup = EPOCHS + 1
    assert at_80.spans >= 4 * timed_plus_warmup
    assert at_80.instants >= 3 * timed_plus_warmup
    # The artifacts CI uploads were really emitted.
    assert (results_dir / "E14_trace.json").exists()
    assert (results_dir / "E14_metrics.prom").exists()

    benchmark.extra_info["off_ms_at_80"] = at_80.off_ms
    benchmark.extra_info["on_ms_at_80"] = at_80.on_ms
    benchmark.extra_info["overhead_at_80"] = at_80.overhead
    benchmark.extra_info["off_noise_at_80"] = at_80.off_noise
