"""E1 / Figure 3: the worked demand-validation example.

Regenerates the paper's figure values -- detection of the spurious
A->B counter, the flow-conservation repair x = 76, and the row/column
demand invariants -- and times one full validation pass on the
three-router network.
"""

import pytest

from repro.core import Confidence, Hodor
from repro.net import NetworkSimulator
from repro.telemetry import Jitter, ProbeEngine, TelemetryCollector
from repro.topologies import fig3_demand, fig3_network


@pytest.fixture(scope="module")
def setup():
    topology = fig3_network()
    demand = fig3_demand()
    truth = NetworkSimulator(topology, demand, strategy="single").run()
    snapshot = TelemetryCollector(Jitter(0.0), probe_engine=ProbeEngine(seed=0)).collect(truth)
    snapshot.counters[("A", "B")].tx_rate = 120.0  # the figure's fault
    return topology, demand, snapshot


def test_fig3_validation(benchmark, setup, write_result):
    topology, demand, snapshot = setup
    hodor = Hodor(topology)

    report = benchmark(lambda: hodor.validate_demand(snapshot, demand))

    hardened = report.hardened
    repaired = hardened.edge_flows[("A", "B")]
    assert repaired.confidence == Confidence.REPAIRED
    assert repaired.value == pytest.approx(76.0)
    assert report.verdicts["demand"].valid
    assert report.verdicts["demand"].num_evaluated == 6

    codes = {finding.code for finding in hardened.findings}
    assert {"R1_COUNTER_MISMATCH", "R2_REPAIRED", "R2_CULPRIT"} <= codes

    lines = [
        "Figure 3 worked example (corrupted tx@A->B = 120, truth = 76):",
        f"  R1 detection        : flagged ({'R1_COUNTER_MISMATCH' in codes})",
        f"  R2 repair           : x + 23 = 75 + 24  =>  x = {repaired.value:g}",
        f"  culprit named       : tx@A->B",
        f"  demand invariants   : {report.checks['demand'].summary()}",
    ]
    write_result("E1_fig3", "\n".join(lines))

    benchmark.extra_info["repaired_value"] = repaired.value
