"""E7 / Section 4.3: drain validation.

Scores the drain checks on the paper's drain situations: the
restart-race asymmetric link drain (caught by the proposed both-ends
symmetry), the erroneous mass drain (case 2, flagged as warning-grade
evidence), the broken-router missed drain (case 1, caught through the
Section 4.2 machinery), the legitimate drain (must pass), and the
fresh drain (the acknowledged false positive of case 2 -- from signals
alone it is indistinguishable from an erroneous drain, which is why
the paper proposes attaching drain reasons).
"""


from repro.experiments import DRAIN_CASES, DrainStudy, format_percent, format_table

TRIALS = 6


def test_drain_cases(benchmark, write_result):
    study = DrainStudy(seed=0)
    rows = benchmark.pedantic(
        lambda: study.run(cases=DRAIN_CASES, trials=TRIALS), rounds=1, iterations=1
    )
    by_case = {row.case: row for row in rows}

    assert by_case["inconsistent-link-drain"].rate == 1.0
    assert by_case["spurious-drain"].rate == 1.0
    assert by_case["missed-drain"].rate == 1.0
    assert by_case["legit-drain"].rate == 0.0  # no false positive
    assert by_case["fresh-drain"].rate == 1.0  # the acknowledged FP

    table = format_table(
        ["case", "flagged", "should flag", "correct"],
        [
            [
                row.case,
                format_percent(row.rate, 0),
                "yes" if row.should_flag else "no",
                format_percent(row.correct_rate, 0),
            ]
            for row in rows
        ],
    )
    write_result("E7_drain_validation", table)
    benchmark.extra_info["legit_fp"] = by_case["legit-drain"].rate


def test_drain_reasons_extension(benchmark, write_result):
    """The Section 4.3 future-work proposal, implemented and scored.

    With reasons attached: the fresh-drain false positive disappears
    (a declared maintenance drain may carry residual traffic) and an
    erroneous automation drain claiming ``faulty-link`` is *disproven*
    against hardened link evidence.
    """
    study = DrainStudy(seed=0)
    rows = benchmark.pedantic(
        lambda: study.run_with_reasons(trials=TRIALS), rounds=1, iterations=1
    )
    by_case = {row.case: row for row in rows}

    assert by_case["fresh-drain-with-reason"].rate == 0.0  # FP resolved
    assert by_case["false-faulty-link-claim"].rate == 1.0  # lie disproven

    table = format_table(
        ["case", "flagged", "should flag", "correct"],
        [
            [
                row.case,
                format_percent(row.rate, 0),
                "yes" if row.should_flag else "no",
                format_percent(row.correct_rate, 0),
            ]
            for row in rows
        ],
    )
    write_result("E7_drain_reasons_extension", table)
