"""E9 / always-on feasibility: validation cost vs network size.

Section 3.2 envisions Hodor running continuously against every input
epoch.  This bench times the full pipeline (collect + harden + all
three dynamic checks) over growing random WANs and the bundled
realistic topologies, asserting a full pass stays in interactive
territory (far below any telemetry refresh interval).
"""

import pytest

from repro.control.demand_service import records_from_matrix
from repro.control.infra import ControlPlane
from repro.core import Hodor
from repro.experiments import ScaleStudy, format_table
from repro.net import NetworkSimulator, gravity_demand
from repro.telemetry import Jitter, ProbeEngine, TelemetryCollector
from repro.topologies import abilene, b4, geant


def _setup(topology, total):
    demand = gravity_demand(topology.node_names(), total=total, seed=1)
    truth = NetworkSimulator(topology, demand, strategy="single").run()
    collector = TelemetryCollector(Jitter(0.005, seed=2), probe_engine=ProbeEngine(seed=3))
    snapshot = collector.collect(truth)
    plane = ControlPlane(topology)
    inputs = plane.compute_inputs(snapshot, records_from_matrix(demand, seed=4))
    return snapshot, inputs


@pytest.mark.parametrize(
    "name,factory,total",
    [("abilene", abilene, 20.0), ("b4", b4, 300.0), ("geant", geant, 30.0)],
)
def test_validate_realistic_topologies(benchmark, name, factory, total):
    topology = factory()
    snapshot, inputs = _setup(topology, total)
    hodor = Hodor(topology)
    report = benchmark(lambda: hodor.validate(snapshot, inputs))
    assert report.all_valid
    benchmark.extra_info["nodes"] = topology.num_nodes
    benchmark.extra_info["links"] = topology.num_links


def test_scaling_sweep(benchmark, write_result):
    study = ScaleStudy(seed=0, repetitions=3)
    rows = benchmark.pedantic(
        lambda: study.run(sizes=(10, 20, 40, 80)), rounds=1, iterations=1
    )
    # Always-on budget: one pass well under a second even at 80 nodes.
    assert rows[-1].validate_ms < 1000.0

    table = format_table(
        ["nodes", "links", "signals", "harden (ms)", "validate (ms)"],
        [
            [row.nodes, row.links, row.signals, f"{row.harden_ms:.1f}", f"{row.validate_ms:.1f}"]
            for row in rows
        ],
    )
    write_result("E9_scale", table)
    benchmark.extra_info["validate_ms_at_80"] = rows[-1].validate_ms


def test_engine_vs_serial_sweep(benchmark, write_result):
    """The always-on engine against the stateless per-epoch pipeline.

    The serial column builds a fresh ``Hodor`` per epoch (every epoch
    pays topology setup); the engine columns replay the same stream
    through one long-lived ``ValidationEngine``, which memoizes the
    topology-derived structures and takes a cache hit on every epoch
    after the first.
    """
    study = ScaleStudy(seed=0)
    epochs = 5
    rows = benchmark.pedantic(
        lambda: study.run_engine(
            sizes=(10, 20, 40, 80), epochs=epochs, shard_counts=(1, 4)
        ),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["nodes", "links", "epochs", "serial (ms)"]
        + [f"engine s={shards} (ms)" for shards, _ in rows[0].engine_ms]
        + ["cache hits"],
        [
            [row.nodes, row.links, row.epochs, f"{row.serial_ms:.1f}"]
            + [f"{ms:.1f}" for _, ms in row.engine_ms]
            + [row.cache_hits]
            for row in rows
        ],
    )
    write_result("E9_engine", table)

    at_80 = rows[-1]
    engine_ms = dict(at_80.engine_ms)
    # Acceptance bars: the engine amortizes topology setup, so at 80
    # nodes shards=4 must beat the per-epoch serial pipeline, and an
    # unchanged topology must hit the cache on every epoch but the
    # first.
    assert engine_ms[4] < at_80.serial_ms
    assert at_80.cache_hits >= epochs - 1
    benchmark.extra_info["serial_ms_at_80"] = at_80.serial_ms
    benchmark.extra_info["engine4_ms_at_80"] = engine_ms[4]
