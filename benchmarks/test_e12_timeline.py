"""E12 / the always-on loop end to end: outages averted over time.

Ties the whole reproduction together: a multi-epoch timeline with
diurnal traffic, two bad-rollout windows, and a persistent Hodor with
reject-and-fallback.  Asserted shape: every faulty epoch is flagged,
every damaging epoch is averted by the fallback, no healthy epoch is
disturbed.
"""


from repro.faults import PartialDemandAggregation, PartialTopologyStitch
from repro.net import gravity_demand
from repro.scenarios import EpochSpec, Timeline
from repro.topologies import abilene

EPOCHS = 16


def test_timeline_outages_averted(benchmark, write_result):
    topology = abilene()
    base_demand = gravity_demand(
        topology.node_names(), total=58.0, seed=3, weights={"atlam": 0.15}
    )
    demand_bug = EpochSpec(
        demand_bugs=(PartialDemandAggregation(drop_fraction=0.5, seed=11),),
        label="demand rollout bug",
    )
    topo_bug = EpochSpec(
        topo_bugs=(PartialTopologyStitch({"kscy", "ipls"}),),
        label="partial stitch bug",
    )
    schedule = {4: demand_bug, 5: demand_bug, 6: demand_bug, 10: topo_bug, 11: topo_bug}

    timeline = Timeline(topology, base_demand, schedule=schedule, seed=7)
    result = benchmark.pedantic(lambda: timeline.run(epochs=EPOCHS), rounds=1, iterations=1)

    faulty_epochs = sorted(schedule)
    for record in result.records:
        if record.epoch in faulty_epochs:
            assert record.detected, f"epoch {record.epoch} not flagged"
        else:
            assert not record.detected, f"epoch {record.epoch} false positive"

    damaged_without = result.damaged_epochs(protected=False)
    damaged_with = result.damaged_epochs(protected=True)
    assert damaged_without, "the faults must hurt somebody"
    assert damaged_with == []
    assert result.epochs_averted() == damaged_without

    write_result(
        "E12_timeline",
        result.render()
        + f"\n\nepochs damaged without hodor: {damaged_without}"
        + f"\nepochs damaged with hodor   : {damaged_with}"
        + f"\nepochs averted              : {result.epochs_averted()}",
    )
    benchmark.extra_info["averted"] = len(result.epochs_averted())
