"""E3 / the "averted the majority of outages" claim.

Replays every Section 2 outage scenario and scores Hodor against the
static-check and anomaly-detection baselines.  Asserted shape:

- Hodor flags 100% of the incorrect-input scenarios (the paper claims
  "the majority"; the mechanisms it sketches cover all of ours),
- both baselines flag strictly fewer,
- only the static heuristics false-positive on the legitimate disaster.
"""

import pytest

from repro.experiments import OutageStudy, format_percent, format_table


@pytest.fixture(scope="module")
def outcomes():
    return OutageStudy(history_epochs=8, seed=1).run()


def test_outage_replay(benchmark, write_result):
    study = OutageStudy(history_epochs=8, seed=1)
    outcomes = benchmark.pedantic(study.run, rounds=1, iterations=1)
    summary = OutageStudy.summarize(outcomes)

    assert summary["hodor_detection_rate"] == 1.0
    assert summary["static_detection_rate"] < summary["hodor_detection_rate"]
    assert summary["anomaly_detection_rate"] < summary["hodor_detection_rate"]
    assert summary["hodor_false_positive_rate"] == 0.0
    assert summary["anomaly_false_positive_rate"] == 0.0
    assert summary["static_false_positive_rate"] == 1.0

    rows = [
        [
            o.scenario.scenario_id,
            o.scenario.title[:44],
            o.scenario.category,
            "yes" if o.hodor_flagged else "no",
            ",".join(o.hodor_channels) or "-",
            "yes" if o.static_flagged else "no",
            "yes" if o.anomaly_flagged else "no",
            "yes" if o.damaged else "no",
        ]
        for o in outcomes
    ]
    table = format_table(
        ["id", "scenario", "category", "hodor", "channels", "static", "anomaly", "damage"],
        rows,
    )
    summary_lines = [
        table,
        "",
        f"hodor detection   : {format_percent(summary['hodor_detection_rate'], 0)}",
        f"static detection  : {format_percent(summary['static_detection_rate'], 0)}",
        f"anomaly detection : {format_percent(summary['anomaly_detection_rate'], 0)}",
        f"static false positive on legitimate disaster: "
        f"{format_percent(summary['static_false_positive_rate'], 0)}",
    ]
    write_result("E3_outage_coverage", "\n".join(summary_lines))

    benchmark.extra_info.update({k: round(v, 3) for k, v in summary.items()})


def test_every_expected_channel_fires(outcomes):
    for outcome in outcomes:
        failed = set(outcome.hodor_channels)
        for channel in outcome.scenario.expected_channels:
            if channel == "hardening":
                assert outcome.hodor_flagged
            else:
                assert channel in failed, (
                    f"{outcome.scenario.scenario_id}: {channel} expected in {failed}"
                )
