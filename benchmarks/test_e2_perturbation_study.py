"""E2 / Section 4.1 numbers: perturbed-demand detection accuracy.

Paper: "with tau_e = 0.02, our approach detects 99.2% of perturbed
matrices with two zeroed-out (missing) values out of 144, and 100% of
perturbed matrices with three or more zeroed-out values."

The bench regenerates the detection-rate table over k in 1..6 and the
tau_e sweep, asserting the paper's shape: near-total detection at
k = 2, total at k >= 3, zero false positives.
"""

import pytest

from repro.experiments import PerturbationStudy, format_percent, format_table

TRIALS = 240


@pytest.fixture(scope="module")
def study():
    return PerturbationStudy(matrices=8, seed=0)


def test_detection_vs_zeroed_entries(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.run(zero_counts=(1, 2, 3, 4, 5, 6), trials=TRIALS),
        rounds=1,
        iterations=1,
    )
    by_zeroed = {row.zeroed: row for row in rows}

    # Paper shape: ~99% at k=2, 100% at k>=3.
    assert by_zeroed[2].detection_rate >= 0.95
    assert by_zeroed[3].detection_rate >= 0.98
    assert by_zeroed[4].detection_rate >= 0.99
    assert by_zeroed[6].detection_rate == 1.0
    assert study.false_positive_rate(tau_e=0.02) == 0.0

    table = format_table(
        ["zeroed entries", "detection rate", "paper"],
        [
            [
                row.zeroed,
                format_percent(row.detection_rate),
                {2: "99.2%", 3: "100%", 4: "100%", 5: "100%", 6: "100%"}.get(row.zeroed, "-"),
            ]
            for row in rows
        ],
    )
    write_result("E2_perturbation", table)
    benchmark.extra_info["rate_at_2"] = by_zeroed[2].detection_rate
    benchmark.extra_info["rate_at_3"] = by_zeroed[3].detection_rate


def test_tau_sweep(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.tau_sweep(taus=(0.005, 0.01, 0.02, 0.05, 0.1), zeroed=2, trials=120),
        rounds=1,
        iterations=1,
    )
    rates = [row.detection_rate for row in rows]
    # Tighter tolerance detects at least as much as looser tolerance.
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))

    table = format_table(
        ["tau_e", "detection rate (k=2)"],
        [[f"{row.tau_e:g}", format_percent(row.detection_rate)] for row in rows],
    )
    write_result("E2_tau_sweep", table)


def test_scaled_entry_detection(benchmark, study, write_result):
    results = benchmark.pedantic(
        lambda: study.scaling_perturbations(
            factors=(0.5, 0.8, 0.9, 1.1, 1.25, 2.0), count=2, trials=120
        ),
        rounds=1,
        iterations=1,
    )
    by_factor = {factor: row.detection_rate for factor, row in results}
    # Far from 1.0 is easy; near 1.0 approaches the tolerance floor.
    assert by_factor[0.5] >= by_factor[0.9] - 1e-9
    assert by_factor[2.0] >= by_factor[1.1] - 1e-9

    table = format_table(
        ["scale factor", "detection rate"],
        [[f"{factor:g}", format_percent(rate)] for factor, rate in sorted(by_factor.items())],
    )
    write_result("E2_scaling", table)
