"""E11 / Section 6: the paper's future directions, exercised.

Two of the paper's closing questions, answered on the simulator:

1. **"Designing more reliable networks"** -- routers exchanging
   interface counters with neighbors to self-correct anomalies at the
   source.  We replay the counter-corrupting outage scenarios with the
   peer-exchange layer in the telemetry path and show the corrupted
   signals never reach the control infrastructure (prevention), while
   symmetric corruption is honestly left for downstream validation.

2. **"The broader design space and its applicability"** -- datacenter
   fabrics.  The same 2v demand invariants, unchanged, run over a
   k-ary fat-tree: clean traffic validates, perturbed host demand is
   caught, at the same tau_e.
"""


from repro.control.topo_service import TopologyService
from repro.experiments import PerturbationStudy, format_percent, format_table
from repro.scenarios import scenario_by_id
from repro.telemetry import peer_exchange_correct
from repro.topologies import fat_tree_topology


def test_self_correction_prevents_telemetry_outages(benchmark, write_result):
    """Peer counter exchange stops S01/S02 at the router boundary."""

    def replay(scenario_id: str):
        world = scenario_by_id(scenario_id).build(seed=1)
        truth = world.steady_state()
        snapshot = world.collector.collect(truth, health=world.link_health)
        faulted, _records = world.injector.inject(snapshot)
        service = TopologyService(world.topology, infer_faulty_from_counters=True)
        links_without = service.build(faulted).num_links
        corrected, corrections = peer_exchange_correct(faulted, world.topology)
        links_with = service.build(corrected).num_links
        return world.topology.num_links, links_without, links_with, len(corrections)

    results = benchmark.pedantic(
        lambda: {sid: replay(sid) for sid in ("S01", "S02")}, rounds=1, iterations=1
    )

    rows = []
    for scenario_id, (total, without, with_fix, corrections) in results.items():
        # Without the layer the buggy service sheds capacity; with it,
        # the full topology survives.
        assert without < total
        assert with_fix == total
        assert corrections > 0
        rows.append([scenario_id, total, without, with_fix, corrections])

    table = format_table(
        ["scenario", "real links", "links seen (no self-correct)",
         "links seen (self-correct)", "corrections"],
        rows,
    )
    write_result("E11_self_correction", table)


def test_applicability_to_datacenter_fabric(benchmark, write_result):
    """The unchanged demand invariants work on a fat-tree fabric."""
    fabric = fat_tree_topology(k=4, capacity=40.0)

    study = PerturbationStudy(topology=fabric, demand_total=60.0, matrices=4, seed=0)
    rows = benchmark.pedantic(
        lambda: study.run(zero_counts=(1, 2, 3), trials=90), rounds=1, iterations=1
    )
    by_zeroed = {row.zeroed: row.detection_rate for row in rows}
    fp = study.false_positive_rate()

    assert fp == 0.0
    assert by_zeroed[2] >= 0.9
    assert by_zeroed[3] >= 0.95

    lines = [
        f"fat-tree k=4 fabric: {fabric.num_nodes} switches, {fabric.num_links} links",
        format_table(
            ["zeroed host-demand entries", "detection rate"],
            [[zeroed, format_percent(rate)] for zeroed, rate in sorted(by_zeroed.items())],
        ),
        f"false positives on clean fabric demand: {format_percent(fp)}",
        "",
        "Section 6: 'Are incorrect inputs a problem in other environments",
        "such as ... datacenter fabrics?  And would the approach we",
        "described be applicable?'  -- the invariants derive from flow",
        "conservation, so they transfer unchanged.",
    ]
    write_result("E11_fat_tree_applicability", "\n".join(lines))
