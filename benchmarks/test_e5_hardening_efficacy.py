"""E5 / the Section 3.2 open question: hardening efficacy.

The paper leaves "a detailed evaluation of hardening efficacy" open;
this bench provides it on the simulator:

- detection recall/precision and repair rate vs the number of
  independently corrupted counters (repair degrades as corruptions
  cluster and the conservation system loses rank -- the |V|-1 bound),
- the R1-only ablation (repair disabled),
- the correlated vendor-bug blind spot: directions where both
  endpoints mis-scale identically are structurally invisible to R1.
"""

import pytest

from repro.experiments import HardeningStudy, format_percent, format_table

COUNTS = (1, 2, 4, 8, 12)
TRIALS = 12


@pytest.fixture(scope="module")
def study():
    return HardeningStudy(seed=0)


def test_corruption_sweep_with_repair(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.corruption_sweep(counts=COUNTS, trials=TRIALS),
        rounds=1,
        iterations=1,
    )
    by_count = {row.corrupted: row for row in rows}

    # Isolated corruption: fully detected, fully repaired (paper's
    # "assuming an isolated incorrect counter" case).
    assert by_count[1].recall == 1.0
    assert by_count[1].precision == 1.0
    assert by_count[1].repair_rate >= 0.95
    # Detection stays perfect as corruption grows (R1 is pairwise) ...
    assert by_count[12].recall == 1.0
    # ... but repair degrades as the system loses rank.
    assert by_count[12].repair_rate <= by_count[1].repair_rate

    table = format_table(
        ["corrupted", "recall", "precision", "repair rate", "left unknown"],
        [
            [
                row.corrupted,
                format_percent(row.recall),
                format_percent(row.precision),
                format_percent(row.repair_rate),
                format_percent(row.unknown_rate),
            ]
            for row in rows
        ],
    )
    write_result("E5_hardening_repair", table)
    benchmark.extra_info["repair_at_1"] = by_count[1].repair_rate
    benchmark.extra_info["repair_at_12"] = by_count[12].repair_rate


def test_r1_only_ablation(benchmark, study, write_result):
    rows = benchmark.pedantic(
        lambda: study.corruption_sweep(counts=(1, 4, 12), trials=8, enable_repair=False),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.recall == 1.0  # detection is R1's job and still works
        assert row.repair_rate == 0.0  # nothing is repaired
        assert row.unknown_rate == 1.0  # every flagged value stays unknown

    table = format_table(
        ["corrupted", "recall", "repair rate", "left unknown"],
        [
            [
                row.corrupted,
                format_percent(row.recall),
                format_percent(row.repair_rate),
                format_percent(row.unknown_rate),
            ]
            for row in rows
        ],
    )
    write_result("E5_r1_only_ablation", table)


def test_correlated_vendor_bug(benchmark, study, write_result):
    result = benchmark.pedantic(study.correlated_vendor_bug, rounds=1, iterations=1)

    # Both-endpoint-affected directions scale identically on both
    # measurements: R1 cannot see them (the paper's stated limit).
    assert result.blind_flagged == 0
    assert result.blind_directions > 0
    # One-endpoint directions disagree across the link: all caught.
    assert result.visible_flagged == result.visible_directions

    lines = [
        f"correlated vendor bug across {result.affected_nodes} routers (all counters x0.5):",
        f"  both-endpoints-affected directions : {result.blind_directions} "
        f"({result.blind_flagged} flagged -- R1 structurally blind)",
        f"  one-endpoint-affected directions   : {result.visible_directions} "
        f"({result.visible_flagged} flagged)",
        "mitigations per the paper: multi-vendor deployments and staged",
        "rollouts keep both-endpoint coverage rare; alternative signals add",
        "another layer.",
    ]
    write_result("E5_correlated_failures", "\n".join(lines))
