"""E15: streamed ingestion must sustain WAN-scale telemetry churn.

The streaming stack (PR 5) feeds the always-on engine from per-router
update streams instead of pre-formed snapshots.  This soak drives the
acceptance configuration -- an 80-node topology, 50 epochs of churning
feeds with 10% in-window reordering, 1% source drops, and 2%
duplicated deliveries -- through the bounded-queue/backpressure
pipeline and asserts:

* **zero deadlocks**: every epoch seals and validates (a wedged
  watermark or a lost end-of-feed marker would leave epochs open);
* sustained delivery throughput is reported (the headline number);
* the delivery-fault counters (late / source-dropped / duplicate) made
  it into the Prometheus exposition CI archives.
"""

from repro.experiments import ScaleStudy, format_table

SIZES = (80,)
EPOCHS = 50
REORDER = 0.10
DROP = 0.01
DUPLICATE = 0.02


def test_stream_soak(benchmark, write_result, results_dir):
    study = ScaleStudy(seed=0)
    rows = benchmark.pedantic(
        lambda: study.run_stream(
            sizes=SIZES,
            epochs=EPOCHS,
            reorder=REORDER,
            drop=DROP,
            duplicate=DUPLICATE,
            export_dir=str(results_dir),
        ),
        rounds=1,
        iterations=1,
    )

    table = format_table(
        [
            "nodes",
            "links",
            "epochs",
            "updates",
            "updates/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "late",
            "dropped",
            "dups",
            "partial",
        ],
        [
            [
                row.nodes,
                row.links,
                f"{row.epochs_sealed}/{row.epochs_streamed}",
                row.updates,
                f"{row.updates_per_s:.0f}",
                f"{row.p50_ms:.1f}",
                f"{row.p95_ms:.1f}",
                f"{row.p99_ms:.1f}",
                row.late_dropped,
                row.feed_dropped,
                row.duplicates,
                row.partial_epochs,
            ]
            for row in rows
        ],
    )
    write_result("E15_stream", table)

    at_80 = rows[-1]
    assert at_80.nodes == 80
    # Acceptance bar: zero assembler deadlocks under the bounded-queue
    # backpressure config -- every streamed epoch sealed and validated.
    assert at_80.epochs_sealed == EPOCHS, (
        f"only {at_80.epochs_sealed}/{EPOCHS} epochs sealed -- the "
        f"pipeline wedged (open epochs never reached the watermark)"
    )
    assert at_80.updates_per_s > 0.0
    # The perturbations really ran at the configured rates.
    assert at_80.feed_dropped > 0
    assert at_80.duplicates > 0
    # The delivery-fault counters are in the archived exposition.
    prom = (results_dir / "E15_metrics.prom").read_text()
    for family in (
        "stream_updates_total",
        "stream_late_updates_total",
        "stream_duplicate_updates_total",
        "stream_feed_dropped_total",
        "stream_backpressure_dropped_total",
        "stream_queue_depth",
        "stream_epochs_sealed_total",
        "stream_assembly_latency_seconds_bucket",
    ):
        assert family in prom, f"{family} missing from E15_metrics.prom"

    benchmark.extra_info["updates_per_s_at_80"] = at_80.updates_per_s
    benchmark.extra_info["p95_ms_at_80"] = at_80.p95_ms
    benchmark.extra_info["duplicates_at_80"] = at_80.duplicates
    benchmark.extra_info["feed_dropped_at_80"] = at_80.feed_dropped


def test_stream_soak_scatter_vector(benchmark, write_result, results_dir):
    """Satellite to E15: the scatter hot loop under the vector backend.

    The fleet hot path seals epochs as sorted event buffers and folds
    them through the cached decoder (``validate_events``) instead of
    reassembling a snapshot per epoch; the engine side runs the
    array-compiled backend.  Reported against the classic
    applied-snapshot python-backend soak on the identical shape so the
    p50 moves are attributable.
    """
    from repro.stream.feed import Perturbations
    from repro.stream.soak import SoakConfig, run_soak

    nodes = SIZES[-1]
    perturb = Perturbations(reorder=REORDER, drop=DROP, duplicate=DUPLICATE)
    scatter_vector = SoakConfig(
        nodes=nodes,
        epochs=EPOCHS,
        perturb=perturb,
        scatter=True,
        backend="vector",
    )
    classic_python = SoakConfig(
        nodes=nodes,
        epochs=EPOCHS,
        perturb=perturb,
    )
    fast = benchmark.pedantic(
        lambda: run_soak(scatter_vector), rounds=1, iterations=1
    )
    classic = run_soak(classic_python)

    for result, label in ((fast, "scatter+vector"), (classic, "classic+python")):
        assert result.epochs_sealed == EPOCHS, (
            f"{label}: only {result.epochs_sealed}/{EPOCHS} epochs sealed"
        )

    table = format_table(
        ["pipeline", "backend", "epochs", "updates", "updates/s",
         "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        [
            [
                label,
                backend,
                f"{result.epochs_sealed}/{EPOCHS}",
                result.updates,
                f"{result.updates_per_s:.0f}",
                f"{result.p50_ms:.1f}",
                f"{result.p95_ms:.1f}",
                f"{result.p99_ms:.1f}",
            ]
            for result, label, backend in (
                (classic, "classic (applied snapshots)", "python"),
                (fast, "scatter (event fold)", "vector"),
            )
        ],
    )
    write_result("E15_scatter_vector", table)

    benchmark.extra_info["scatter_vector_p50_ms"] = fast.p50_ms
    benchmark.extra_info["classic_python_p50_ms"] = classic.p50_ms
