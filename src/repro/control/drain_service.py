"""Drain instrumentation service.

Aggregates per-router drain reports and per-endpoint link-drain reports
into the controller's :class:`~repro.control.inputs.DrainView`.

Aggregation rules:

- a router is drained when its reported drain bit is truthy; a missing
  report means not drained (the dangerous default the paper's restart
  race exploited),
- a link is drained when *either* endpoint reports it drained (the
  service has no symmetry check -- adding one is exactly the paper's
  Section 4.3 proposal, implemented in Hodor's drain validation).

The :class:`~repro.faults.aggregation_faults.IgnoredDrain` bug makes
the service skip named routers' (correct) drain signals, reproducing
the outage where drained capacity was wrongly counted as available.
"""

from __future__ import annotations

from typing import Sequence

from repro.control.inputs import DrainView
from repro.faults.aggregation_faults import IgnoredDrain
from repro.faults.base import AggregationBug
from repro.net.topology import Topology
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["DrainService"]


def _drain_is_set(raw: object) -> bool:
    """Naive truthiness the production aggregation code would apply."""
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, str):
        return raw.strip().lower() in ("true", "drained", "1")
    if isinstance(raw, (int, float)):
        return raw == 1
    return False


class DrainService:
    """Builds the drain-status controller input from a snapshot.

    Args:
        reference: The design-time network model (router and link
            inventory).
        bugs: Active aggregation bugs.

    Raises:
        TypeError: If given a bug type this service does not interpret.
    """

    _SUPPORTED_BUGS = (IgnoredDrain,)

    def __init__(self, reference: Topology, bugs: Sequence[AggregationBug] = ()) -> None:
        self._reference = reference
        for bug in bugs:
            if not isinstance(bug, self._SUPPORTED_BUGS):
                raise TypeError(f"DrainService does not interpret {type(bug).__name__}")
        self._bugs = list(bugs)

    def build(self, snapshot: NetworkSnapshot) -> DrainView:
        """Aggregate drain reports into the controller's drain input."""
        ignored = set()
        for bug in self._bugs:
            if isinstance(bug, IgnoredDrain):
                ignored |= bug.nodes

        view = DrainView()
        for node in self._reference.node_names():
            if node in ignored:
                view.nodes[node] = False
                continue
            view.nodes[node] = _drain_is_set(snapshot.drains.get(node, False))

        for link in self._reference.links():
            drained = False
            for endpoint, peer in link.directions():
                if endpoint in ignored:
                    continue
                if _drain_is_set(snapshot.link_drains.get((endpoint, peer), False)):
                    drained = True
            view.links[link.name] = drained
        return view
