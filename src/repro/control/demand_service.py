"""Demand instrumentation service.

In the network the paper analyzed, demand is computed from measurements
at end hosts (BwE-style [21]) rather than from routers.  We model the
raw material as a stream of per-aggregate :class:`DemandRecord` entries
-- one ingress/egress pair may be covered by many records (different
host clusters) -- which the service sums into the controller's demand
matrix.

The Section 2.2 external-input bugs are interpreted here:

- :class:`~repro.faults.external_faults.PartialDemandAggregation`
  silently drops records,
- :class:`~repro.faults.external_faults.DoubleCountedDemand` counts
  some records multiple times,
- :class:`~repro.faults.external_faults.ThrottledDemandMismatch` is
  accepted (it is an external-input bug) but acts at the scenario
  level: the measurement is *correct*, the hosts just do not send that
  much -- see :class:`repro.scenarios.World`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.faults.base import AggregationBug
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)
from repro.net.demand import DemandMatrix

__all__ = ["DemandRecord", "DemandService", "records_from_matrix"]


@dataclass(frozen=True)
class DemandRecord:
    """One end-host-side demand measurement for an ingress/egress pair."""

    src: str
    dst: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"negative demand record rate: {self.rate}")
        if self.src == self.dst:
            raise ValueError(f"self-demand record at {self.src!r}")


def records_from_matrix(
    demand: DemandMatrix, shards_per_pair: int = 3, seed: int = 0
) -> List[DemandRecord]:
    """Split a demand matrix into per-host-cluster records.

    Each non-zero pair is split into ``shards_per_pair`` records with
    random proportions, mimicking per-cluster aggregation upstream of
    the service.  Summing the records exactly recovers the matrix.
    """
    if shards_per_pair < 1:
        raise ValueError(f"shards_per_pair must be >= 1, got {shards_per_pair}")
    rng = random.Random(seed)
    records: List[DemandRecord] = []
    for src, dst, rate in demand.nonzero_entries():
        cuts = sorted(rng.random() for _ in range(shards_per_pair - 1))
        bounds = [0.0] + cuts + [1.0]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            share = (hi - lo) * rate
            if share > 0:
                records.append(DemandRecord(src, dst, share))
    return records


class DemandService:
    """Aggregates end-host demand records into the controller's matrix.

    Args:
        nodes: The router set the output matrix is defined over.
        bugs: Active aggregation bugs.

    Raises:
        TypeError: If given a bug type this service does not interpret.
    """

    _SUPPORTED_BUGS = (
        PartialDemandAggregation,
        DoubleCountedDemand,
        ThrottledDemandMismatch,
    )

    def __init__(self, nodes: Sequence[str], bugs: Sequence[AggregationBug] = ()) -> None:
        self._nodes = list(nodes)
        for bug in bugs:
            if not isinstance(bug, self._SUPPORTED_BUGS):
                raise TypeError(f"DemandService does not interpret {type(bug).__name__}")
        self._bugs = list(bugs)

    def build(self, records: Iterable[DemandRecord]) -> DemandMatrix:
        """Aggregate records into the demand matrix the controller sees."""
        records = list(records)
        for bug in self._bugs:
            if isinstance(bug, PartialDemandAggregation):
                records = self._apply_partial(records, bug)
            elif isinstance(bug, DoubleCountedDemand):
                records = self._apply_double_count(records, bug)
            # ThrottledDemandMismatch: measurement itself is correct.

        matrix = DemandMatrix(self._nodes)
        for record in records:
            if record.src not in self._nodes or record.dst not in self._nodes:
                continue  # records for unknown routers are dropped silently
            matrix[record.src, record.dst] = matrix[record.src, record.dst] + record.rate
        return matrix

    @staticmethod
    def _apply_partial(
        records: List[DemandRecord], bug: PartialDemandAggregation
    ) -> List[DemandRecord]:
        rng = random.Random(bug.seed)
        kept = []
        for record in records:
            if (record.src, record.dst) in bug.drop_pairs:
                continue
            if bug.drop_fraction > 0 and rng.random() < bug.drop_fraction:
                continue
            kept.append(record)
        return kept

    @staticmethod
    def _apply_double_count(
        records: List[DemandRecord], bug: DoubleCountedDemand
    ) -> List[DemandRecord]:
        rng = random.Random(bug.seed)
        out = []
        for record in records:
            if rng.random() < bug.fraction:
                out.append(DemandRecord(record.src, record.dst, record.rate * bug.multiplier))
            else:
                out.append(record)
        return out
