"""The three inputs to the SDN controller.

The paper's Section 4 focuses on exactly three controller inputs, the
root causes of all large input-related outages it analyzed: the traffic
demand matrix, the topology, and the drain status.  This module defines
the container the instrumentation services fill in and the controller
(and Hodor's dynamic checking) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.net.demand import DemandMatrix
from repro.net.topology import Topology

__all__ = ["DrainView", "ControllerInputs"]


@dataclass
class DrainView:
    """The drain-status input: which gear the controller must avoid.

    Attributes:
        nodes: Router name -> drained bit, as aggregated by the drain
            instrumentation service.
        links: Canonical link name -> drained bit.
    """

    nodes: Dict[str, bool] = field(default_factory=dict)
    links: Dict[str, bool] = field(default_factory=dict)

    def drained_nodes(self) -> list:
        return sorted(n for n, drained in self.nodes.items() if drained)

    def drained_links(self) -> list:
        return sorted(name for name, drained in self.links.items() if drained)

    def is_node_drained(self, node: str) -> bool:
        return bool(self.nodes.get(node, False))

    def is_link_drained(self, link_name: str) -> bool:
        return bool(self.links.get(link_name, False))


@dataclass
class ControllerInputs:
    """Everything the SDN controller sees for one epoch.

    Attributes:
        topology: The controller's believed graph of *live* links (a
            link absent here is believed down or unknown).
        demand: The believed ingress/egress demand matrix.
        drains: The believed drain status.
        timestamp: Epoch the inputs claim to describe.
    """

    topology: Topology
    demand: DemandMatrix
    drains: DrainView
    timestamp: float = 0.0
