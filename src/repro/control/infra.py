"""Control-plane orchestration: services feeding the controller.

:class:`ControlPlane` wires the three instrumentation services and the
SDN controller into the pipeline of the paper's Figure 1: router
signals (plus external demand records) flow through the control
infrastructure and come out as controller inputs, which the controller
turns into a path allocation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.control.controller import SdnController
from repro.control.demand_service import DemandRecord, DemandService
from repro.control.drain_service import DrainService
from repro.control.inputs import ControllerInputs
from repro.control.topo_service import TopologyService
from repro.faults.base import AggregationBug
from repro.net.flows import FlowAssignment
from repro.net.topology import Topology
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["ControlPlane"]


class ControlPlane:
    """The full control infrastructure of Figure 1.

    Args:
        reference: Design-time network model shared by the services.
        topo_bugs: Bugs active in the topology service.
        demand_bugs: Bugs active in the demand service.
        drain_bugs: Bugs active in the drain service.
        k_paths: Controller TE path diversity.
    """

    def __init__(
        self,
        reference: Topology,
        topo_bugs: Sequence[AggregationBug] = (),
        demand_bugs: Sequence[AggregationBug] = (),
        drain_bugs: Sequence[AggregationBug] = (),
        k_paths: int = 4,
        infer_faulty_from_counters: bool = False,
    ) -> None:
        self._reference = reference
        self.topology_service = TopologyService(
            reference, topo_bugs, infer_faulty_from_counters=infer_faulty_from_counters
        )
        self.demand_service = DemandService(reference.node_names(), demand_bugs)
        self.drain_service = DrainService(reference, drain_bugs)
        self.controller = SdnController(k_paths=k_paths)

    @property
    def reference(self) -> Topology:
        return self._reference

    def compute_inputs(
        self,
        snapshot: NetworkSnapshot,
        demand_records: Iterable[DemandRecord],
        timestamp: float = 0.0,
    ) -> ControllerInputs:
        """Run all three services against one snapshot."""
        return ControllerInputs(
            topology=self.topology_service.build(snapshot),
            demand=self.demand_service.build(demand_records),
            drains=self.drain_service.build(snapshot),
            timestamp=timestamp,
        )

    def program(self, inputs: ControllerInputs) -> FlowAssignment:
        """Have the controller compute the allocation for these inputs."""
        return self.controller.program(inputs)
