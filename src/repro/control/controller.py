"""The SDN controller.

Consumes :class:`~repro.control.inputs.ControllerInputs` and programs
path allocations.  The controller is deliberately simple and *correct*:
all the outage scenarios in this repository are caused by feeding it
inputs that do not reflect the network, never by controller bugs.
"""

from __future__ import annotations

from repro.control.inputs import ControllerInputs
from repro.control.te import greedy_te
from repro.net.flows import FlowAssignment
from repro.net.topology import Topology

__all__ = ["SdnController"]


class SdnController:
    """Turns controller inputs into a flow assignment.

    Args:
        k_paths: Path diversity per ingress/egress pair for TE.
        target_utilization: Per-link engineering headroom for TE.
    """

    def __init__(self, k_paths: int = 4, target_utilization: float = 0.9) -> None:
        if k_paths < 1:
            raise ValueError(f"k_paths must be >= 1, got {k_paths}")
        self._k_paths = k_paths
        self._target_utilization = target_utilization

    def serving_topology(self, inputs: ControllerInputs) -> Topology:
        """The believed-usable graph: topology input minus drained gear."""
        serving = Topology(f"{inputs.topology.name}:serving")
        for node in inputs.topology.nodes():
            if not inputs.drains.is_node_drained(node.name):
                serving.add_node(node)
        for link in inputs.topology.links():
            if inputs.drains.is_link_drained(link.name):
                continue
            if serving.has_node(link.a) and serving.has_node(link.b):
                serving.add_link(link)
        return serving

    def program(self, inputs: ControllerInputs) -> FlowAssignment:
        """Compute the path allocation for this epoch's inputs."""
        serving = self.serving_topology(inputs)
        return greedy_te(
            serving,
            inputs.demand,
            k=self._k_paths,
            target_utilization=self._target_utilization,
        )
