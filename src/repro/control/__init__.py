"""SDN control infrastructure: instrumentation services and controller."""

from repro.control.controller import SdnController
from repro.control.demand_service import DemandRecord, DemandService, records_from_matrix
from repro.control.drain_service import DrainService
from repro.control.infra import ControlPlane
from repro.control.inputs import ControllerInputs, DrainView
from repro.control.metrics import HealthReport, Severity, assess_health
from repro.control.te import greedy_te
from repro.control.topo_service import TopologyService

__all__ = [
    "ControlPlane",
    "ControllerInputs",
    "DemandRecord",
    "DemandService",
    "DrainService",
    "DrainView",
    "HealthReport",
    "SdnController",
    "Severity",
    "TopologyService",
    "assess_health",
    "greedy_te",
    "records_from_matrix",
]
