"""Network-health metrics: how bad did an epoch actually get?

Experiments evaluate a controller allocation on the *real* network (via
:meth:`repro.net.simulation.NetworkSimulator.evaluate`) and summarise
the outcome here.  Severity bands follow how the paper talks about
outages: local congestion, severe congestion, and major outages with
packet loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.net.demand import DemandMatrix
from repro.net.simulation import GroundTruth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.stats import EngineStats
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Severity",
    "HealthReport",
    "assess_health",
    "engine_registry",
    "engine_metrics",
    "render_engine_metrics",
]


class Severity(Enum):
    """How healthy one epoch was, worst condition wins."""

    OK = "ok"
    DEGRADED = "degraded"  # high utilization, no meaningful loss
    CONGESTED = "congested"  # saturated links / measurable loss
    OUTAGE = "outage"  # major loss or undelivered demand

    def at_least(self, other: "Severity") -> bool:
        order = [Severity.OK, Severity.DEGRADED, Severity.CONGESTED, Severity.OUTAGE]
        return order.index(self) >= order.index(other)


#: Severity thresholds (fractions).  The degraded bound sits just above
#: the TE's default 0.9 engineering target so a healthy network running
#: exactly at target classifies as OK.
_DEGRADED_MLU = 0.92
_CONGESTED_LOSS = 1e-3
_OUTAGE_LOSS = 0.05
_OUTAGE_DELIVERY = 0.90


@dataclass
class HealthReport:
    """Outcome of evaluating an allocation on the real network.

    Attributes:
        mlu: Maximum link utilization (post-drop).
        loss_rate: Fraction of admitted traffic dropped in-network.
        delivered_fraction: Delivered rate over *true* total demand
            (captures both in-network drops and demand that was never
            admitted/routed).
        congested_links: Directed edges at full utilization.
        severity: Overall classification.
    """

    mlu: float
    loss_rate: float
    delivered_fraction: float
    congested_links: List[Tuple[str, str]] = field(default_factory=list)
    severity: Severity = Severity.OK

    def is_outage(self) -> bool:
        return self.severity == Severity.OUTAGE

    def summary(self) -> str:
        return (
            f"{self.severity.value}: mlu={self.mlu:.2f} loss={self.loss_rate:.2%} "
            f"delivered={self.delivered_fraction:.2%} "
            f"congested={len(self.congested_links)}"
        )


def assess_health(truth: GroundTruth, true_demand: DemandMatrix) -> HealthReport:
    """Classify one epoch's real network state.

    Args:
        truth: Simulator output for the allocation actually programmed.
        true_demand: The demand hosts actually offered (not the
            controller's belief), the denominator for delivery.
    """
    mlu = truth.max_link_utilization()
    loss = truth.loss_rate()
    offered = true_demand.total()
    delivered = truth.total_delivered() / offered if offered > 0 else 1.0

    if loss >= _OUTAGE_LOSS or delivered < _OUTAGE_DELIVERY:
        severity = Severity.OUTAGE
    elif loss >= _CONGESTED_LOSS or mlu >= 1.0 - 1e-9:
        severity = Severity.CONGESTED
    elif mlu >= _DEGRADED_MLU:
        severity = Severity.DEGRADED
    else:
        severity = Severity.OK

    return HealthReport(
        mlu=mlu,
        loss_rate=loss,
        delivered_fraction=delivered,
        congested_links=truth.congested_edges(),
        severity=severity,
    )


def engine_registry(
    stats: "EngineStats", registry: Optional["MetricsRegistry"] = None
) -> "MetricsRegistry":
    """Project engine counters into a Prometheus metrics registry.

    Takes anything shaped like
    :class:`~repro.engine.stats.EngineStats` (duck-typed so this
    module never imports the engine package).  Names follow Prometheus
    conventions: monotonically accumulating quantities are counters
    with a ``_total`` suffix; ratios and configuration are gauges.
    Per-stage quantities use a ``stage`` label, with the aggregate
    epoch time under ``engine_stage_seconds_total{stage="all"}``; the
    flat :func:`engine_metrics` view exposes that sample as
    ``engine_stage_seconds_all`` (the bare pre-observatory name
    ``engine_stage_seconds_total`` collided with the counter suffix
    convention and is gone from the flat view as of PR 5).

    Projection uses absolute snapshot writes (``set_to``), so re-running
    it against a shared ``registry`` (e.g. the engine's own, which
    already holds the latency histograms) is idempotent rather than
    double-counting.
    """
    # Imported here, not at module top: ``core.serialize`` imports this
    # module while ``repro.obs`` imports ``core``, so a module-level
    # import would close an import cycle during package init.
    from repro.obs.metrics import MetricsRegistry

    reg = registry if registry is not None else MetricsRegistry()

    reg.counter("engine_epochs_total", "Validation passes completed.").set_to(stats.epochs)
    reg.counter(
        "engine_cache_hits_total", "Epochs that reused a memoized topology cache."
    ).set_to(stats.cache_hits)
    reg.counter(
        "engine_cache_misses_total", "Epochs that had to build topology structures."
    ).set_to(stats.cache_misses)
    reg.counter(
        "engine_shard_tasks_total", "Slice-worker invocations dispatched to the pool."
    ).set_to(stats.shard_tasks)
    reg.counter(
        "engine_entities_recomputed_total",
        "Per-entity units computed fresh, summed over stages.",
    ).set_to(stats.total_entities_recomputed)
    reg.counter(
        "engine_entities_reused_total",
        "Per-entity units served from the previous epoch, summed over stages.",
    ).set_to(stats.total_entities_reused)
    reg.counter(
        "engine_repair_solves_total", "Conservation components solved fresh."
    ).set_to(stats.repair_solves)
    reg.counter(
        "engine_repair_reuses_total", "Conservation components served from the solver cache."
    ).set_to(stats.repair_reuses)

    stage_seconds = reg.counter(
        "engine_stage_seconds_total",
        "Cumulative wall seconds per pipeline stage ('all' is the whole epoch).",
        labels=("stage",),
    )
    for stage in sorted(stats.stage_seconds):
        label = "all" if stage == "total" else stage
        stage_seconds.labels(stage=label).set_to(stats.stage_seconds[stage])
    recomputed = reg.counter(
        "engine_stage_recomputed_total",
        "Per-entity units computed fresh, by fine-grained stage.",
        labels=("stage",),
    )
    for stage in sorted(stats.entities_recomputed):
        recomputed.labels(stage=stage).set_to(stats.entities_recomputed[stage])
    reused = reg.counter(
        "engine_stage_reused_total",
        "Per-entity units served from the previous epoch, by fine-grained stage.",
        labels=("stage",),
    )
    for stage in sorted(stats.entities_reused):
        reused.labels(stage=stage).set_to(stats.entities_reused[stage])

    reg.gauge("engine_shards", "Configured shard count.").set(stats.shards)
    # Info-style gauge: one sample, value 1, the backend as a label.
    # Deliberately absent from the legacy flat view -- the PR-3 golden
    # payloads pin that key set.
    reg.gauge(
        "engine_backend_info",
        "Active evaluation backend (value 1 on the active label).",
        labels=("backend",),
    ).labels(backend=getattr(stats, "backend", "python")).set(1.0)
    reg.gauge(
        "engine_cache_hit_rate", "Fraction of epochs served from the topology cache."
    ).set(stats.cache_hit_rate)
    reg.gauge(
        "engine_shard_utilisation", "Shard-pool busy time over capacity (1.0 = saturated)."
    ).set(stats.shard_utilisation())
    reg.gauge("engine_mean_epoch_ms", "Mean wall-clock per validation pass (ms).").set(
        stats.mean_epoch_ms()
    )
    reg.gauge(
        "engine_reuse_rate", "Fraction of per-entity units served without recomputation."
    ).set(stats.reuse_rate())
    return reg


#: Canonical registry name -> legacy flat-dict key (unlabelled families).
_LEGACY_FLAT = {
    "engine_epochs_total": "engine_epochs",
    "engine_cache_hits_total": "engine_cache_hits",
    "engine_cache_misses_total": "engine_cache_misses",
    "engine_shard_tasks_total": "engine_shard_tasks",
    "engine_entities_recomputed_total": "engine_entities_recomputed",
    "engine_entities_reused_total": "engine_entities_reused",
    "engine_repair_solves_total": "engine_repair_solves",
    "engine_repair_reuses_total": "engine_repair_reuses",
    "engine_shards": "engine_shards",
    "engine_cache_hit_rate": "engine_cache_hit_rate",
    "engine_shard_utilisation": "engine_shard_utilisation",
    "engine_mean_epoch_ms": "engine_mean_epoch_ms",
    "engine_reuse_rate": "engine_reuse_rate",
}


def _legacy_key(name: str, labels: Dict[str, str]) -> Optional[str]:
    """Map one canonical registry sample onto its legacy flat key."""
    if name == "engine_stage_seconds_total":
        stage = labels["stage"]
        return "engine_stage_seconds_all" if stage == "all" else f"engine_stage_seconds_{stage}"
    if name == "engine_stage_recomputed_total":
        return f"engine_recomputed_{_metric_stage(labels['stage'])}"
    if name == "engine_stage_reused_total":
        return f"engine_reused_{_metric_stage(labels['stage'])}"
    return _LEGACY_FLAT.get(name)


def engine_metrics(stats: "EngineStats") -> Dict[str, float]:
    """Flatten engine counters into an exportable metric mapping.

    Compatibility view over :func:`engine_registry`: every key the
    pre-observatory exporter produced is preserved (the PR-3 golden
    payloads depend on them), derived from the canonical registry
    samples.  The aggregate stage time is exported as
    ``engine_stage_seconds_all``.  The pre-observatory flat name
    ``engine_stage_seconds_total`` -- which collides with the
    Prometheus counter suffix convention -- shipped as a deprecated
    alias in PR 4 and was removed in PR 5; the labelled registry family
    of the same name is unaffected.
    """
    metrics: Dict[str, float] = {}
    for name, labels, value in engine_registry(stats).samples():
        key = _legacy_key(name, labels)
        if key is not None:
            metrics[key] = float(value)
    return metrics


def _metric_stage(stage: str) -> str:
    """Fine-grained stage label -> exporter-safe metric suffix."""
    return stage.replace(".", "_")


def render_engine_metrics(metrics: Dict[str, float]) -> str:
    """One ``name value`` line per metric, in name order."""
    return "\n".join(f"{name} {metrics[name]:.6g}" for name in sorted(metrics))
