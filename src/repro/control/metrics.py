"""Network-health metrics: how bad did an epoch actually get?

Experiments evaluate a controller allocation on the *real* network (via
:meth:`repro.net.simulation.NetworkSimulator.evaluate`) and summarise
the outcome here.  Severity bands follow how the paper talks about
outages: local congestion, severe congestion, and major outages with
packet loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.net.demand import DemandMatrix
from repro.net.simulation import GroundTruth

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.stats import EngineStats

__all__ = [
    "Severity",
    "HealthReport",
    "assess_health",
    "engine_metrics",
    "render_engine_metrics",
]


class Severity(Enum):
    """How healthy one epoch was, worst condition wins."""

    OK = "ok"
    DEGRADED = "degraded"  # high utilization, no meaningful loss
    CONGESTED = "congested"  # saturated links / measurable loss
    OUTAGE = "outage"  # major loss or undelivered demand

    def at_least(self, other: "Severity") -> bool:
        order = [Severity.OK, Severity.DEGRADED, Severity.CONGESTED, Severity.OUTAGE]
        return order.index(self) >= order.index(other)


#: Severity thresholds (fractions).  The degraded bound sits just above
#: the TE's default 0.9 engineering target so a healthy network running
#: exactly at target classifies as OK.
_DEGRADED_MLU = 0.92
_CONGESTED_LOSS = 1e-3
_OUTAGE_LOSS = 0.05
_OUTAGE_DELIVERY = 0.90


@dataclass
class HealthReport:
    """Outcome of evaluating an allocation on the real network.

    Attributes:
        mlu: Maximum link utilization (post-drop).
        loss_rate: Fraction of admitted traffic dropped in-network.
        delivered_fraction: Delivered rate over *true* total demand
            (captures both in-network drops and demand that was never
            admitted/routed).
        congested_links: Directed edges at full utilization.
        severity: Overall classification.
    """

    mlu: float
    loss_rate: float
    delivered_fraction: float
    congested_links: List[Tuple[str, str]] = field(default_factory=list)
    severity: Severity = Severity.OK

    def is_outage(self) -> bool:
        return self.severity == Severity.OUTAGE

    def summary(self) -> str:
        return (
            f"{self.severity.value}: mlu={self.mlu:.2f} loss={self.loss_rate:.2%} "
            f"delivered={self.delivered_fraction:.2%} "
            f"congested={len(self.congested_links)}"
        )


def assess_health(truth: GroundTruth, true_demand: DemandMatrix) -> HealthReport:
    """Classify one epoch's real network state.

    Args:
        truth: Simulator output for the allocation actually programmed.
        true_demand: The demand hosts actually offered (not the
            controller's belief), the denominator for delivery.
    """
    mlu = truth.max_link_utilization()
    loss = truth.loss_rate()
    offered = true_demand.total()
    delivered = truth.total_delivered() / offered if offered > 0 else 1.0

    if loss >= _OUTAGE_LOSS or delivered < _OUTAGE_DELIVERY:
        severity = Severity.OUTAGE
    elif loss >= _CONGESTED_LOSS or mlu >= 1.0 - 1e-9:
        severity = Severity.CONGESTED
    elif mlu >= _DEGRADED_MLU:
        severity = Severity.DEGRADED
    else:
        severity = Severity.OK

    return HealthReport(
        mlu=mlu,
        loss_rate=loss,
        delivered_fraction=delivered,
        congested_links=truth.congested_edges(),
        severity=severity,
    )


def engine_metrics(stats: "EngineStats") -> Dict[str, float]:
    """Flatten engine counters into an exportable metric mapping.

    Takes anything shaped like
    :class:`~repro.engine.stats.EngineStats` (duck-typed so this
    module never imports the engine package); keys follow the usual
    ``<subsystem>_<quantity>`` exporter convention.
    """
    metrics = {
        "engine_epochs": float(stats.epochs),
        "engine_cache_hits": float(stats.cache_hits),
        "engine_cache_misses": float(stats.cache_misses),
        "engine_cache_hit_rate": float(stats.cache_hit_rate),
        "engine_shards": float(stats.shards),
        "engine_shard_tasks": float(stats.shard_tasks),
        "engine_shard_utilisation": float(stats.shard_utilisation()),
        "engine_mean_epoch_ms": float(stats.mean_epoch_ms()),
        "engine_entities_recomputed": float(stats.total_entities_recomputed),
        "engine_entities_reused": float(stats.total_entities_reused),
        "engine_reuse_rate": float(stats.reuse_rate()),
        "engine_repair_solves": float(stats.repair_solves),
        "engine_repair_reuses": float(stats.repair_reuses),
    }
    for stage in sorted(stats.stage_seconds):
        metrics[f"engine_stage_seconds_{stage}"] = float(stats.stage_seconds[stage])
    for stage in sorted(stats.entities_recomputed):
        metrics[f"engine_recomputed_{_metric_stage(stage)}"] = float(
            stats.entities_recomputed[stage]
        )
    for stage in sorted(stats.entities_reused):
        metrics[f"engine_reused_{_metric_stage(stage)}"] = float(
            stats.entities_reused[stage]
        )
    return metrics


def _metric_stage(stage: str) -> str:
    """Fine-grained stage label -> exporter-safe metric suffix."""
    return stage.replace(".", "_")


def render_engine_metrics(metrics: Dict[str, float]) -> str:
    """One ``name value`` line per metric, in name order."""
    return "\n".join(f"{name} {metrics[name]:.6g}" for name in sorted(metrics))
