"""Traffic engineering: capacity-aware greedy multipath placement.

The controller's job is to turn (topology, demand) into path
allocations.  We implement a standard greedy k-shortest-path
water-filling heuristic: demands are placed largest-first, each split
across its k shortest paths up to residual capacity.  Demand that
cannot fit anywhere is still sent down the shortest path -- in a real
WAN the packets are transmitted regardless and drop at the bottleneck,
which is precisely how incorrect inputs turn into congestion outages.

This is intentionally a *correct* TE algorithm: the paper's premise is
that "the SDN controller itself operates correctly, but is compromised
because it receives inputs that do not accurately reflect the current
state of the network."
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.net.demand import DemandMatrix
from repro.net.flows import FlowAssignment, FlowRule
from repro.net.routing import NoRouteError, Path, k_shortest_paths
from repro.net.topology import Topology

__all__ = ["greedy_te"]

#: Placements smaller than this are noise and are skipped.
_MIN_PLACEMENT = 1e-9


def greedy_te(
    topology: Topology,
    demand: DemandMatrix,
    k: int = 4,
    target_utilization: float = 0.9,
) -> FlowAssignment:
    """Place a demand matrix on a topology, largest demands first.

    Args:
        topology: The graph the controller believes in (already
            filtered to usable gear).
        demand: The demand matrix the controller believes in.
        k: Path diversity per ingress/egress pair.
        target_utilization: Engineering headroom -- water-filling
            spreads traffic once a link reaches this fraction of its
            capacity (real TE keeps headroom for bursts and estimation
            error; it is also what makes *under*-reported demand
            dangerous, since a controller that believes in less traffic
            sees no reason to spread).

    Returns:
        A :class:`FlowAssignment`; pairs with no path at all land in
        ``unrouted``.
    """
    if not 0 < target_utilization <= 1:
        raise ValueError(
            f"target_utilization must be in (0, 1], got {target_utilization}"
        )
    residual: Dict[Tuple[str, str], float] = {}
    for src, dst in topology.directed_edges():
        link = topology.link_between(src, dst)
        assert link is not None
        residual[(src, dst)] = link.capacity * target_utilization

    assignment = FlowAssignment()
    entries = sorted(
        demand.nonzero_entries(), key=lambda entry: (-entry[2], entry[0], entry[1])
    )
    for src, dst, rate in entries:
        if not topology.has_node(src) or not topology.has_node(dst):
            assignment.unrouted[(src, dst)] = rate
            continue
        try:
            paths = k_shortest_paths(topology, src, dst, k)
        except NoRouteError:
            assignment.unrouted[(src, dst)] = rate
            continue
        rules = _water_fill(paths, rate, residual)
        assignment.rules[(src, dst)] = rules
    return assignment


def _water_fill(
    paths: List[Path], rate: float, residual: Dict[Tuple[str, str], float]
) -> List[FlowRule]:
    """Fill paths in cost order up to residual capacity.

    Any remainder that fits nowhere is sent down the first (shortest)
    path anyway; the network, not the allocator, will drop it.
    """
    rules: List[FlowRule] = []
    remaining = rate
    for path in paths:
        if remaining <= _MIN_PLACEMENT:
            break
        headroom = min(residual[edge] for edge in path.edges())
        placed = min(remaining, max(0.0, headroom))
        if placed <= _MIN_PLACEMENT:
            continue
        for edge in path.edges():
            residual[edge] -= placed
        rules.append(FlowRule(path, placed))
        remaining -= placed

    if remaining > _MIN_PLACEMENT:
        spill_path = paths[0]
        for edge in spill_path.edges():
            residual[edge] -= remaining
        if rules and rules[0].path == spill_path:
            rules[0] = FlowRule(spill_path, rules[0].rate + remaining)
        else:
            rules.insert(0, FlowRule(spill_path, remaining))
    return rules
