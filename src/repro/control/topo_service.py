"""Topology instrumentation service.

Stitches per-interface link-status reports into the controller's graph
view of the network (paper Section 2: "constructing a topology from
individual link statuses").  The service owns a *reference model* --
the design-time inventory of routers, links, and capacities the paper
notes operators maintain [23, 25, 35] -- and telemetry decides which of
those links are currently usable.

Stitching rule: a link enters the controller topology only when **both**
endpoint interfaces report operationally up.  Missing or malformed
status reports are treated as down (the conservative reading); the
Section 2.2 bugs change exactly these behaviours:

- :class:`~repro.faults.aggregation_faults.PartialTopologyStitch`
  discards the named routers' reports before stitching,
- :class:`~repro.faults.aggregation_faults.LivenessMisreport` forces
  the liveness of named links,
- :class:`~repro.faults.aggregation_faults.StaleTopology` ignores
  current statuses entirely and reports the full reference model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults.aggregation_faults import (
    LivenessMisreport,
    PartialTopologyStitch,
    StaleTopology,
)
from repro.faults.base import AggregationBug
from repro.net.topology import Link, Topology
from repro.telemetry.counters import MalformedValueError, coerce_rate
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["TopologyService"]


def _rate_or_none(raw: object) -> Optional[float]:
    """Best-effort rate coercion; None for missing/unparseable values."""
    try:
        return coerce_rate(raw)  # type: ignore[arg-type]
    except MalformedValueError:
        return None


def _status_is_up(raw: object) -> bool:
    """The service's (naive) interpretation of a raw status value.

    Production aggregation code coerces loosely; anything that is not
    a clean truthy report counts as down.
    """
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, str):
        return raw.strip().lower() in ("up", "true", "1")
    if isinstance(raw, (int, float)):
        return raw == 1
    return False


class TopologyService:
    """Builds the controller's topology input from a snapshot.

    Args:
        reference: The design-time network model (all routers and links
            that exist, with capacities).
        bugs: Aggregation bugs active in this service build.
        infer_faulty_from_counters: Also treat a link as faulty when one
            endpoint's rx counter reads (near) zero while the opposite
            endpoint is transmitting.  This mirrors the production
            behaviour behind the paper's zeroed-telemetry outage: "these
            messages led the control plane to interpret these interfaces
            as faulty and refrain from routing traffic through these
            otherwise functioning interfaces."  Unparseable counters are
            treated the same way.

    Raises:
        TypeError: If given a bug type this service does not interpret.
    """

    _SUPPORTED_BUGS = (PartialTopologyStitch, LivenessMisreport, StaleTopology)

    #: Rates below this count as "not transmitting" for counter liveness.
    _ACTIVITY_THRESHOLD = 1e-3

    def __init__(
        self,
        reference: Topology,
        bugs: Sequence[AggregationBug] = (),
        infer_faulty_from_counters: bool = False,
    ) -> None:
        self._reference = reference
        for bug in bugs:
            if not isinstance(bug, self._SUPPORTED_BUGS):
                raise TypeError(
                    f"TopologyService does not interpret {type(bug).__name__}"
                )
        self._bugs = list(bugs)
        self._infer_faulty_from_counters = infer_faulty_from_counters

    @property
    def reference(self) -> Topology:
        return self._reference

    def build(self, snapshot: NetworkSnapshot) -> Topology:
        """Stitch the controller's topology view for this snapshot."""
        discarded_nodes = set()
        forced_liveness = {}
        stale = False
        for bug in self._bugs:
            if isinstance(bug, PartialTopologyStitch):
                discarded_nodes |= bug.missing_nodes
            elif isinstance(bug, LivenessMisreport):
                for link_name in bug.links:
                    forced_liveness[link_name] = bug.report_up
            elif isinstance(bug, StaleTopology):
                stale = True

        view = Topology(f"{self._reference.name}:controller-view")
        for node in self._reference.nodes():
            view.add_node(node)

        for link in self._reference.links():
            if stale:
                live = True
            elif link.name in forced_liveness:
                live = forced_liveness[link.name]
            else:
                live = self._stitched_liveness(snapshot, link, discarded_nodes)
            if live:
                view.add_link(link)
        return view

    def _stitched_liveness(
        self, snapshot: NetworkSnapshot, link: Link, discarded_nodes: set
    ) -> bool:
        """Both endpoints must report up; discarded/missing means down."""
        for node, peer in link.directions():
            if node in discarded_nodes:
                return False
            report = snapshot.status(node, peer)
            if report is None or not _status_is_up(report.oper_up):
                return False
        if self._infer_faulty_from_counters and self._counters_look_faulty(snapshot, link):
            return False
        return True

    def _counters_look_faulty(self, snapshot: NetworkSnapshot, link: Link) -> bool:
        """One side silent while the other transmits, or junk counters."""
        for node, peer in link.directions():
            rx_reading = snapshot.counter(node, peer)
            tx_reading = snapshot.counter(peer, node)
            if rx_reading is None or tx_reading is None:
                continue
            rx = _rate_or_none(rx_reading.rx_rate)
            tx = _rate_or_none(tx_reading.tx_rate)
            if rx is None or tx is None:
                return True  # unparseable counters read as a faulty interface
            if rx <= self._ACTIVITY_THRESHOLD < tx:
                return True
        return False
