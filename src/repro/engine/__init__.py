"""The always-on validation engine.

Hodor is meant to run continuously -- "validation must be on always"
-- which makes per-epoch cost the quantity that matters.  This package
provides the streaming counterpart to the one-shot
:class:`~repro.core.pipeline.Hodor` facade:

- :mod:`repro.engine.cache` -- topology-derived structures built once
  per distinct topology and memoized behind a structural fingerprint;
- :mod:`repro.engine.sharding` -- ordered slice-sharding of the
  per-signal pipeline stages over a thread pool;
- :mod:`repro.engine.runner` -- :class:`ValidationEngine`, which ties
  the two together and streams epochs through the pipeline;
- :mod:`repro.engine.incremental` -- the delta-aware epoch path
  (``mode="incremental"``) that diffs consecutive snapshots and reuses
  every per-entity verdict whose inputs did not change;
- :mod:`repro.engine.stats` -- observable counters (epochs, cache
  hits, stage timings, shard utilisation, entity reuse);
- :mod:`repro.engine.diff` -- the report comparator backing the
  differential test harness that proves engine output identical to
  the serial path.
"""

from repro.engine.cache import (
    TopologyCache,
    TopologyCacheStore,
    structural_key,
    topology_fingerprint,
)
from repro.engine.diff import compare_reports
from repro.engine.incremental import IncrementalValidator
from repro.engine.runner import EpochInput, ValidationEngine
from repro.engine.sharding import ShardMap, split_slices
from repro.engine.stats import EngineStats

__all__ = [
    "TopologyCache",
    "TopologyCacheStore",
    "structural_key",
    "topology_fingerprint",
    "compare_reports",
    "IncrementalValidator",
    "EpochInput",
    "ValidationEngine",
    "ShardMap",
    "split_slices",
    "EngineStats",
]
