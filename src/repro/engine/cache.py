"""Topology-keyed caches of validation-derived structures.

Every step of the Hodor pipeline needs the same handful of structures
derived from the reference topology: the directed-edge list, the
per-router incidence maps, the flow-conservation equation blocks, and
the sorted name orders the checkers iterate in.  Historically each
component rebuilt its own copy per call -- the
:class:`~repro.core.hardening.Hardener` scanned every edge once per
router to decide whether a router carries traffic, and the
:class:`~repro.core.drain_check.DrainChecker` re-split every link name
per router -- which made a validation pass superlinear in network size
and made *every* epoch pay topology-setup cost even when the topology
had not changed.

This module is the single home for those builders.  A
:class:`TopologyCache` is an immutable bundle of all of them, built in
one pass; a :class:`TopologyCacheStore` memoizes caches behind a
structural :func:`topology_fingerprint`, so an always-on engine
replaying epoch after epoch on an unchanged topology performs the
setup exactly once and takes a cache hit on every later epoch.  Any
topology change (node or link added/removed, capacity or drain or
vendor flipped) changes the fingerprint and transparently invalidates
the entry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.flow_repair import ConservationSystem
from repro.net.topology import Link, Topology

__all__ = [
    "topology_fingerprint",
    "structural_key",
    "TopologyCache",
    "TopologyCacheStore",
    "VectorModelStore",
]


def structural_key(topology: Topology) -> Tuple:
    """A hashable value that is equal iff two topologies are equal.

    Includes every :class:`~repro.net.topology.Node` and
    :class:`~repro.net.topology.Link` record (they are frozen
    dataclasses, so capacities, drain bits, reasons, and vendors all
    participate), in name order so construction order does not matter.
    """
    nodes = tuple(sorted((n for n in topology.nodes()), key=lambda n: n.name))
    links = tuple(sorted(topology.links(), key=lambda link: link.name))
    return (nodes, links)


def topology_fingerprint(topology: Topology) -> str:
    """A stable hex digest of the topology's structural content.

    Suitable for logs, metrics labels, and cross-process comparison;
    in-process cache lookups use :func:`structural_key` directly (no
    hashing collisions, no digest cost).
    """
    return hashlib.sha256(repr(structural_key(topology)).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TopologyCache:
    """Every topology-derived structure one validation pass needs.

    Built once per distinct topology (see :class:`TopologyCacheStore`)
    and shared read-only by the collector, hardener, and checkers.
    Iteration orders deliberately mirror what each component previously
    derived per call, so cached and uncached passes are
    indistinguishable output-wise:

    Attributes:
        fingerprint: :func:`topology_fingerprint` of the source.
        nodes: Router names in topology insertion order (the order
            :meth:`~repro.net.topology.Topology.node_names` returns).
        sorted_nodes: Router names in sorted order (checker order).
        node_index: Router name -> equation row index.
        directed_edges: All directed edges, two per link, in canonical
            link-name order (hardening order).
        links: Link records in insertion order.
        sorted_link_names: Canonical link names, sorted (checker order).
        node_edges: Router -> the directed edges touching it.
        node_links: Router -> the canonical names of its links.
        conservation: Prebuilt flow-conservation equation blocks.
    """

    fingerprint: str
    nodes: Tuple[str, ...]
    sorted_nodes: Tuple[str, ...]
    node_index: Dict[str, int]
    directed_edges: Tuple[Tuple[str, str], ...]
    links: Tuple[Link, ...]
    sorted_link_names: Tuple[str, ...]
    node_edges: Dict[str, Tuple[Tuple[str, str], ...]]
    node_links: Dict[str, Tuple[str, ...]]
    conservation: ConservationSystem

    @classmethod
    def from_topology(cls, topology: Topology) -> "TopologyCache":
        """Build every derived structure in one pass."""
        nodes = tuple(topology.node_names())
        directed_edges = tuple(topology.directed_edges())
        links = tuple(topology.links())

        node_edges: Dict[str, list] = {node: [] for node in nodes}
        for src, dst in directed_edges:
            node_edges[src].append((src, dst))
            node_edges[dst].append((src, dst))
        node_links: Dict[str, list] = {node: [] for node in nodes}
        for link in links:
            node_links[link.a].append(link.name)
            node_links[link.b].append(link.name)

        return cls(
            fingerprint=topology_fingerprint(topology),
            nodes=nodes,
            sorted_nodes=tuple(sorted(nodes)),
            node_index={node: i for i, node in enumerate(nodes)},
            directed_edges=directed_edges,
            links=links,
            sorted_link_names=tuple(sorted(link.name for link in links)),
            node_edges={node: tuple(edges) for node, edges in node_edges.items()},
            node_links={node: tuple(names) for node, names in node_links.items()},
            conservation=ConservationSystem.build(nodes, directed_edges),
        )


class TopologyCacheStore:
    """An LRU store of :class:`TopologyCache` entries.

    Keys are :func:`structural_key` tuples, so a lookup on a mutated
    topology misses and builds a fresh cache -- callers never have to
    invalidate explicitly.  The store counts hits and misses; the
    engine surfaces them through
    :class:`~repro.engine.stats.EngineStats`.

    Args:
        max_entries: Evict least-recently-used entries beyond this.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Tuple, TopologyCache]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, topology: Topology) -> TopologyCache:
        """The cache for this topology, building it on first sight."""
        key = structural_key(topology)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        cache = TopologyCache.from_topology(topology)
        self._entries[key] = cache
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        return cache


class VectorModelStore:
    """An LRU store of compiled vector models, one per topology.

    The vector backend's compilation step
    (:meth:`repro.core.vector.model.VectorModel.from_cache`) lowers a
    :class:`TopologyCache` into indexed numpy arrays and CSR incidence
    matrices.  Like the topology caches themselves, the compiled model
    is a pure function of the topology, so entries are keyed by the
    cache fingerprint and an unchanged topology compiles exactly once
    per store lifetime.

    Args:
        max_entries: Evict least-recently-used entries beyond this.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, cache: TopologyCache):
        """The compiled model for this cache, compiling on first sight."""
        model = self._entries.get(cache.fingerprint)
        if model is not None:
            self.hits += 1
            self._entries.move_to_end(cache.fingerprint)
            return model
        self.misses += 1
        # Deferred so importing the engine does not pull numpy/scipy in
        # (and so the vector package may import this module freely).
        from repro.core.vector.model import VectorModel

        model = VectorModel.from_cache(cache)
        self._entries[cache.fingerprint] = model
        while len(self._entries) > self._max_entries:
            self._entries.popitem(last=False)
        return model
