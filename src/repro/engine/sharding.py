"""Ordered work sharding over a ``concurrent.futures`` pool.

The engine parallelises the per-signal pipeline stages (counter
collection, R1 symmetry hardening, the per-router demand invariants)
by slicing each stage's item sequence into contiguous shards and
running the *same* slice worker the serial path runs -- once per shard
on a thread pool instead of once over the whole sequence.  Results are
reassembled in shard order, so the merged output (values *and* finding
order) is exactly what a single full-sequence call produces.  That
structural identity is what the differential harness in
``tests/engine`` verifies end to end.

A :class:`ShardMap` with ``shards=1`` runs inline with zero executor
overhead, which makes "parallel engine at one shard" a faithful
serial-equivalent baseline for benchmarks.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

__all__ = ["split_slices", "ShardMap"]

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def split_slices(num_items: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(num_items)`` into up to ``shards`` contiguous slices.

    Slices are balanced to within one item and returned in order; fewer
    slices come back when there are fewer items than shards.  An empty
    sequence yields no slices.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if num_items <= 0:
        return []
    shards = min(shards, num_items)
    base, extra = divmod(num_items, shards)
    slices = []
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


class ShardMap:
    """Applies a slice worker across shards of a sequence, in order.

    This is the small protocol the core pipeline stages accept via
    their optional ``parallel`` argument: anything with a
    ``map_slices(worker, items)`` method that returns per-slice results
    in slice order.  ``None`` (the default everywhere in
    :mod:`repro.core`) means one inline full-sequence call -- the
    reference serial path.

    Args:
        shards: Number of contiguous slices per stage.  ``1`` runs
            inline (no executor, no overhead).
        executor: Optional externally owned executor; when omitted and
            ``shards > 1``, a :class:`ThreadPoolExecutor` is created
            lazily and owned by this map (close it via :meth:`close`).
        min_slice_items: Sequences with fewer than this many items per
            would-be slice use fewer slices (down to one, inline) --
            dispatching a handful of items to a pool costs more than
            processing them.  Purely a scheduling choice; merged output
            is identical at any value.
    """

    def __init__(
        self,
        shards: int = 1,
        executor: Optional[Executor] = None,
        min_slice_items: int = 32,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if min_slice_items < 1:
            raise ValueError(f"min_slice_items must be >= 1, got {min_slice_items}")
        self.shards = shards
        self.min_slice_items = min_slice_items
        self._executor = executor
        self._owns_executor = False
        #: Total slice-worker invocations dispatched (all stages).
        self.tasks_dispatched = 0
        #: Wall-clock seconds spent inside slice workers, summed over
        #: shards; divided by elapsed stage time this yields pool
        #: utilisation.
        self.busy_seconds = 0.0
        #: Optional :class:`repro.obs.trace.Tracer` (duck-typed); when
        #: set and enabled, every slice-worker invocation is recorded
        #: as a ``shard`` span.  ``None`` (the default) costs nothing.
        self.tracer = None
        #: Free-form stage label stamped onto shard spans; the engine
        #: sets it before each sharded stage call.
        self.stage_hint = ""

    # ------------------------------------------------------------------

    def _pool(self) -> Executor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.shards, thread_name_prefix="repro-engine"
            )
            self._owns_executor = True
        return self._executor

    def map_slices(
        self,
        worker: Callable[[Sequence[_Item]], _Result],
        items: Sequence[_Item],
    ) -> List[_Result]:
        """Run ``worker`` over contiguous shards of ``items``, in order.

        Equivalent to ``[worker(items)]`` modulo slicing; callers merge
        the per-slice results in list order to reproduce the serial
        output exactly.
        """
        shards = min(self.shards, max(1, len(items) // self.min_slice_items))
        slices = split_slices(len(items), shards)
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if len(slices) <= 1:
            self.tasks_dispatched += 1
            if tracing:
                with tracer.span(
                    "shard",
                    category="shard",
                    tid=1,
                    stage=self.stage_hint,
                    shard=0,
                    items=len(items),
                ):
                    start = time.perf_counter()
                    result = worker(items)
                    self.busy_seconds += time.perf_counter() - start
            else:
                start = time.perf_counter()
                result = worker(items)
                self.busy_seconds += time.perf_counter() - start
            return [result]

        # Pool threads have no span context of their own; capture the
        # dispatching thread's innermost span so shard spans nest under
        # the stage that issued them.
        parent = tracer.current_id() if tracing else None
        stage_hint = self.stage_hint

        def timed(index: int, lo: int, hi: int) -> Tuple[float, _Result]:
            if tracing:
                with tracer.span(
                    "shard",
                    category="shard",
                    tid=index + 1,
                    parent=parent,
                    stage=stage_hint,
                    shard=index,
                    items=hi - lo,
                ):
                    start = time.perf_counter()
                    result = worker(items[lo:hi])
                    return time.perf_counter() - start, result
            start = time.perf_counter()
            result = worker(items[lo:hi])
            return time.perf_counter() - start, result

        # The calling thread takes the first slice itself; only the
        # rest go to the pool.  Same merged output, one fewer dispatch.
        futures = [
            self._pool().submit(timed, index, lo, hi)
            for index, (lo, hi) in enumerate(slices[1:], start=1)
        ]
        self.tasks_dispatched += len(slices)
        results = [timed(0, *slices[0])]
        for future in futures:
            results.append(future.result())
        out = []
        for elapsed, result in results:
            self.busy_seconds += elapsed
            out.append(result)
        return out

    def close(self) -> None:
        """Shut down the owned executor, if one was created."""
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._owns_executor = False

    def __enter__(self) -> "ShardMap":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
