"""Delta-aware incremental epoch validation.

The full epoch path recomputes collection, hardening, and every
dynamic check from scratch, even though between two 30-second WAN
collections only a small fraction of signals move.  This module makes
epoch cost proportional to *churn* instead of network size: a
:class:`~repro.telemetry.delta.SnapshotDelta` identifies the changed
signals, dirty sets propagate the changes through the pipeline's
dependency structure, and every clean per-entity unit reuses the
previous epoch's output object verbatim.

Dirty propagation mirrors the data flow of the serial pipeline:

- a changed counter dirties its interface's collected entry, the R1
  check of both directed edges over its link, its router's external
  counters, and its link's status verdict;
- a value the R2 conservation solve repaired (this epoch *or* the
  previous one -- a repair that disappears is as much a change as one
  that appears) dirties the drain verdict of the edge's endpoints;
- a drain or status change dirties exactly the touched router/link in
  the hardened view and the topology/drain checks over it;
- a demand-matrix change, or any change to the network-wide hardened
  drop total (which widens every egress tolerance), dirties the demand
  check globally.

Correctness invariant, enforced by the differential harness in
``tests/engine``: the assembled report is identical to the full
path's, finding for finding and note for note, because every reused
output is the frozen object a fresh recompute would have produced and
assembly follows the serial iteration orders exactly.  The R2 stage
re-solves every epoch, but component-scoped
(:class:`~repro.core.flow_repair.ConservationSolveCache` hits are
bitwise-identical), so repair cost also tracks churn.

The validator keeps a reference to each epoch's snapshot for diffing;
callers must not mutate a snapshot after passing it in (both the
scenario worlds and the telemetry collector produce fresh snapshots
per epoch).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.control.inputs import ControllerInputs
from repro.core.config import HodorConfig
from repro.core.demand_check import DemandChecker
from repro.core.flow_repair import ConservationSolveCache
from repro.core.pipeline import Hodor
from repro.core.report import ValidationReport
from repro.core.signals import CollectedState, HardenedState
from repro.engine.cache import TopologyCache
from repro.engine.stats import EngineStats
from repro.net.topology import EXTERNAL_PEER
from repro.obs.trace import NullTracer
from repro.telemetry.delta import SnapshotDelta
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["IncrementalValidator"]


class _EpochMemo:
    """Everything the previous epoch left behind for reuse."""

    __slots__ = (
        "snapshot",
        "state",
        "demand",
        "total_dropped",
        "believed_links",
        "node_bits",
        "link_bits",
        "repaired_edges",
        "repaired_ext_in",
        "repaired_ext_out",
        "collect_caches",
        "flow_cache",
        "external_cache",
        "link_status_cache",
        "node_drain_cache",
        "link_drain_cache",
        "demand_cache",
        "topology_cache",
        "drain_node_cache",
        "drain_link_cache",
    )

    def __init__(self) -> None:
        self.snapshot: Optional[NetworkSnapshot] = None
        self.state: Optional[HardenedState] = None
        self.demand = None
        self.total_dropped: float = 0.0
        self.believed_links: FrozenSet[str] = frozenset()
        self.node_bits: Dict[str, bool] = {}
        self.link_bits: Dict[str, bool] = {}
        self.repaired_edges: Set[Tuple[str, str]] = set()
        self.repaired_ext_in: Set[str] = set()
        self.repaired_ext_out: Set[str] = set()
        self.collect_caches: Tuple[Dict, ...] = ({}, {}, {}, {}, {}, {})
        self.flow_cache: Dict = {}
        self.external_cache: Dict = {}
        self.link_status_cache: Dict = {}
        self.node_drain_cache: Dict = {}
        self.link_drain_cache: Dict = {}
        self.demand_cache: Dict = {}
        self.topology_cache: Dict = {}
        self.drain_node_cache: Dict = {}
        self.drain_link_cache: Dict = {}


_MISSING = object()


def _merge_family(
    keys,
    dirty: Optional[Set],
    old_cache: Dict,
    compute,
    counts: List[int],
    changed: Optional[Set] = None,
):
    """Recompute dirty entries, reuse clean ones, in ``keys`` order.

    ``dirty=None`` means everything is dirty (the priming epoch).  When
    ``changed`` is given, keys whose entry differs from the previous
    epoch's are collected into it -- the next stage's dirty seed.
    Returns the new entry cache (also the assembly source, in order).
    """
    new_cache: Dict = {}
    for key in keys:
        if dirty is None or key in dirty or key not in old_cache:
            entry = compute(key)
            counts[0] += 1
            if changed is not None and old_cache.get(key) != entry:
                changed.add(key)
        else:
            entry = old_cache[key]
            counts[1] += 1
        new_cache[key] = entry
    return new_cache


def _update_family(
    dirty: Set,
    cache: Dict,
    compute,
    counts: List[int],
    changed: Optional[Set] = None,
):
    """Dirty-only in-place variant of :func:`_merge_family`.

    Valid only when the key universe is unchanged since the cache was
    built: the dict's insertion order is already the assembly order and
    in-place assignment preserves it, so only the dirty keys are
    touched.  Dirty keys outside the universe (defensive dirt from
    malformed snapshot entries) are skipped, matching how the rebuild
    path never visits them.
    """
    recomputed = 0
    for key in dirty:
        old = cache.get(key, _MISSING)
        if old is _MISSING:
            continue
        entry = compute(key)
        recomputed += 1
        if changed is not None and old != entry:
            changed.add(key)
        # Exception safety lives one level up: every call sits inside
        # IncrementalValidator.validate()'s except-BaseException block,
        # which reset()s the whole memo/cache state before re-raising,
        # so a half-updated family can never survive into the next
        # epoch.  X1 is file-scoped and cannot see the caller's guard.
        cache[key] = entry  # lint: ignore[X1]
    counts[0] += recomputed
    counts[1] += len(cache) - recomputed
    return cache


class IncrementalValidator:
    """The incremental epoch path for one topology fingerprint.

    Owns the per-epoch memo, the conservation solver cache, and the
    dirty-set propagation; produced reports are identical to the full
    path's (the differential harness enforces this).

    Args:
        config: Pipeline configuration.
        cache: The topology cache shared with the full path.
        components: The per-topology pipeline components (collector,
            hardener, checkers) shared with the full path.
        stats: The engine's counters; stage timings and reuse counts
            are recorded here.
        tracer: Optional :class:`repro.obs.trace.Tracer`; when enabled,
            each epoch records stage spans annotated with
            recomputed/reused entity counts plus a ``delta`` instant
            describing the dirty sets.  Defaults to the no-op
            :class:`~repro.obs.trace.NullTracer`.
    """

    def __init__(
        self,
        config: HodorConfig,
        cache: TopologyCache,
        components,
        stats: EngineStats,
        tracer=None,
    ) -> None:
        self._config = config
        self._cache = cache
        self._components = components
        self._stats = stats
        self._tracer = tracer if tracer is not None else NullTracer()
        self._solver_cache = ConservationSolveCache()
        self._memo: Optional[_EpochMemo] = None

        self._directed_edge_set = frozenset(cache.directed_edges)
        self._edge_to_link: Dict[Tuple[str, str], str] = {}
        self._link_endpoints: Dict[str, Tuple[str, str]] = {}
        self._link_name: Dict[object, str] = {}
        self._name_to_link: Dict[str, object] = {}
        for link in cache.links:
            name = link.name
            self._edge_to_link[(link.a, link.b)] = name
            self._edge_to_link[(link.b, link.a)] = name
            self._link_endpoints[name] = (link.a, link.b)
            self._link_name[link] = name
            self._name_to_link[name] = link

    # ------------------------------------------------------------------

    def validate(
        self, snapshot: NetworkSnapshot, inputs: ControllerInputs
    ) -> ValidationReport:
        """Validate one epoch, reusing every clean per-entity verdict."""
        memo = self._memo
        delta: Optional[SnapshotDelta] = None
        if memo is not None and memo.snapshot is not None:
            delta = SnapshotDelta.between(
                memo.snapshot, snapshot, max_staleness_s=self._config.max_staleness_s
            )

        new = _EpochMemo()
        new.snapshot = snapshot

        tracer = self._tracer
        if tracer.enabled:
            if delta is None:
                tracer.instant("delta", priming=True)
            else:
                tracer.instant(
                    "delta",
                    counters=len(delta.counters),
                    statuses=len(delta.statuses),
                    drains=len(delta.drains),
                    drain_reasons=len(delta.drain_reasons),
                    link_drains=len(delta.link_drains),
                    drops=len(delta.drops),
                    probes=len(delta.probes),
                )

        # The per-family caches are updated in place in the steady
        # state; a half-updated memo must not survive an error, so any
        # failure drops it and the next epoch primes from scratch.
        try:
            with tracer.span("collect", category="stage") as span:
                reuse_before = self._reuse_totals("collect") if tracer.enabled else None
                stage_start = time.perf_counter()
                collected = self._collect(snapshot, delta, memo, new)
                self._stats.record_stage("collect", time.perf_counter() - stage_start)
                self._annotate_reuse(span, "collect", reuse_before)

            with tracer.span("harden", category="stage") as span:
                reuse_before = self._reuse_totals("harden") if tracer.enabled else None
                stage_start = time.perf_counter()
                state, changed = self._harden(collected, delta, memo, new)
                self._stats.record_stage("harden", time.perf_counter() - stage_start)
                self._annotate_reuse(span, "harden", reuse_before)

            with tracer.span("check", category="stage") as span:
                reuse_before = self._reuse_totals("check") if tracer.enabled else None
                stage_start = time.perf_counter()
                report = ValidationReport(timestamp=snapshot.timestamp, hardened=state)
                Hodor._record(
                    report, self._check_demand(inputs, state, memo, new, changed)
                )
                Hodor._record(
                    report, self._check_topology(inputs, state, memo, new, changed)
                )
                Hodor._record(report, self._check_drain(inputs, state, memo, new, changed))
                self._stats.record_stage("check", time.perf_counter() - stage_start)
                self._annotate_reuse(span, "check", reuse_before)
        except BaseException:
            self.reset()
            raise

        self._memo = new
        return report

    def _reuse_totals(self, prefix: str) -> Tuple[int, int]:
        """(recomputed, reused) totals across a stage's entity families."""
        recomputed = sum(
            count
            for stage, count in self._stats.entities_recomputed.items()
            if stage.startswith(prefix)
        )
        reused = sum(
            count
            for stage, count in self._stats.entities_reused.items()
            if stage.startswith(prefix)
        )
        return recomputed, reused

    def _annotate_reuse(self, span, prefix: str, before: Optional[Tuple[int, int]]) -> None:
        if before is None:
            return
        recomputed, reused = self._reuse_totals(prefix)
        span.annotate(recomputed=recomputed - before[0], reused=reused - before[1])

    def reset(self) -> None:
        """Drop the memo (the next epoch primes from scratch)."""
        self._memo = None

    @staticmethod
    def _family(keys, dirty, old_cache, compute, counts, changed=None):
        """Dispatch to the in-place update when the universe is stable.

        Only safe for families whose key universe is fixed by the
        topology cache (``old_cache`` was then necessarily built over
        the same ``keys``, so a matching length proves a matching
        universe).
        """
        if dirty is not None and len(old_cache) == len(keys):
            return _update_family(dirty, old_cache, compute, counts, changed)
        return _merge_family(keys, dirty, old_cache, compute, counts, changed)

    # ------------------------------------------------------------------
    # Stage 1: collection
    # ------------------------------------------------------------------

    def _collect(
        self,
        snapshot: NetworkSnapshot,
        delta: Optional[SnapshotDelta],
        memo: Optional[_EpochMemo],
        new: _EpochMemo,
    ) -> CollectedState:
        collector = self._components.collector
        collected = CollectedState(timestamp=snapshot.timestamp)
        counts = [0, 0]

        families = (
            # (snapshot mapping, changed keys, CollectedState attr, compute)
            (
                snapshot.counters,
                delta.counters if delta else None,
                "counters",
                lambda key: collector.collect_counter_entity(
                    snapshot.timestamp, key, snapshot.counters[key]
                ),
            ),
            (
                snapshot.link_status,
                delta.statuses if delta else None,
                "statuses",
                lambda key: collector.collect_status_entity(
                    key, snapshot.link_status[key]
                ),
            ),
            (
                snapshot.drains,
                delta.drains if delta else None,
                "drains",
                lambda key: collector.collect_drain_entity(key, snapshot.drains[key]),
            ),
            (
                snapshot.drain_reasons,
                delta.drain_reasons if delta else None,
                "drain_reasons",
                lambda key: collector.collect_drain_reason_entity(
                    key, snapshot.drain_reasons[key]
                ),
            ),
            (
                snapshot.link_drains,
                delta.link_drains if delta else None,
                "link_drains",
                lambda key: collector.collect_link_drain_entity(
                    key, snapshot.link_drains[key]
                ),
            ),
            (
                snapshot.drops,
                delta.drops if delta else None,
                "drops",
                lambda key: collector.collect_drop_entity(key, snapshot.drops[key]),
            ),
        )
        old_caches = memo.collect_caches if memo else ({}, {}, {}, {}, {}, {})
        new_caches = []
        for (mapping, dirty, attr, compute), old_cache in zip(families, old_caches):
            # The raw snapshot mappings are the one key universe not
            # pinned by the topology cache, so prove it stable (C-level
            # keys-view equality) before updating in place.
            if dirty is not None and mapping.keys() == old_cache.keys():
                family_cache = _update_family(dirty, old_cache, compute, counts)
            else:
                family_cache = _merge_family(
                    sorted(mapping), dirty, old_cache, compute, counts
                )
            setattr(
                collected,
                attr,
                {key: entry[0] for key, entry in family_cache.items()},
            )
            collected.findings.extend(
                finding
                for entry in family_cache.values()
                for finding in entry[1]
            )
            new_caches.append(family_cache)
        new.collect_caches = tuple(new_caches)

        collected.probes = {key: result.ok for key, result in snapshot.probes.items()}
        self._stats.record_reuse("collect", counts[0], counts[1])
        return collected

    # ------------------------------------------------------------------
    # Stage 2: hardening
    # ------------------------------------------------------------------

    def _harden(
        self,
        collected: CollectedState,
        delta: Optional[SnapshotDelta],
        memo: Optional[_EpochMemo],
        new: _EpochMemo,
    ) -> Tuple[HardenedState, Dict[str, Optional[Set]]]:
        hardener = self._components.hardener
        cache = self._cache
        state = HardenedState()
        state.findings.extend(collected.findings)
        prev_state = memo.state if memo else None

        # -- R1 flows: a changed counter dirties both directed edges of
        # its link.
        dirty_edges: Optional[Set] = None
        if delta is not None:
            dirty_edges = set()
            for a, b in delta.counters:
                for edge in ((a, b), (b, a)):
                    if edge in self._directed_edge_set:
                        dirty_edges.add(edge)
        counts = [0, 0]
        changed_pre_flows: Set = set()
        new.flow_cache = self._family(
            cache.directed_edges,
            dirty_edges,
            memo.flow_cache if memo else {},
            lambda edge: hardener.harden_edge_entity(collected, edge[0], edge[1]),
            counts,
            changed_pre_flows,
        )
        state.edge_flows = {
            edge: entry[0] for edge, entry in new.flow_cache.items()
        }
        state.findings.extend(
            finding for entry in new.flow_cache.values() for finding in entry[1]
        )
        self._stats.record_reuse("harden.flows", counts[0], counts[1])

        # -- External counters: dirtied by the router's external
        # interface counter or its drop counter.
        dirty_ext: Optional[Set] = None
        if delta is not None:
            dirty_ext = set(delta.drops)
            for node, peer in delta.counters:
                if peer == EXTERNAL_PEER:
                    dirty_ext.add(node)
        counts = [0, 0]
        changed_pre_ext: Set = set()
        new.external_cache = self._family(
            cache.nodes,
            dirty_ext,
            memo.external_cache if memo else {},
            lambda node: hardener.harden_external_entity(collected, node),
            counts,
            changed_pre_ext,
        )
        for node, (ext_in, ext_out, drop, findings) in new.external_cache.items():
            state.ext_in[node] = ext_in
            state.ext_out[node] = ext_out
            state.drops[node] = drop
            if findings:
                state.findings.extend(findings)
        self._stats.record_reuse("harden.external", counts[0], counts[1])

        # -- R2 repair: re-solved every epoch (component-scoped, with
        # bitwise-identical solver-cache hits, so cost tracks churn).
        hits_before = self._solver_cache.hits
        misses_before = self._solver_cache.misses
        repaired = hardener.repair_flows(collected, state, solver_cache=self._solver_cache)
        self._stats.repair_reuses += self._solver_cache.hits - hits_before
        self._stats.repair_solves += self._solver_cache.misses - misses_before
        for key in repaired:
            kind = key[0]
            if kind == "edge":
                new.repaired_edges.add((key[1], key[2]))
            elif kind == "ext_in":
                new.repaired_ext_in.add(key[1])
            elif kind == "ext_out":
                new.repaired_ext_out.add(key[1])

        # -- Post-repair change detection: a value changed if its
        # pre-repair entry changed OR a repair touched it this epoch or
        # last epoch and the final values differ.
        changed_flows: Optional[Set] = None
        changed_ext: Optional[Set] = None
        if prev_state is not None and memo is not None:
            candidates = changed_pre_flows | new.repaired_edges | memo.repaired_edges
            changed_flows = {
                edge
                for edge in candidates
                if prev_state.edge_flows.get(edge) != state.edge_flows[edge]
            }
            ext_candidates = (
                changed_pre_ext
                | new.repaired_ext_in
                | new.repaired_ext_out
                | memo.repaired_ext_in
                | memo.repaired_ext_out
            )
            changed_ext = {
                node
                for node in ext_candidates
                if prev_state.ext_in.get(node) != state.ext_in[node]
                or prev_state.ext_out.get(node) != state.ext_out[node]
            }

        # -- Link status: dirtied by any of the link's status, counter,
        # or probe signals (both directions).
        dirty_links: Optional[Set] = None
        if delta is not None:
            dirty_links = set()
            for family in (delta.statuses, delta.counters, delta.probes):
                for key in family:
                    name = self._edge_to_link.get(key)
                    if name is not None:
                        dirty_links.add(name)
        counts = [0, 0]
        changed_links: Set = set()
        new.link_status_cache = self._family(
            cache.links,
            None
            if dirty_links is None
            else {
                self._name_to_link[name]
                for name in dirty_links
                if name in self._name_to_link
            },
            memo.link_status_cache if memo else {},
            lambda link: hardener.harden_link_status_entity(collected, link),
            counts,
            changed_links,
        )
        link_name = self._link_name
        changed_link_names: Optional[Set] = (
            None if delta is None else {link_name[link] for link in changed_links}
        )
        state.links = {
            link_name[link]: entry[0]
            for link, entry in new.link_status_cache.items()
        }
        state.findings.extend(
            finding
            for entry in new.link_status_cache.values()
            for finding in entry[1]
        )
        self._stats.record_reuse("harden.links", counts[0], counts[1])

        # -- Node drains: dirtied by the router's drain bit/reason or a
        # post-repair flow change at the router.
        dirty_node_drains: Optional[Set] = None
        if delta is not None and changed_flows is not None and changed_ext is not None:
            dirty_node_drains = set(delta.drains) | set(delta.drain_reasons)
            dirty_node_drains |= changed_ext
            for src, dst in changed_flows:
                dirty_node_drains.add(src)
                dirty_node_drains.add(dst)
        counts = [0, 0]
        changed_node_drains: Set = set()
        new.node_drain_cache = self._family(
            cache.nodes,
            dirty_node_drains,
            memo.node_drain_cache if memo else {},
            lambda node: hardener.harden_node_drain_entity(collected, node, state),
            counts,
            changed_node_drains,
        )
        state.findings.extend(
            finding
            for entry in new.node_drain_cache.values()
            for finding in entry[1]
        )
        state.node_drains = {
            node: entry[0] for node, entry in new.node_drain_cache.items()
        }
        self._stats.record_reuse("harden.drains", counts[0], counts[1])

        # -- Link drains: dirtied by either endpoint's link-drain bit.
        dirty_link_drains: Optional[Set] = None
        if delta is not None:
            dirty_link_drains = {
                self._name_to_link[self._edge_to_link[key]]
                for key in delta.link_drains
                if key in self._edge_to_link
            }
        counts = [0, 0]
        changed_link_drains: Set = set()
        new.link_drain_cache = self._family(
            cache.links,
            dirty_link_drains,
            memo.link_drain_cache if memo else {},
            lambda link: hardener.harden_link_drain_entity(collected, link),
            counts,
            changed_link_drains,
        )
        state.findings.extend(
            finding
            for entry in new.link_drain_cache.values()
            for finding in entry[1]
        )
        state.link_drains = {
            link_name[link]: entry[0]
            for link, entry in new.link_drain_cache.items()
        }
        self._stats.record_reuse("harden.drains", counts[0], counts[1])

        new.state = state
        changed = {
            "flows": changed_flows,
            "ext": changed_ext,
            "links": changed_link_names,
            "node_drains": None if delta is None else changed_node_drains,
            "link_drains": (
                None
                if delta is None
                else {link_name[link] for link in changed_link_drains}
            ),
        }
        return state, changed

    # ------------------------------------------------------------------
    # Stage 3: dynamic checks
    # ------------------------------------------------------------------

    def _check_demand(
        self,
        inputs: ControllerInputs,
        state: HardenedState,
        memo: Optional[_EpochMemo],
        new: _EpochMemo,
        changed: Dict[str, Optional[Set]],
    ):
        from repro.core.invariants import CheckResult

        checker = self._components.demand
        total_dropped = DemandChecker.total_dropped(state)
        new.demand = inputs.demand
        new.total_dropped = total_dropped

        demand_same = memo is not None and (
            inputs.demand is memo.demand or inputs.demand == memo.demand
        )
        # The drop total widens every egress tolerance, so a change to
        # it dirties the whole check.
        dirty: Optional[Set] = None
        if (
            demand_same
            and memo is not None
            # Exact identity is the reuse guard's contract: a spurious
            # difference only costs a recompute, while a tolerance here
            # could reuse stale verdicts and break full/incremental
            # parity.
            and total_dropped == memo.total_dropped  # lint: ignore[F1]
            and changed["ext"] is not None
        ):
            dirty = set(changed["ext"])

        counts = [0, 0]
        new.demand_cache = self._family(
            self._cache.sorted_nodes,
            dirty,
            memo.demand_cache if memo else {},
            lambda node: checker.check_node_entity(
                inputs.demand, state, node, total_dropped
            ),
            counts,
        )
        self._stats.record_reuse("check.demand", counts[0], counts[1])

        result = CheckResult(input_name="demand")
        floor = max(self._config.rate_floor, self._config.active_threshold)
        if total_dropped > floor:
            result.notes.append(DemandChecker.dropped_note(total_dropped))
        for invariants, notes in new.demand_cache.values():
            result.results.extend(invariants)
            result.notes.extend(notes)
        skipped = result.num_skipped
        if skipped:
            result.notes.append(DemandChecker.skipped_note(skipped))
        return result

    def _check_topology(
        self,
        inputs: ControllerInputs,
        state: HardenedState,
        memo: Optional[_EpochMemo],
        new: _EpochMemo,
        changed: Dict[str, Optional[Set]],
    ):
        from repro.core.invariants import CheckResult

        checker = self._components.topology
        believed = frozenset(link.name for link in inputs.topology.links())
        new.believed_links = believed

        dirty: Optional[Set] = None
        if memo is not None and changed["links"] is not None:
            dirty = set(believed ^ memo.believed_links) | changed["links"]

        counts = [0, 0]
        universe = set(state.links) | believed
        compute = lambda name: checker.check_link_entity(
            name, name in believed, state.links.get(name)
        )
        old_cache = memo.topology_cache if memo else {}
        # This is the one check whose key universe follows the inputs
        # (the union of hardened and believed links), so prove it
        # unchanged before updating in place.
        if dirty is not None and old_cache.keys() == universe:
            new.topology_cache = _update_family(dirty, old_cache, compute, counts)
        else:
            new.topology_cache = _merge_family(
                sorted(universe), dirty, old_cache, compute, counts
            )
        self._stats.record_reuse("check.topology", counts[0], counts[1])

        result = CheckResult(input_name="topology")
        for conditions, notes in new.topology_cache.values():
            result.results.extend(conditions)
            result.notes.extend(notes)
        return result

    def _check_drain(
        self,
        inputs: ControllerInputs,
        state: HardenedState,
        memo: Optional[_EpochMemo],
        new: _EpochMemo,
        changed: Dict[str, Optional[Set]],
    ):
        from repro.core.invariants import CheckResult

        checker = self._components.drain
        cache = self._cache
        new.node_bits = {
            node: inputs.drains.is_node_drained(node) for node in cache.sorted_nodes
        }
        new.link_bits = {
            name: inputs.drains.is_link_drained(name)
            for name in cache.sorted_link_names
        }

        dirty_nodes: Optional[Set] = None
        dirty_links: Optional[Set] = None
        if (
            memo is not None
            and changed["node_drains"] is not None
            and changed["links"] is not None
            and changed["link_drains"] is not None
        ):
            dirty_nodes = set(changed["node_drains"])
            for node, bit in new.node_bits.items():
                if memo.node_bits.get(node) != bit:
                    dirty_nodes.add(node)
            for name in changed["links"]:
                endpoints = self._link_endpoints.get(name)
                if endpoints is not None:
                    dirty_nodes.update(endpoints)
            dirty_links = set(changed["link_drains"])
            for name, bit in new.link_bits.items():
                if memo.link_bits.get(name) != bit:
                    dirty_links.add(name)

        counts = [0, 0]
        new.drain_node_cache = self._family(
            cache.sorted_nodes,
            dirty_nodes,
            memo.drain_node_cache if memo else {},
            lambda node: checker.check_node_entity(
                inputs.drains, state, cache.node_links, node
            ),
            counts,
        )
        new.drain_link_cache = self._family(
            cache.sorted_link_names,
            dirty_links,
            memo.drain_link_cache if memo else {},
            lambda name: checker.check_link_entity(inputs.drains, state, name),
            counts,
        )
        self._stats.record_reuse("check.drain", counts[0], counts[1])

        result = CheckResult(input_name="drain")
        for conditions, notes in new.drain_node_cache.values():
            result.results.extend(conditions)
            result.notes.extend(notes)
        for conditions in new.drain_link_cache.values():
            result.results.extend(conditions)
        return result
