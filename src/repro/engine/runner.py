"""The always-on validation engine.

:class:`ValidationEngine` is the long-lived counterpart to
constructing a fresh :class:`~repro.core.pipeline.Hodor` per epoch.
It keeps three things alive across validation passes:

1. A :class:`~repro.engine.cache.TopologyCacheStore`, so every epoch
   on an unchanged topology reuses the memoized topology-derived
   structures (directed-edge order, incidence maps, conservation
   equation blocks) instead of rebuilding them.
2. A :class:`~repro.engine.sharding.ShardMap`, which slices the
   per-signal pipeline stages (counter collection, R1 symmetry, the
   per-router demand invariants) across a thread pool.  Slices are
   contiguous and merged in order, so the engine's reports are
   *identical* to the serial path's -- the differential harness in
   ``tests/engine`` asserts this verdict for verdict.
3. :class:`~repro.engine.stats.EngineStats` counters: epochs, cache
   hits/misses, per-stage wall time, shard utilisation.

Example:
    >>> from repro.engine import ValidationEngine
    >>> engine = ValidationEngine(topology, shards=4)
    >>> for epoch in timeline:
    ...     report = engine.validate(epoch.snapshot, epoch.inputs)
    >>> engine.stats.cache_hits   # doctest: +SKIP
    len(timeline) - 1
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.history.sink import HistorySink

from repro.control.inputs import ControllerInputs
from repro.core.collection import SignalCollector
from repro.core.config import HodorConfig
from repro.core.demand_check import DemandChecker
from repro.core.drain_check import DrainChecker
from repro.core.hardening import Hardener
from repro.core.pipeline import Hodor
from repro.core.report import ValidationReport
from repro.core.topology_check import TopologyChecker
from repro.engine.cache import TopologyCache, TopologyCacheStore, VectorModelStore
from repro.engine.incremental import IncrementalValidator
from repro.engine.sharding import ShardMap
from repro.engine.stats import STAGES, EngineStats
from repro.net.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["EpochInput", "ValidationEngine"]


@dataclass
class EpochInput:
    """One epoch of work for :meth:`ValidationEngine.replay`.

    Attributes:
        snapshot: The telemetry snapshot for this epoch.
        inputs: The controller inputs produced for this epoch.
        topology: Optional reference-topology override; ``None`` means
            the engine's configured reference.  Passing the changed
            topology here is how a live deployment rolls a topology
            update through the engine (the cache store handles
            invalidation transparently).
    """

    snapshot: NetworkSnapshot
    inputs: ControllerInputs
    topology: Optional[Topology] = None


class _Components:
    """The per-topology pipeline components, built once per cache."""

    __slots__ = ("collector", "hardener", "demand", "topology", "drain")

    def __init__(
        self, reference: Topology, config: HodorConfig, cache: TopologyCache
    ) -> None:
        self.collector = SignalCollector(config)
        self.hardener = Hardener(reference, config, cache=cache)
        self.demand = DemandChecker(config, cache=cache)
        self.topology = TopologyChecker(config)
        self.drain = DrainChecker(config, cache=cache)


class ValidationEngine:
    """Streaming multi-epoch validation with sharding and caching.

    Args:
        reference: The design-time network model epochs default to.
        config: Thresholds and options; defaults follow the paper.
        shards: Contiguous slices per sharded pipeline stage; ``1``
            runs every stage inline (serial-equivalent, zero pool
            overhead).
        cache_store: Optional shared topology-cache store; one is
            created when omitted.  Sharing a store across engines
            shares the memoized topology structures.
        mode: ``"full"`` recomputes every epoch from scratch (sharded);
            ``"incremental"`` diffs each snapshot against the previous
            epoch and reuses every per-entity verdict whose inputs did
            not change (see :mod:`repro.engine.incremental`).  Both
            produce identical reports.
        backend: ``"python"`` runs the per-entity reference units;
            ``"vector"`` evaluates epochs on the array-compiled
            topology model (see :mod:`repro.core.vector`), which is
            internally delta-aware, so both modes route to the same
            vector validator.  All four mode/backend combinations
            produce identical reports (the differential harness and the
            fuzz oracle enforce this).
        tracer: Optional :class:`repro.obs.trace.Tracer`.  When given,
            every epoch records a span tree (epoch -> stage -> shard
            slices, plus per-verdict provenance instants).  Defaults to
            the allocation-free :class:`~repro.obs.trace.NullTracer`.
        metrics: Optional shared
            :class:`repro.obs.metrics.MetricsRegistry` to record the
            epoch/stage latency histograms into; one is created when
            omitted (exposed as :attr:`metrics`).
        history: Optional :class:`repro.history.sink.HistorySink`;
            every validated epoch is written through to it (durable
            verdict history).  The engine never owns the sink -- the
            caller closes it.  Attach a sink to either the engine or
            the stream pipeline, not both, or epochs record twice.
    """

    _MODES = ("full", "incremental")
    _BACKENDS = ("python", "vector")

    def __init__(
        self,
        reference: Topology,
        config: Optional[HodorConfig] = None,
        shards: int = 1,
        cache_store: Optional[TopologyCacheStore] = None,
        mode: str = "full",
        backend: str = "python",
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        history: Optional["HistorySink"] = None,
    ) -> None:
        if mode not in self._MODES:
            raise ValueError(f"unknown engine mode {mode!r}; expected one of {self._MODES}")
        if backend not in self._BACKENDS:
            raise ValueError(
                f"unknown engine backend {backend!r}; expected one of {self._BACKENDS}"
            )
        self._reference = reference
        self._config = config or HodorConfig()
        self._store = cache_store or TopologyCacheStore()
        self._shard_map = ShardMap(shards=shards)
        self._mode = mode
        self._backend = backend
        self.tracer = tracer if tracer is not None else NullTracer()
        self._shard_map.tracer = self.tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._epoch_hist = self.metrics.histogram(
            "engine_epoch_latency_seconds",
            "Wall-clock seconds per validation epoch.",
        )
        self._stage_hist = self.metrics.histogram(
            "engine_stage_latency_seconds",
            "Wall-clock seconds per pipeline stage per epoch.",
            labels=("stage",),
        )
        self.history = history
        self.stats = EngineStats(shards=shards, mode=mode, backend=backend)
        self._components: "OrderedDict[str, _Components]" = OrderedDict()
        self._incremental: "OrderedDict[str, IncrementalValidator]" = OrderedDict()
        self._vector: "OrderedDict[str, object]" = OrderedDict()
        self._model_store = VectorModelStore()
        self._max_component_sets = 32
        self._folder = None

    @property
    def config(self) -> HodorConfig:
        return self._config

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def cache_store(self) -> TopologyCacheStore:
        return self._store

    # ------------------------------------------------------------------

    def _components_for(
        self, reference: Topology
    ) -> Tuple[TopologyCache, _Components]:
        """Cache lookup plus per-fingerprint component reuse."""
        hits_before = self._store.hits
        cache = self._store.get(reference)
        if self._store.hits > hits_before:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1

        components = self._components.get(cache.fingerprint)
        if components is None:
            components = _Components(reference, self._config, cache)
            self._components[cache.fingerprint] = components
            while len(self._components) > self._max_component_sets:
                evicted, _ = self._components.popitem(last=False)
                self._incremental.pop(evicted, None)
                self._vector.pop(evicted, None)
        else:
            self._components.move_to_end(cache.fingerprint)
        return cache, components

    def _incremental_for(
        self, cache: TopologyCache, components: _Components
    ) -> IncrementalValidator:
        """One memoizing validator per topology fingerprint."""
        validator = self._incremental.get(cache.fingerprint)
        if validator is None:
            validator = IncrementalValidator(
                self._config, cache, components, self.stats, tracer=self.tracer
            )
            self._incremental[cache.fingerprint] = validator
        else:
            self._incremental.move_to_end(cache.fingerprint)
        return validator

    def _vector_for(self, cache: TopologyCache, components: _Components):
        """One array-compiled validator per topology fingerprint.

        The vector validator is internally delta-aware, so it serves
        both engine modes; the compiled :class:`VectorModel` is shared
        through :class:`~repro.engine.cache.VectorModelStore` and
        survives validator eviction.
        """
        validator = self._vector.get(cache.fingerprint)
        if validator is None:
            from repro.core.vector import VectorValidator

            model = self._model_store.get(cache)
            validator = VectorValidator(
                self._config,
                cache,
                components,
                self.stats,
                tracer=self.tracer,
                model=model,
            )
            self._vector[cache.fingerprint] = validator
        else:
            self._vector.move_to_end(cache.fingerprint)
        return validator

    def validate(
        self,
        snapshot: NetworkSnapshot,
        inputs: ControllerInputs,
        topology: Optional[Topology] = None,
    ) -> ValidationReport:
        """Validate one epoch; identical output to ``Hodor.validate``.

        Args:
            snapshot: The telemetry snapshot for this epoch.
            inputs: The controller inputs under validation.
            topology: Optional reference override for this epoch.
        """
        reference = topology if topology is not None else self._reference
        tracer = self.tracer
        with tracer.span(
            "epoch", epoch=self.stats.epochs, mode=self._mode, timestamp=snapshot.timestamp
        ) as epoch_span:
            total_start = time.perf_counter()
            hits_before = self.stats.cache_hits
            cache, components = self._components_for(reference)
            if tracer.enabled:
                epoch_span.annotate(cache_hit=self.stats.cache_hits > hits_before)

            if self._backend == "vector" or self._mode == "incremental":
                # The vector backend serves both modes with one
                # delta-aware validator; python/incremental keeps the
                # per-entity memoizing path.
                validator = (
                    self._vector_for(cache, components)
                    if self._backend == "vector"
                    else self._incremental_for(cache, components)
                )
                stage_before = {
                    stage: self.stats.stage_seconds.get(stage, 0.0) for stage in STAGES
                }
                report = validator.validate(snapshot, inputs)
                self.stats.epochs += 1
                total_seconds = time.perf_counter() - total_start
                self.stats.record_stage("total", total_seconds)
                self._epoch_hist.observe(total_seconds)
                for stage in STAGES:
                    self._stage_hist.labels(stage=stage).observe(
                        self.stats.stage_seconds.get(stage, 0.0) - stage_before[stage]
                    )
                self._emit_verdicts(report)
                self._record_history(report, total_seconds)
                return report

            shard_map = self._shard_map
            stage_start = time.perf_counter()
            shard_map.stage_hint = "collect"
            with tracer.span("collect", category="stage"):
                collected = components.collector.collect(snapshot, parallel=shard_map)
            stage_seconds = time.perf_counter() - stage_start
            self.stats.record_stage("collect", stage_seconds)
            self._stage_hist.labels(stage="collect").observe(stage_seconds)

            stage_start = time.perf_counter()
            shard_map.stage_hint = "harden"
            with tracer.span("harden", category="stage"):
                hardened = components.hardener.harden(collected, parallel=shard_map)
            stage_seconds = time.perf_counter() - stage_start
            self.stats.record_stage("harden", stage_seconds)
            self._stage_hist.labels(stage="harden").observe(stage_seconds)

            stage_start = time.perf_counter()
            shard_map.stage_hint = "check"
            report = ValidationReport(timestamp=snapshot.timestamp, hardened=hardened)
            with tracer.span("check", category="stage"):
                Hodor._record(
                    report,
                    components.demand.check(inputs.demand, hardened, parallel=shard_map),
                )
                Hodor._record(report, components.topology.check(inputs.topology, hardened))
                Hodor._record(report, components.drain.check(inputs.drains, hardened))
            stage_seconds = time.perf_counter() - stage_start
            self.stats.record_stage("check", stage_seconds)
            self._stage_hist.labels(stage="check").observe(stage_seconds)

            self.stats.epochs += 1
            total_seconds = time.perf_counter() - total_start
            self.stats.record_stage("total", total_seconds)
            self._epoch_hist.observe(total_seconds)
            self.stats.shard_tasks = self._shard_map.tasks_dispatched
            self.stats.shard_busy_seconds = self._shard_map.busy_seconds
            self._emit_verdicts(report)
            self._record_history(report, total_seconds)
        return report

    def validate_events(
        self,
        events,
        timestamp: float,
        inputs: ControllerInputs,
        topology: Optional[Topology] = None,
    ) -> ValidationReport:
        """Validate one sealed epoch directly from its update events.

        The scatter entry point: sealed epochs from an assembler running
        with ``build_snapshots=False`` arrive as sorted event buffers;
        the engine folds them through a persistent
        :class:`~repro.stream.fold.EventFolder` (one regex decode per
        *distinct* path for the engine's whole lifetime, then dict
        lookups) and validates the folded snapshot on the configured
        mode/backend.  Because folding replicates the reference apply
        codec object for object, the report -- findings, verdicts, and
        provenance -- is byte-identical to :meth:`validate` on a
        snapshot applied the classic way; the scatter differential in
        ``tests/stream`` enforces this across all four mode/backend
        combinations.

        Args:
            events: Deduped deliveries in sorted ``(router, uid)`` seal
                order (``AssembledEpoch.events``).
            timestamp: The epoch's collection instant.
            inputs: The controller inputs under validation.
            topology: Optional reference override for this epoch.
        """
        if self._folder is None:
            from repro.stream.fold import EventFolder

            self._folder = EventFolder()
        snapshot = self._folder.fold(events, timestamp)
        return self.validate(snapshot, inputs, topology=topology)

    def _record_history(self, report: ValidationReport, elapsed_s: float) -> None:
        """Write one validated epoch through the attached history sink."""
        if self.history is None:
            return
        self.history.record(
            report,
            source="engine",
            mode=self._mode,
            backend=self._backend,
            sealed_by="batch",
            elapsed_s=elapsed_s,
            stats=self.stats,
        )

    def _emit_verdicts(self, report: ValidationReport) -> None:
        """Emit one provenance instant per verdict (tracing only)."""
        if not self.tracer.enabled:
            return
        for name in sorted(report.provenance):
            record = report.provenance[name]
            self.tracer.instant(
                "verdict", input=name, valid=record.valid, provenance=record.to_dict()
            )

    def replay(self, epochs: Iterable[EpochInput]) -> List[ValidationReport]:
        """Validate a whole epoch stream, in order."""
        return [
            self.validate(epoch.snapshot, epoch.inputs, topology=epoch.topology)
            for epoch in epochs
        ]

    def close(self) -> None:
        """Release the shard pool (the caches stay valid)."""
        self._shard_map.close()

    def __enter__(self) -> "ValidationEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
