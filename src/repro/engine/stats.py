"""Counter surface for the always-on validation engine.

:class:`EngineStats` is the engine's observable state: epochs
processed, topology-cache hits and misses, wall time per pipeline
stage, shard-pool utilisation, and -- in incremental mode -- how many
per-entity units each stage recomputed versus reused from the previous
epoch.  It is plain data -- the engine mutates it,
:mod:`repro.control.metrics` exports it in metrics form, and the CLI
renders it for humans (or as JSON via :meth:`EngineStats.to_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EngineStats"]

#: Pipeline stages the engine times, in execution order.
STAGES = ("collect", "harden", "check")


@dataclass
class EngineStats:
    """Aggregate counters over an engine's lifetime.

    Attributes:
        epochs: Validation passes completed.
        cache_hits: Epochs that reused a memoized topology cache.
        cache_misses: Epochs that had to build topology structures.
        stage_seconds: Cumulative wall time per pipeline stage
            (``collect``, ``harden``, ``check``) plus ``total``.
        shards: Configured shard count.
        shard_tasks: Slice-worker invocations dispatched to the pool.
        shard_busy_seconds: Seconds spent inside slice workers, summed
            across shards.
        mode: ``"full"`` or ``"incremental"`` -- the epoch path the
            engine runs.
        backend: ``"python"`` (the per-entity reference units) or
            ``"vector"`` (array-compiled epoch evaluation).
        entities_recomputed: Per fine-grained stage, how many
            per-entity units were computed fresh (incremental mode; the
            priming epoch recomputes everything).
        entities_reused: Per fine-grained stage, how many per-entity
            units were served from the previous epoch's outputs.
        repair_solves: Conservation components solved fresh.
        repair_reuses: Conservation components served from the solver
            cache.
    """

    epochs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stage_seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES + ("total",)}
    )
    shards: int = 1
    shard_tasks: int = 0
    shard_busy_seconds: float = 0.0
    mode: str = "full"
    backend: str = "python"
    entities_recomputed: Dict[str, int] = field(default_factory=dict)
    entities_reused: Dict[str, int] = field(default_factory=dict)
    repair_solves: int = 0
    repair_reuses: int = 0

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def record_reuse(self, stage: str, recomputed: int, reused: int) -> None:
        """Count one incremental pass over one fine-grained stage."""
        self.entities_recomputed[stage] = (
            self.entities_recomputed.get(stage, 0) + recomputed
        )
        self.entities_reused[stage] = self.entities_reused.get(stage, 0) + reused

    def merge(self, other: "EngineStats") -> None:
        """Fold another engine's counters into this one.

        Used to aggregate totals across several engines (e.g. one per
        replayed scenario); ``shards``, ``mode``, and ``backend`` keep
        this object's values.
        """
        self.epochs += other.epochs
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        for stage, seconds in other.stage_seconds.items():
            self.record_stage(stage, seconds)
        self.shard_tasks += other.shard_tasks
        self.shard_busy_seconds += other.shard_busy_seconds
        for stage, count in other.entities_recomputed.items():
            self.entities_recomputed[stage] = (
                self.entities_recomputed.get(stage, 0) + count
            )
        for stage, count in other.entities_reused.items():
            self.entities_reused[stage] = self.entities_reused.get(stage, 0) + count
        self.repair_solves += other.repair_solves
        self.repair_reuses += other.repair_reuses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of epochs served from the topology cache."""
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def shard_utilisation(self) -> float:
        """Busy time over pool capacity (``1.0`` = all shards saturated).

        With one shard the sharded stages run inline, so this tends to
        ~1 for the fraction of total time spent in sharded stages; at
        higher shard counts it measures how well the slices filled the
        pool.
        """
        wall = self.stage_seconds.get("total", 0.0)
        if wall <= 0.0:
            return 0.0
        return min(1.0, self.shard_busy_seconds / (wall * max(1, self.shards)))

    def mean_epoch_ms(self) -> float:
        """Mean wall-clock per validation pass, in milliseconds."""
        if not self.epochs:
            return 0.0
        return 1000.0 * self.stage_seconds.get("total", 0.0) / self.epochs

    @property
    def total_entities_recomputed(self) -> int:
        return sum(self.entities_recomputed.values())

    @property
    def total_entities_reused(self) -> int:
        return sum(self.entities_reused.values())

    def reuse_rate(self) -> float:
        """Fraction of per-entity units served without recomputation."""
        total = self.total_entities_recomputed + self.total_entities_reused
        return self.total_entities_reused / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable view of every counter (CLI ``--json``)."""
        return {
            "epochs": self.epochs,
            "mode": self.mode,
            "backend": self.backend,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "stage_seconds": dict(self.stage_seconds),
            "mean_epoch_ms": self.mean_epoch_ms(),
            "shards": self.shards,
            "shard_tasks": self.shard_tasks,
            "shard_busy_seconds": self.shard_busy_seconds,
            "shard_utilisation": self.shard_utilisation(),
            "entities_recomputed": dict(self.entities_recomputed),
            "entities_reused": dict(self.entities_reused),
            "reuse_rate": self.reuse_rate(),
            "repair_solves": self.repair_solves,
            "repair_reuses": self.repair_reuses,
        }

    #: ``to_dict`` keys derived from the counters, not stored state;
    #: :meth:`from_dict` ignores them and recomputes on demand so the
    #: round-trip can never drift from the true counters.
    DERIVED_KEYS = ("cache_hit_rate", "mean_epoch_ms", "shard_utilisation", "reuse_rate")

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "EngineStats":
        """Rebuild stats from :meth:`to_dict` output.

        The inverse is exact on stored counters:
        ``EngineStats.from_dict(s.to_dict()).to_dict() == s.to_dict()``.
        Derived keys present in the payload are ignored (they are
        recomputed); unknown keys raise so schema drift fails loudly in
        the golden tests instead of silently dropping data.
        """
        known = {
            "epochs", "mode", "backend", "cache_hits", "cache_misses",
            "stage_seconds", "shards", "shard_tasks", "shard_busy_seconds",
            "entities_recomputed", "entities_reused",
            "repair_solves", "repair_reuses",
        }
        unknown = set(payload) - known - set(cls.DERIVED_KEYS)
        if unknown:
            raise ValueError(f"unknown EngineStats keys: {sorted(unknown)}")
        stage_seconds = dict(payload.get("stage_seconds", {}))  # type: ignore[arg-type]
        return cls(
            epochs=int(payload.get("epochs", 0)),  # type: ignore[arg-type]
            cache_hits=int(payload.get("cache_hits", 0)),  # type: ignore[arg-type]
            cache_misses=int(payload.get("cache_misses", 0)),  # type: ignore[arg-type]
            stage_seconds={k: float(v) for k, v in stage_seconds.items()},
            shards=int(payload.get("shards", 1)),  # type: ignore[arg-type]
            shard_tasks=int(payload.get("shard_tasks", 0)),  # type: ignore[arg-type]
            shard_busy_seconds=float(payload.get("shard_busy_seconds", 0.0)),  # type: ignore[arg-type]
            mode=str(payload.get("mode", "full")),
            backend=str(payload.get("backend", "python")),
            entities_recomputed={
                str(k): int(v)
                for k, v in dict(payload.get("entities_recomputed", {})).items()  # type: ignore[arg-type]
            },
            entities_reused={
                str(k): int(v)
                for k, v in dict(payload.get("entities_reused", {})).items()  # type: ignore[arg-type]
            },
            repair_solves=int(payload.get("repair_solves", 0)),  # type: ignore[arg-type]
            repair_reuses=int(payload.get("repair_reuses", 0)),  # type: ignore[arg-type]
        )

    def render(self) -> str:
        """A compact human-readable block (CLI output)."""
        lines = [
            f"epochs processed  : {self.epochs}",
            f"mode              : {self.mode}",
            f"backend           : {self.backend}",
            f"cache hits/misses : {self.cache_hits}/{self.cache_misses}",
            f"shards            : {self.shards}",
            f"shard tasks       : {self.shard_tasks}",
        ]
        if self.epochs:
            lines.append(f"mean epoch (ms)   : {self.mean_epoch_ms():.2f}")
            lines.append(f"shard utilisation : {self.shard_utilisation():.0%}")
            per_stage = "  ".join(
                f"{stage}={1000.0 * self.stage_seconds.get(stage, 0.0) / self.epochs:.2f}"
                for stage in STAGES
            )
            lines.append(f"stage means (ms)  : {per_stage}")
        if self.entities_recomputed or self.entities_reused:
            lines.append(
                "entities          : "
                f"{self.total_entities_recomputed} recomputed / "
                f"{self.total_entities_reused} reused "
                f"({self.reuse_rate():.0%} reuse)"
            )
            lines.append(
                f"repair solves     : {self.repair_solves} fresh / "
                f"{self.repair_reuses} cached"
            )
        return "\n".join(lines)
