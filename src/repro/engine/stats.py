"""Counter surface for the always-on validation engine.

:class:`EngineStats` is the engine's observable state: epochs
processed, topology-cache hits and misses, wall time per pipeline
stage, and shard-pool utilisation.  It is plain data -- the engine
mutates it, :mod:`repro.control.metrics` exports it in metrics form,
and the CLI renders it for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EngineStats"]

#: Pipeline stages the engine times, in execution order.
STAGES = ("collect", "harden", "check")


@dataclass
class EngineStats:
    """Aggregate counters over an engine's lifetime.

    Attributes:
        epochs: Validation passes completed.
        cache_hits: Epochs that reused a memoized topology cache.
        cache_misses: Epochs that had to build topology structures.
        stage_seconds: Cumulative wall time per pipeline stage
            (``collect``, ``harden``, ``check``) plus ``total``.
        shards: Configured shard count.
        shard_tasks: Slice-worker invocations dispatched to the pool.
        shard_busy_seconds: Seconds spent inside slice workers, summed
            across shards.
    """

    epochs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stage_seconds: Dict[str, float] = field(
        default_factory=lambda: {stage: 0.0 for stage in STAGES + ("total",)}
    )
    shards: int = 1
    shard_tasks: int = 0
    shard_busy_seconds: float = 0.0

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def merge(self, other: "EngineStats") -> None:
        """Fold another engine's counters into this one.

        Used to aggregate totals across several engines (e.g. one per
        replayed scenario); ``shards`` keeps this object's value.
        """
        self.epochs += other.epochs
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        for stage, seconds in other.stage_seconds.items():
            self.record_stage(stage, seconds)
        self.shard_tasks += other.shard_tasks
        self.shard_busy_seconds += other.shard_busy_seconds

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of epochs served from the topology cache."""
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    def shard_utilisation(self) -> float:
        """Busy time over pool capacity (``1.0`` = all shards saturated).

        With one shard the sharded stages run inline, so this tends to
        ~1 for the fraction of total time spent in sharded stages; at
        higher shard counts it measures how well the slices filled the
        pool.
        """
        wall = self.stage_seconds.get("total", 0.0)
        if wall <= 0.0:
            return 0.0
        return min(1.0, self.shard_busy_seconds / (wall * max(1, self.shards)))

    def mean_epoch_ms(self) -> float:
        """Mean wall-clock per validation pass, in milliseconds."""
        if not self.epochs:
            return 0.0
        return 1000.0 * self.stage_seconds.get("total", 0.0) / self.epochs

    def render(self) -> str:
        """A compact human-readable block (CLI output)."""
        lines = [
            f"epochs processed  : {self.epochs}",
            f"cache hits/misses : {self.cache_hits}/{self.cache_misses}",
            f"shards            : {self.shards}",
            f"shard tasks       : {self.shard_tasks}",
        ]
        if self.epochs:
            lines.append(f"mean epoch (ms)   : {self.mean_epoch_ms():.2f}")
            lines.append(f"shard utilisation : {self.shard_utilisation():.0%}")
            per_stage = "  ".join(
                f"{stage}={1000.0 * self.stage_seconds.get(stage, 0.0) / self.epochs:.2f}"
                for stage in STAGES
            )
            lines.append(f"stage means (ms)  : {per_stage}")
        return "\n".join(lines)
