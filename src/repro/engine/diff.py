"""Structural comparison of validation reports.

The engine's correctness claim is that sharded, cache-backed
validation is *observably identical* to the serial pipeline: same
verdicts, same invariants in the same order, same findings in the same
order, same hardened values.  :func:`compare_reports` checks that
claim field by field and returns human-readable differences (empty
list = identical), which is what the differential harness in
``tests/engine`` asserts on.

Floats are compared exactly -- both paths run the same code in the
same order, so they should agree bitwise -- except values the R2
repair produced (confidence ``REPAIRED``), which come out of
``numpy.linalg.lstsq`` and are allowed a tight ``math.isclose``
tolerance to stay robust against BLAS-level nondeterminism.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.report import ValidationReport
from repro.core.signals import Confidence, HardenedState, HardenedValue

__all__ = ["compare_reports"]

#: Relative tolerance applied to REPAIRED (lstsq-derived) values.
REPAIR_REL_TOL = 1e-9
#: Absolute tolerance applied to REPAIRED (lstsq-derived) values.
REPAIR_ABS_TOL = 1e-9


def _values_equal(
    a: Optional[float], b: Optional[float], *, repaired: bool, tolerance: float
) -> bool:
    if a is None or b is None:
        return a is b
    if repaired:
        return math.isclose(a, b, rel_tol=tolerance, abs_tol=REPAIR_ABS_TOL)
    # Exact comparison is this comparator's contract: outside REPAIRED
    # values, both paths run the same code in the same order and must
    # agree bitwise; a tolerance here would mask real divergence.
    return a == b  # lint: ignore[F1]


def _compare_hardened_values(
    label: str,
    a: HardenedValue,
    b: HardenedValue,
    diffs: List[str],
    tolerance: float,
) -> None:
    if a.confidence != b.confidence:
        diffs.append(f"{label}: confidence {a.confidence} != {b.confidence}")
        return
    if a.source != b.source:
        diffs.append(f"{label}: source {a.source!r} != {b.source!r}")
    repaired = a.confidence == Confidence.REPAIRED
    if not _values_equal(a.value, b.value, repaired=repaired, tolerance=tolerance):
        diffs.append(f"{label}: value {a.value!r} != {b.value!r}")


def _compare_hardened(
    a: HardenedState, b: HardenedState, diffs: List[str], tolerance: float
) -> None:
    if a.findings != b.findings:
        if len(a.findings) != len(b.findings):
            diffs.append(
                f"findings: {len(a.findings)} != {len(b.findings)} entries"
            )
        for i, (fa, fb) in enumerate(zip(a.findings, b.findings)):
            if fa != fb:
                diffs.append(f"findings[{i}]: {fa} != {fb}")

    for attr in ("edge_flows", "ext_in", "ext_out", "drops"):
        map_a, map_b = getattr(a, attr), getattr(b, attr)
        if set(map_a) != set(map_b):
            diffs.append(f"{attr}: key sets differ")
            continue
        for key in map_a:
            _compare_hardened_values(
                f"{attr}[{key!r}]", map_a[key], map_b[key], diffs, tolerance
            )

    for attr in ("links", "node_drains", "link_drains"):
        map_a, map_b = getattr(a, attr), getattr(b, attr)
        if set(map_a) != set(map_b):
            diffs.append(f"{attr}: key sets differ")
            continue
        for key in map_a:
            if map_a[key] != map_b[key]:
                diffs.append(f"{attr}[{key!r}]: {map_a[key]} != {map_b[key]}")


def compare_reports(
    a: ValidationReport,
    b: ValidationReport,
    repair_tolerance: float = REPAIR_REL_TOL,
) -> List[str]:
    """Every observable difference between two validation reports.

    Args:
        a: Typically the serial (reference) report.
        b: Typically the engine's report.
        repair_tolerance: Relative tolerance for REPAIRED values.

    Returns:
        Human-readable difference descriptions; empty means the
        reports are observably identical.
    """
    diffs: List[str] = []
    # Timestamps are copied from the snapshot, never computed; any
    # difference at all means the reports describe different epochs.
    if a.timestamp != b.timestamp:  # lint: ignore[F1]
        diffs.append(f"timestamp: {a.timestamp!r} != {b.timestamp!r}")

    _compare_hardened(a.hardened, b.hardened, diffs, repair_tolerance)

    if list(a.verdicts) != list(b.verdicts):
        diffs.append(f"verdicts: key order {list(a.verdicts)} != {list(b.verdicts)}")
    for name in sorted(a.verdicts.keys() & b.verdicts.keys()):
        if a.verdicts[name] != b.verdicts[name]:
            diffs.append(
                f"verdicts[{name!r}]: {a.verdicts[name]} != {b.verdicts[name]}"
            )

    if list(a.checks) != list(b.checks):
        diffs.append(f"checks: key order {list(a.checks)} != {list(b.checks)}")
    for name in sorted(a.checks.keys() & b.checks.keys()):
        check_a, check_b = a.checks[name], b.checks[name]
        if check_a.notes != check_b.notes:
            diffs.append(
                f"checks[{name!r}].notes: {check_a.notes} != {check_b.notes}"
            )
        if len(check_a.results) != len(check_b.results):
            diffs.append(
                f"checks[{name!r}]: {len(check_a.results)} != "
                f"{len(check_b.results)} invariants"
            )
            continue
        for i, (res_a, res_b) in enumerate(zip(check_a.results, check_b.results)):
            label = f"checks[{name!r}].results[{i}]"
            if res_a.invariant.name != res_b.invariant.name:
                diffs.append(
                    f"{label}: name {res_a.invariant.name!r} != "
                    f"{res_b.invariant.name!r}"
                )
                continue
            if res_a.status != res_b.status:
                diffs.append(
                    f"{label} ({res_a.invariant.name}): status "
                    f"{res_a.status} != {res_b.status}"
                )
            if res_a != res_b:
                # Invariant operands may derive from REPAIRED values;
                # accept them within the repair tolerance.
                close = all(
                    _values_equal(va, vb, repaired=True, tolerance=repair_tolerance)
                    for va, vb in (
                        (res_a.invariant.lhs, res_b.invariant.lhs),
                        (res_a.invariant.rhs, res_b.invariant.rhs),
                        (res_a.error, res_b.error),
                    )
                )
                if not close:
                    diffs.append(f"{label} ({res_a.invariant.name}): {res_a} != {res_b}")
    return diffs
