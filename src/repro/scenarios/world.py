"""World: one fully wired epoch of the simulated SDN WAN.

A :class:`World` assembles everything the paper's Figure 1 contains --
the network (with ground-truth traffic), router telemetry, injectable
router faults, the control infrastructure (with injectable aggregation
bugs), the SDN controller, and Hodor watching the controller's inputs
-- and runs one epoch:

1. Steady-state ground truth is simulated for the traffic hosts
   *actually* send (measured demand, unless a throttling bug makes the
   two differ), honouring operator drain intent and physical link
   health.
2. Routers report a telemetry snapshot (with rolling-window jitter);
   Section 2.1 signal faults corrupt it.
3. The control infrastructure aggregates the snapshot plus end-host
   demand records into controller inputs; Section 2.2 aggregation bugs
   corrupt that step.
4. Hodor validates the inputs against the same snapshot.
5. The controller programs routes from the (possibly bad) inputs, hosts
   send their real traffic over them, and the resulting network health
   is assessed -- did the incorrect input cause an outage?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.control.infra import ControlPlane
from repro.control.demand_service import records_from_matrix
from repro.control.inputs import ControllerInputs
from repro.control.metrics import HealthReport, Severity, assess_health
from repro.core.config import HodorConfig
from repro.core.pipeline import Hodor
from repro.core.report import ValidationReport
from repro.faults.base import AggregationBug, FaultInjector, InjectionRecord, SignalFault
from repro.faults.external_faults import ThrottledDemandMismatch
from repro.net.demand import DemandMatrix
from repro.net.flows import FlowAssignment
from repro.net.realize import realize_traffic
from repro.net.simulation import GroundTruth, NetworkSimulator
from repro.net.topology import Topology
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.counters import Jitter
from repro.telemetry.probes import LinkHealth, ProbeEngine
from repro.telemetry.self_correct import peer_exchange_correct
from repro.telemetry.snapshot import NetworkSnapshot

__all__ = ["EpochOutcome", "World"]


@dataclass
class EpochOutcome:
    """Everything one epoch produced.

    Attributes:
        snapshot: The (faulted) snapshot routers reported.
        injections: Ground truth of corrupted signals.
        inputs: What the controller saw.
        report: Hodor's validation of those inputs.
        programmed: The controller's path allocation.
        realized: The traffic hosts actually sent over it.
        truth: The resulting real network state.
        health: Health assessment of that state.
    """

    snapshot: NetworkSnapshot
    injections: List[InjectionRecord]
    inputs: ControllerInputs
    report: ValidationReport
    programmed: FlowAssignment
    realized: FlowAssignment
    truth: GroundTruth
    health: HealthReport

    @property
    def detected(self) -> bool:
        """Did Hodor flag anything this epoch?"""
        return self.report.detected_anything()

    @property
    def outage(self) -> bool:
        return self.health.is_outage()

    @property
    def damaged(self) -> bool:
        """Network visibly hurt: saturated links/loss or worse."""
        return self.health.severity.at_least(Severity.CONGESTED)


class World:
    """A fully wired simulated WAN epoch factory.

    Args:
        topology: The real network (drain intent lives on its nodes and
            links).
        measured_demand: Demand as the instrumentation measures it at
            end hosts.
        link_health: Physical/dataplane ground truth per canonical link
            name; absent links are healthy.
        signal_faults: Section 2.1 router faults applied to snapshots.
        topo_bugs / demand_bugs / drain_bugs: Section 2.2 aggregation
            bugs wired into the respective services.
        hodor_config: Validation tunables.
        jitter_magnitude: Rolling-window noise on counters.
        probe_loss: Per-probe loss probability (R4 noise).
        use_probes: Whether the telemetry layer runs probes at all.
        strategy: Ground-truth steady-state routing strategy.
        k_paths: Controller TE path diversity.
        shards_per_pair: Demand records per ingress/egress pair.
        seed: Base seed; all internal randomness derives from it.
    """

    def __init__(
        self,
        topology: Topology,
        measured_demand: DemandMatrix,
        link_health: Optional[Mapping[str, LinkHealth]] = None,
        signal_faults: Sequence[SignalFault] = (),
        topo_bugs: Sequence[AggregationBug] = (),
        demand_bugs: Sequence[AggregationBug] = (),
        drain_bugs: Sequence[AggregationBug] = (),
        hodor_config: Optional[HodorConfig] = None,
        jitter_magnitude: float = 0.01,
        probe_loss: float = 0.0,
        use_probes: bool = True,
        strategy: str = "ecmp",
        k_paths: int = 4,
        shards_per_pair: int = 3,
        seed: int = 0,
        infer_faulty_from_counters: bool = False,
        self_correct: bool = False,
    ) -> None:
        self.topology = topology
        self.measured_demand = measured_demand
        self.link_health: Dict[str, LinkHealth] = dict(link_health or {})
        self.signal_faults = list(signal_faults)
        # Aggregation bugs and the remaining construction knobs are kept
        # public so a World can be *described* -- the fuzzer's timeline
        # serialization (repro.fuzz.spec) rebuilds equivalent Worlds from
        # these attributes.
        self.topo_bugs = list(topo_bugs)
        self.demand_bugs = list(demand_bugs)
        self.drain_bugs = list(drain_bugs)
        self.hodor_config = hodor_config or HodorConfig()
        self.jitter_magnitude = jitter_magnitude
        self.probe_loss = probe_loss
        self.use_probes = use_probes
        self.strategy = strategy
        self.k_paths = k_paths
        self.shards_per_pair = shards_per_pair
        self.infer_faulty_from_counters = infer_faulty_from_counters
        self.self_correct = self_correct
        self.seed = seed
        self._seed = seed
        self._strategy = strategy
        self._shards = shards_per_pair

        probe_engine = (
            ProbeEngine(loss_probability=probe_loss, seed=seed + 1) if use_probes else None
        )
        self.collector = TelemetryCollector(
            jitter=Jitter(jitter_magnitude, seed=seed + 2), probe_engine=probe_engine
        )
        self.injector = FaultInjector(self.signal_faults, seed=seed + 3)
        self.control_plane = ControlPlane(
            topology,
            topo_bugs=topo_bugs,
            demand_bugs=demand_bugs,
            drain_bugs=drain_bugs,
            k_paths=k_paths,
            infer_faulty_from_counters=infer_faulty_from_counters,
        )
        self.hodor = Hodor(topology, config=self.hodor_config)

        # A throttling bug means hosts send less than was measured.
        admitted = 1.0
        for bug in demand_bugs:
            if isinstance(bug, ThrottledDemandMismatch):
                admitted *= bug.admitted_fraction
        self.actual_demand = measured_demand.scaled(admitted)

    # ------------------------------------------------------------------

    def blackholes(self) -> List[Tuple[str, str]]:
        """Directed edges of links that cannot carry traffic."""
        holes = []
        for link_name, health in self.link_health.items():
            if health.carries_traffic:
                continue
            link = self.topology.link(link_name)
            holes.extend(link.directions())
        return holes

    def live_topology(self) -> Topology:
        """The actually-usable graph (dead links removed)."""
        live = Topology(f"{self.topology.name}:live")
        for node in self.topology.nodes():
            live.add_node(node)
        for link in self.topology.links():
            health = self.link_health.get(link.name, LinkHealth())
            if health.carries_traffic:
                live.add_link(link)
        return live

    def steady_state(self) -> GroundTruth:
        """Ground truth before the controller reacts to this epoch."""
        return NetworkSimulator(
            self.topology,
            self.actual_demand,
            strategy=self._strategy,
            blackholes=self.blackholes(),
        ).run()

    def run_epoch(self, timestamp: float = 0.0) -> EpochOutcome:
        """Run the full Figure 1 pipeline once."""
        truth_before = self.steady_state()
        clean_snapshot = self.collector.collect(
            truth_before, health=self.link_health, timestamp=timestamp
        )
        snapshot, injections = self.injector.inject(clean_snapshot)
        if self.self_correct:
            # Section 6 future direction: routers repair their own
            # counter anomalies via peer exchange before anything
            # downstream reads the telemetry.
            snapshot, _corrections = peer_exchange_correct(
                snapshot, self.topology, tau=self.hodor_config.tau_h
            )

        records = records_from_matrix(
            self.measured_demand, shards_per_pair=self._shards, seed=self._seed + 4
        )
        inputs = self.control_plane.compute_inputs(snapshot, records, timestamp=timestamp)
        report = self.hodor.validate(snapshot, inputs)

        programmed = self.control_plane.program(inputs)
        realized = realize_traffic(programmed, self.actual_demand, self.live_topology())
        truth_after = NetworkSimulator(
            self.topology, self.actual_demand, blackholes=self.blackholes()
        ).evaluate(realized)
        health = assess_health(truth_after, self.actual_demand)

        return EpochOutcome(
            snapshot=snapshot,
            injections=injections,
            inputs=inputs,
            report=report,
            programmed=programmed,
            realized=realized,
            truth=truth_after,
            health=health,
        )

    def baseline_health(self) -> HealthReport:
        """Health with a bug-free control plane on a clean snapshot.

        The counterfactual experiments compare against: what this epoch
        would have looked like had inputs been correct.
        """
        truth_before = self.steady_state()
        clean_snapshot = self.collector.collect(truth_before, health=self.link_health)
        clean_plane = ControlPlane(self.topology)
        records = records_from_matrix(
            self.actual_demand, shards_per_pair=self._shards, seed=self._seed + 4
        )
        inputs = clean_plane.compute_inputs(clean_snapshot, records)
        programmed = clean_plane.program(inputs)
        realized = realize_traffic(programmed, self.actual_demand, self.live_topology())
        truth = NetworkSimulator(
            self.topology, self.actual_demand, blackholes=self.blackholes()
        ).evaluate(realized)
        return assess_health(truth, self.actual_demand)
