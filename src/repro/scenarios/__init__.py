"""Outage scenarios: the World orchestrator and the Section 2 catalog."""

from repro.scenarios.catalog import Category, OutageScenario, all_scenarios, scenario_by_id
from repro.scenarios.timeline import EpochRecord, EpochSpec, Timeline, TimelineResult
from repro.scenarios.world import EpochOutcome, World

__all__ = [
    "Category",
    "EpochOutcome",
    "EpochRecord",
    "EpochSpec",
    "OutageScenario",
    "Timeline",
    "TimelineResult",
    "World",
    "all_scenarios",
    "scenario_by_id",
]
