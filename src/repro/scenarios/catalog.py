"""The outage-scenario catalog: every Section 2 outage, reproducible.

The paper's evidence is five years of proprietary outage reports; the
substitution (see DESIGN.md) is this catalog, which encodes each
described outage mechanism as a fault-injected :class:`World`.  Every
scenario records:

- which paper section describes it,
- its root-cause category (the Section 2 taxonomy),
- whether Hodor is expected to flag it and through which channels,
- whether the bug, left unvalidated, visibly damages the network within
  the epoch (some paper outages hurt only later, e.g. when maintenance
  actually starts on gear the controller thinks is serving).

The final scenario is the *legitimate disaster* from Section 1 -- a
mass drain that is atypical but correct -- used to show the
false-positive failure mode of static heuristic checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.faults.aggregation_faults import (
    IgnoredDrain,
    LivenessMisreport,
    PartialTopologyStitch,
)
from repro.faults.external_faults import (
    DoubleCountedDemand,
    PartialDemandAggregation,
    ThrottledDemandMismatch,
)
from repro.faults.intent_faults import InconsistentLinkDrain, MissedDrain, SpuriousDrain
from repro.faults.router_faults import (
    CorrelatedCounterFault,
    DelayedTelemetry,
    MalformedTelemetry,
    MissingTelemetry,
    WrongLinkStatus,
    ZeroedDuplicateTelemetry,
)
from repro.net.demand import DemandMatrix, gravity_demand
from repro.net.topology import Node, Topology
from repro.scenarios.world import World
from repro.telemetry.probes import LinkHealth
from repro.topologies.abilene import abilene
from repro.topologies.b4 import b4

__all__ = ["Category", "OutageScenario", "all_scenarios", "scenario_by_id"]


class Category:
    """Root-cause taxonomy from Section 2."""

    ROUTER_TELEMETRY = "router-telemetry"  # 2.1 telemetry bugs
    ROUTER_INTENT = "router-intent"  # 2.1 incorrect intent
    CONTROL_AGGREGATION = "control-aggregation"  # 2.2 infra bugs
    EXTERNAL_INPUT = "external-input"  # 2.2 external input
    LEGITIMATE = "legitimate"  # correct but atypical

    ALL = (
        ROUTER_TELEMETRY,
        ROUTER_INTENT,
        CONTROL_AGGREGATION,
        EXTERNAL_INPUT,
        LEGITIMATE,
    )


@dataclass(frozen=True)
class OutageScenario:
    """One reproducible outage (or legitimate-input) scenario.

    Attributes:
        scenario_id: Stable identifier (``"S01"``...).
        title: Short human-readable name.
        paper_section: Where the paper describes this mechanism.
        category: One of :class:`Category`.
        description: What goes wrong and how.
        expect_detection: Should Hodor flag this epoch?
        expected_channels: Detection channels expected to fire, a
            subset of ``{"hardening", "demand", "topology", "drain"}``.
        expect_damage: Does the bug visibly damage the network within
            the epoch when nobody intervenes (health at least CONGESTED)?
        builder: ``seed -> World`` factory.
    """

    scenario_id: str
    title: str
    paper_section: str
    category: str
    description: str
    expect_detection: bool
    expected_channels: Tuple[str, ...]
    expect_damage: bool
    builder: Callable[[int], World]

    def build(self, seed: int = 0) -> World:
        return self.builder(seed)


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------

#: Gravity-demand total that keeps healthy Abilene comfortably below
#: saturation while leaving enough pressure that meaningful capacity
#: loss congests it.
_DEMAND_TOTAL = 55.0

#: The Atlanta M5 testbed router sits behind the one OC-48 (2.5G) spur
#: and carries little traffic in the real Abilene matrices; weighting it
#: down keeps that spur from being the bottleneck in every scenario.
_ABILENE_WEIGHTS = {"atlam": 0.15}


def _abilene_demand(seed: int, total: float = _DEMAND_TOTAL) -> DemandMatrix:
    topo = abilene()
    return gravity_demand(
        topo.node_names(), total=total, seed=seed, weights=_ABILENE_WEIGHTS
    )


def _drained_topology(drained_nodes: Tuple[str, ...]) -> Topology:
    """Abilene with operator drain intent set on some routers."""
    topo = abilene()
    for name in drained_nodes:
        node = topo.node(name)
        topo.replace_node(Node(name, site=node.site, drained=True, vendor=node.vendor))
    return topo


def _demand_without(demand: DemandMatrix, nodes: Tuple[str, ...]) -> DemandMatrix:
    """Zero all demand to/from the given routers (hosts behind drained
    gear cannot source or sink WAN traffic)."""
    reduced = demand.copy()
    for node in nodes:
        for other in demand.nodes:
            if other == node:
                continue
            reduced[node, other] = 0.0
            reduced[other, node] = 0.0
    return reduced


# ----------------------------------------------------------------------
# Section 2.1: incorrect router signals
# ----------------------------------------------------------------------


def _s01_zeroed_telemetry(seed: int) -> World:
    interfaces = [("ipls", "kscy"), ("atla", "wash"), ("chin", "nycm")]
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[ZeroedDuplicateTelemetry(interfaces=interfaces)],
        infer_faulty_from_counters=True,
        seed=seed,
    )


def _s02_malformed_telemetry(seed: int) -> World:
    interfaces = [
        ("ipls", "atla"),
        ("ipls", "chin"),
        ("ipls", "kscy"),
        ("kscy", "dnvr"),
        ("kscy", "hstn"),
    ]
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[MalformedTelemetry(interfaces=interfaces)],
        infer_faulty_from_counters=True,
        seed=seed,
    )


def _s03_delayed_telemetry(seed: int) -> World:
    interfaces = [("snva", "sttl"), ("losa", "snva")]
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[DelayedTelemetry(interfaces=interfaces, delay_s=600.0, drift=0.4)],
        seed=seed,
    )


def _s04_drain_race(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[InconsistentLinkDrain([("ipls", "kscy"), ("atla", "ipls")])],
        seed=seed,
    )


def _s05_erroneous_auto_drain(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[SpuriousDrain(["kscy", "ipls"])],
        seed=seed,
    )


def _s06_missed_drain(seed: int) -> World:
    # Operator drained dnvr because its dataplane is broken, but the
    # router reports itself serving; its links are up but do not forward.
    topo = _drained_topology(("dnvr",))
    demand = _demand_without(_abilene_demand(seed), ("dnvr",))
    health = {
        topo.link_between("dnvr", peer).name: LinkHealth(up=True, forwarding=False)
        for peer in topo.neighbors("dnvr")
    }
    return World(
        topo,
        demand,
        link_health=health,
        signal_faults=[MissedDrain(["dnvr"])],
        seed=seed,
    )


# ----------------------------------------------------------------------
# Section 2.2: incorrect aggregation
# ----------------------------------------------------------------------


def _s07_partial_stitch(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed),
        topo_bugs=[PartialTopologyStitch({"kscy", "ipls"})],
        seed=seed,
    )


def _s08_liveness_down(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed),
        topo_bugs=[LivenessMisreport({"ipls~kscy", "atla~ipls", "chin~ipls"}, report_up=False)],
        seed=seed,
    )


def _s09_liveness_up(seed: int) -> World:
    # The ipls~kscy fiber is cut, but the instrumentation service keeps
    # reporting the link alive; the controller overloads a dead link.
    return World(
        abilene(),
        _abilene_demand(seed),
        link_health={"ipls~kscy": LinkHealth(up=False)},
        topo_bugs=[LivenessMisreport({"ipls~kscy"}, report_up=True)],
        seed=seed,
    )


def _s10_ignored_drain(seed: int) -> World:
    topo = _drained_topology(("kscy",))
    demand = _demand_without(_abilene_demand(seed), ("kscy",))
    return World(
        topo,
        demand,
        drain_bugs=[IgnoredDrain({"kscy"})],
        seed=seed,
    )


# ----------------------------------------------------------------------
# Section 2.2: external input
# ----------------------------------------------------------------------


def _s11_partial_demand(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed, total=65.0),
        demand_bugs=[PartialDemandAggregation(drop_fraction=0.5, seed=seed + 10)],
        seed=seed,
    )


def _s12_double_count(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed, total=40.0),
        demand_bugs=[DoubleCountedDemand(fraction=0.4, multiplier=2.0, seed=seed + 10)],
        seed=seed,
    )


def _s13_throttled_demand(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed, total=40.0),
        demand_bugs=[ThrottledDemandMismatch(admitted_fraction=0.55)],
        seed=seed,
    )


# ----------------------------------------------------------------------
# Section 4.2: semantic topology failures
# ----------------------------------------------------------------------


def _s14_acl_blackhole(seed: int) -> World:
    return World(
        abilene(),
        _abilene_demand(seed),
        link_health={"ipls~kscy": LinkHealth(up=True, forwarding=False)},
        seed=seed,
    )


def _s15_status_lies_up(seed: int) -> World:
    # Fiber cut on nycm~wash; both interfaces keep claiming oper-up.
    return World(
        abilene(),
        _abilene_demand(seed),
        link_health={"nycm~wash": LinkHealth(up=False)},
        signal_faults=[WrongLinkStatus([("nycm", "wash"), ("wash", "nycm")], report_up=True)],
        seed=seed,
    )


# ----------------------------------------------------------------------
# B4-like inter-datacenter WAN variants (topology diversity)
# ----------------------------------------------------------------------


def _b4_demand(seed: int, total: float = 600.0) -> DemandMatrix:
    topo = b4()
    return gravity_demand(topo.node_names(), total=total, seed=seed)


def _s17_b4_vendor_bug(seed: int) -> World:
    # A buggy OS rollout on one vendor's fleet mis-scales every counter
    # on those routers (the Section 3.2 correlated-failure worry), on
    # the B4-like WAN whose sites alternate vendors by design.
    topo = b4()
    vendor_b = [node.name for node in topo.nodes() if node.vendor == "vendor-b"]
    return World(
        topo,
        _b4_demand(seed),
        signal_faults=[CorrelatedCounterFault(vendor_b, factor=0.5)],
        seed=seed,
    )


def _s18_b4_transpacific_cut(seed: int) -> World:
    # A trans-Pacific fiber cut whose endpoints keep reporting up; the
    # controller keeps loading a dead 200G link.
    return World(
        b4(),
        _b4_demand(seed, total=700.0),
        link_health={"asia-ne1~us-w1": LinkHealth(up=False)},
        signal_faults=[
            WrongLinkStatus([("us-w1", "asia-ne1"), ("asia-ne1", "us-w1")], report_up=True)
        ],
        seed=seed,
    )


# ----------------------------------------------------------------------
# SD-WAN operations suite: routine fleet operations whose automation
# misfires.  These are the day-2 choreographies (maintenance windows,
# rolling upgrades, tunnel churn) where incorrect inputs are born, as
# opposed to the Section 2 one-off bug reports above.
# ----------------------------------------------------------------------


def _s19_maintenance_choreography(seed: int) -> World:
    # A maintenance window's drain choreography fires against the wrong
    # window's router list: two healthy routers get drained with the
    # automation's stock "faulty-link" justification, which hardened
    # link evidence disproves.
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[SpuriousDrain(["dnvr", "sttl"], claimed_reason="faulty-link")],
        seed=seed,
    )


def _s20_rolling_restart(seed: int) -> World:
    # A rolling-restart wave reaches chin; the router stops exporting
    # telemetry entirely while it reboots, but was never drained first.
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[MissingTelemetry(nodes=["chin"])],
        seed=seed,
    )


def _s21_correlated_fiber_cuts(seed: int) -> World:
    # A backhoe takes out a shared conduit: two fibers through kscy die
    # together, and the optical gear's status bits keep claiming up at
    # every endpoint.
    return World(
        abilene(),
        _abilene_demand(seed),
        link_health={
            "ipls~kscy": LinkHealth(up=False),
            "atla~ipls": LinkHealth(up=False),
        },
        signal_faults=[
            WrongLinkStatus(
                [("ipls", "kscy"), ("kscy", "ipls"), ("atla", "ipls"), ("ipls", "atla")],
                report_up=True,
            )
        ],
        seed=seed,
    )


def _s22_asymmetric_latency(seed: int) -> World:
    # A congested collection path delays one direction's telemetry:
    # hstn's exports arrive minutes stale while its peers report fresh,
    # so each affected link's two ends describe different epochs.
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[
            DelayedTelemetry(
                interfaces=[("hstn", "atla"), ("hstn", "kscy")],
                delay_s=420.0,
                drift=0.5,
            )
        ],
        seed=seed,
    )


def _s23_tunnel_flaps(seed: int) -> World:
    # Overlay tunnels re-establish after a key rollover; during the
    # flap the west-coast links report oper-down although the underlay
    # still forwards (counters and probes say alive).
    return World(
        abilene(),
        _abilene_demand(seed),
        signal_faults=[
            WrongLinkStatus([("snva", "sttl"), ("losa", "snva")], report_up=False)
        ],
        seed=seed,
    )


def _s24_upgrade_window_gaps(seed: int) -> World:
    # A staged collector upgrade on the B4-like WAN leaves gaps: the
    # interfaces behind the eu-w1 collector shard export nothing for
    # the window, and the aggregator ships the epoch anyway.
    return World(
        b4(),
        _b4_demand(seed),
        signal_faults=[
            MissingTelemetry(interfaces=[("eu-w1", "us-e1"), ("eu-c1", "eu-w1")])
        ],
        seed=seed,
    )


# ----------------------------------------------------------------------
# Section 1: the legitimate disaster (false-positive probe)
# ----------------------------------------------------------------------


def _s16_mass_drain_disaster(seed: int) -> World:
    drained = ("sttl", "snva", "losa", "dnvr")  # west coast event
    topo = _drained_topology(drained)
    demand = _demand_without(_abilene_demand(seed, total=10.0), drained)
    return World(topo, demand, seed=seed)


# ----------------------------------------------------------------------


_SCENARIOS: List[OutageScenario] = [
    OutageScenario(
        "S01",
        "zeroed duplicate telemetry",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "A router-OS bug duplicates telemetry messages with zeroed rx counters; "
        "the control plane declares healthy interfaces faulty and routes around "
        "them, congesting the rest.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s01_zeroed_telemetry,
    ),
    OutageScenario(
        "S02",
        "malformed telemetry responses",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "Interfaces report unparseable counter values; the control plane treats "
        "the links as faulty and sheds their capacity.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s02_malformed_telemetry,
    ),
    OutageScenario(
        "S03",
        "delayed telemetry reporting",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "Some interfaces report stale rates from an earlier traffic epoch.",
        expect_detection=True,
        expected_channels=("hardening",),
        expect_damage=False,
        builder=_s03_delayed_telemetry,
    ),
    OutageScenario(
        "S04",
        "drain/restart race leaves inconsistent link drains",
        "2.1",
        Category.ROUTER_INTENT,
        "A controller job restart races a router drain; one endpoint of two "
        "links reports drained, the peer does not.  The drain service's "
        "either-endpoint rule removes live capacity.",
        expect_detection=True,
        expected_channels=("drain",),
        expect_damage=True,
        builder=_s04_drain_race,
    ),
    OutageScenario(
        "S05",
        "erroneous automation drains healthy routers",
        "2.1",
        Category.ROUTER_INTENT,
        "An incorrect drain condition marks two healthy, traffic-carrying "
        "routers drained; the controller moves their traffic onto the rest.",
        expect_detection=True,
        expected_channels=("hardening",),
        expect_damage=True,
        builder=_s05_erroneous_auto_drain,
    ),
    OutageScenario(
        "S06",
        "broken router fails to report drained",
        "2.1",
        Category.ROUTER_INTENT,
        "A router whose dataplane is broken (and which the operator drained) "
        "reports itself serving; its links are up but black-hole traffic.",
        expect_detection=True,
        expected_channels=("hardening", "topology", "drain"),
        expect_damage=True,
        builder=_s06_missed_drain,
    ),
    OutageScenario(
        "S07",
        "topology stitched before all routers reported",
        "2.2",
        Category.CONTROL_AGGREGATION,
        "A buggy instrumentation rollout stitches the topology without waiting "
        "for two routers; the controller sees a partial network and squeezes "
        "all traffic through what remains.",
        expect_detection=True,
        expected_channels=("topology",),
        expect_damage=True,
        builder=_s07_partial_stitch,
    ),
    OutageScenario(
        "S08",
        "liveness misreported down",
        "2.2",
        Category.CONTROL_AGGREGATION,
        "An instrumentation bug reports three live links as down; the "
        "controller sees less bandwidth than exists and places traffic "
        "sub-optimally.",
        expect_detection=True,
        expected_channels=("topology",),
        expect_damage=True,
        builder=_s08_liveness_down,
    ),
    OutageScenario(
        "S09",
        "liveness misreported up (dead link used)",
        "2.2",
        Category.CONTROL_AGGREGATION,
        "A cut fiber stays 'alive' in the topology input; the controller "
        "keeps loading a link that drops everything.",
        expect_detection=True,
        expected_channels=("topology",),
        expect_damage=True,
        builder=_s09_liveness_up,
    ),
    OutageScenario(
        "S10",
        "drain signal ignored during aggregation",
        "2.2",
        Category.CONTROL_AGGREGATION,
        "A router's correct drain signal is partially ignored; its capacity "
        "is wrongly counted as available.  (The damage lands when maintenance "
        "actually starts, hence no same-epoch outage.)",
        expect_detection=True,
        expected_channels=("drain",),
        expect_damage=False,
        builder=_s10_ignored_drain,
    ),
    OutageScenario(
        "S11",
        "partial demand aggregation",
        "2.2",
        Category.EXTERNAL_INPUT,
        "A demand-instrumentation rollout silently drops ~45% of demand "
        "records; programmed routes ignore a large traffic fraction, which "
        "still arrives and congests them.",
        expect_detection=True,
        expected_channels=("demand",),
        expect_damage=True,
        builder=_s11_partial_demand,
    ),
    OutageScenario(
        "S12",
        "demand double-counted",
        "2.2",
        Category.EXTERNAL_INPUT,
        "A fraction of demand records is counted twice; the believed matrix "
        "exceeds what hosts send.",
        expect_detection=True,
        expected_channels=("demand",),
        expect_damage=False,
        builder=_s12_double_count,
    ),
    OutageScenario(
        "S13",
        "measured demand throttled at hosts",
        "2.2",
        Category.EXTERNAL_INPUT,
        "Demand is measured correctly but hosts are erroneously throttled; "
        "measurement and admitted traffic diverge.",
        expect_detection=True,
        expected_channels=("demand",),
        expect_damage=False,
        builder=_s13_throttled_demand,
    ),
    OutageScenario(
        "S14",
        "link up but not forwarding (ACL misconfiguration)",
        "4.2",
        Category.ROUTER_TELEMETRY,
        "A link's status is up and it sits in the topology input, but the "
        "dataplane black-holes traffic -- the semantic, design-time bug class.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s14_acl_blackhole,
    ),
    OutageScenario(
        "S15",
        "both ends misreport a dead link as up",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "A fiber cut with lying oper-status at both ends; counters and probes "
        "contradict the status bits.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s15_status_lies_up,
    ),
    OutageScenario(
        "S17",
        "correlated vendor-OS counter bug (B4)",
        "3.2",
        Category.ROUTER_TELEMETRY,
        "A staged OS rollout on one vendor's routers mis-scales all their "
        "counters equally; vendor-diverse link endpoints still expose the "
        "bug through R1 asymmetry.",
        expect_detection=True,
        expected_channels=("hardening",),
        expect_damage=False,
        builder=_s17_b4_vendor_bug,
    ),
    OutageScenario(
        "S18",
        "trans-Pacific fiber cut misreported up (B4)",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "A cut subsea link keeps claiming oper-up at both ends; the "
        "controller black-holes inter-continental traffic onto it.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s18_b4_transpacific_cut,
    ),
    OutageScenario(
        "S16",
        "legitimate mass drain (disaster scenario)",
        "1",
        Category.LEGITIMATE,
        "A regional event drains four routers; every signal and input is "
        "correct.  Hodor must accept this epoch -- static heuristics reject "
        "it (the Section 1 false-positive).",
        expect_detection=False,
        expected_channels=(),
        expect_damage=False,
        builder=_s16_mass_drain_disaster,
    ),
    OutageScenario(
        "S19",
        "maintenance-window drain choreography misfires",
        "4.3",
        Category.ROUTER_INTENT,
        "Drain choreography for a maintenance window targets the wrong "
        "router list; healthy routers report drained claiming a faulty "
        "link that hardened link evidence disproves.",
        expect_detection=True,
        expected_channels=("hardening", "drain"),
        expect_damage=True,
        builder=_s19_maintenance_choreography,
    ),
    OutageScenario(
        "S20",
        "rolling restart silences an undrained router",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "A rolling-restart wave reboots a router that was never drained; "
        "it exports nothing for the epoch and the aggregator stitches a "
        "topology without it.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s20_rolling_restart,
    ),
    OutageScenario(
        "S21",
        "correlated fiber cuts misreported up",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "A shared conduit cut kills two fibers at once while every "
        "endpoint's status bits keep claiming up; the controller loads "
        "two dead links simultaneously.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s21_correlated_fiber_cuts,
    ),
    OutageScenario(
        "S22",
        "asymmetric-latency telemetry (one-sided staleness)",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "A congested collection path delays one router's exports by "
        "minutes; each affected link's two ends describe different "
        "traffic epochs and their rates disagree.",
        expect_detection=True,
        expected_channels=("hardening",),
        expect_damage=False,
        builder=_s22_asymmetric_latency,
    ),
    OutageScenario(
        "S23",
        "tunnel re-establishment flaps report down",
        "2.1",
        Category.ROUTER_TELEMETRY,
        "Overlay tunnels flap during a key rollover and report oper-down "
        "while the underlay still forwards; the controller sheds live "
        "capacity it actually needs.",
        expect_detection=True,
        expected_channels=("hardening", "topology"),
        expect_damage=True,
        builder=_s23_tunnel_flaps,
    ),
    OutageScenario(
        "S24",
        "upgrade-window telemetry gaps ship a partial epoch",
        "2.2",
        Category.ROUTER_TELEMETRY,
        "A staged collector upgrade leaves an export gap behind one "
        "shard; the aggregator ships the epoch with those interfaces "
        "absent rather than holding the watermark.",
        expect_detection=True,
        expected_channels=("hardening",),
        expect_damage=False,
        builder=_s24_upgrade_window_gaps,
    ),
]


def all_scenarios() -> List[OutageScenario]:
    """The full catalog, in scenario-id order."""
    return list(_SCENARIOS)


def scenario_by_id(scenario_id: str) -> OutageScenario:
    """Look up one scenario.

    Raises:
        KeyError: For unknown ids.
    """
    for scenario in _SCENARIOS:
        if scenario.scenario_id == scenario_id:
            return scenario
    raise KeyError(f"unknown scenario {scenario_id!r}")
