"""Multi-epoch timelines: always-on validation over evolving traffic.

The paper envisions Hodor as "an always-on system that continuously
validates inputs to the SDN controller as it receives them", with a
reject-and-fallback response.  A :class:`Timeline` runs that loop over
many epochs of a simulated WAN:

- demand follows a diurnal curve with per-epoch noise,
- faults switch on and off per a schedule (a bad rollout lands at epoch
  k, gets reverted at epoch m),
- one persistent :class:`~repro.core.pipeline.Hodor` instance carries
  last-known-good inputs across epochs,

and records, for every epoch, what the network looked like with the
inputs used as-is versus with Hodor's policy decision -- the
"outages averted" time series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.control.metrics import HealthReport, Severity, assess_health
from repro.core.config import HodorConfig
from repro.core.pipeline import Hodor
from repro.core.policy import Policy, RejectAndFallbackPolicy
from repro.experiments.reporting import format_table
from repro.net.demand import DemandMatrix
from repro.net.realize import realize_traffic
from repro.net.simulation import NetworkSimulator
from repro.net.topology import Topology
from repro.scenarios.world import World

__all__ = ["EpochSpec", "EpochRecord", "TimelineResult", "Timeline"]


@dataclass(frozen=True)
class EpochSpec:
    """Fault configuration active during one epoch.

    All fields mirror :class:`~repro.scenarios.world.World` arguments;
    an empty spec is a healthy epoch.
    """

    signal_faults: tuple = ()
    topo_bugs: tuple = ()
    demand_bugs: tuple = ()
    drain_bugs: tuple = ()
    link_health: Mapping[str, object] = field(default_factory=dict)
    label: str = ""


@dataclass
class EpochRecord:
    """Everything one timeline epoch produced.

    Attributes:
        epoch: Epoch index.
        label: The active spec's label ("" for healthy epochs).
        demand_total: True offered demand this epoch.
        detected: Hodor flagged something.
        fell_back: The policy substituted last-known-good inputs.
        unprotected: Network health had the fresh inputs been used.
        protected: Network health under the policy's decision.
    """

    epoch: int
    label: str
    demand_total: float
    detected: bool
    fell_back: bool
    unprotected: HealthReport
    protected: HealthReport


@dataclass
class TimelineResult:
    """A full timeline run."""

    records: List[EpochRecord] = field(default_factory=list)

    def damaged_epochs(self, protected: bool) -> List[int]:
        """Epochs where the network was CONGESTED or worse."""
        return [
            record.epoch
            for record in self.records
            if (record.protected if protected else record.unprotected).severity.at_least(
                Severity.CONGESTED
            )
        ]

    def epochs_averted(self) -> List[int]:
        """Epochs damaged without Hodor but healthy with it."""
        without = set(self.damaged_epochs(protected=False))
        with_hodor = set(self.damaged_epochs(protected=True))
        return sorted(without - with_hodor)

    def render(self) -> str:
        rows = []
        for record in self.records:
            rows.append(
                [
                    record.epoch,
                    record.label or "-",
                    f"{record.demand_total:.0f}",
                    "yes" if record.detected else "no",
                    "fallback" if record.fell_back else "accept",
                    record.unprotected.severity.value,
                    record.protected.severity.value,
                ]
            )
        return format_table(
            ["epoch", "active fault", "demand", "flagged", "decision", "as-is", "with hodor"],
            rows,
        )


class Timeline:
    """Runs the always-on validation loop over many epochs.

    Args:
        topology: The real network.
        base_demand: Mean demand matrix; epochs scale it.
        schedule: Epoch index -> :class:`EpochSpec` for faulty epochs;
            missing epochs are healthy.
        diurnal_amplitude: Peak-to-mean demand swing (0.2 = +/-20%).
        period: Epochs per diurnal cycle.
        noise: Extra deterministic per-epoch demand wiggle amplitude.
        hodor_config: Validation tunables.
        policy: Response policy; defaults to reject-and-fallback.
        seed: Base seed.
    """

    def __init__(
        self,
        topology: Topology,
        base_demand: DemandMatrix,
        schedule: Optional[Mapping[int, EpochSpec]] = None,
        diurnal_amplitude: float = 0.15,
        period: int = 8,
        noise: float = 0.02,
        hodor_config: Optional[HodorConfig] = None,
        policy: Optional[Policy] = None,
        seed: int = 0,
    ) -> None:
        if not 0 <= diurnal_amplitude < 1:
            raise ValueError(f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self._topology = topology
        self._base_demand = base_demand
        self._schedule = dict(schedule or {})
        self._amplitude = diurnal_amplitude
        self._period = period
        self._noise = noise
        self._seed = seed
        self._hodor = Hodor(
            topology, config=hodor_config, policy=policy or RejectAndFallbackPolicy()
        )

    def demand_at(self, epoch: int) -> DemandMatrix:
        """The diurnal + noise demand for one epoch (deterministic)."""
        diurnal = 1.0 + self._amplitude * math.sin(2 * math.pi * epoch / self._period)
        wiggle = 1.0 + self._noise * (((epoch * 2654435761) % 1000) / 1000.0 - 0.5)
        return self._base_demand.scaled(diurnal * wiggle)

    def run(self, epochs: int) -> TimelineResult:
        """Run the loop for ``epochs`` epochs."""
        result = TimelineResult()
        for epoch in range(epochs):
            spec = self._schedule.get(epoch, EpochSpec())
            demand = self.demand_at(epoch)
            world = World(
                self._topology,
                demand,
                link_health=dict(spec.link_health),
                signal_faults=list(spec.signal_faults),
                topo_bugs=list(spec.topo_bugs),
                demand_bugs=list(spec.demand_bugs),
                drain_bugs=list(spec.drain_bugs),
                seed=self._seed + epoch,
            )
            outcome = world.run_epoch(timestamp=float(epoch))

            decision = self._hodor.validate_and_decide(outcome.snapshot, outcome.inputs)
            protected_health = self._evaluate(world, decision.inputs)

            result.records.append(
                EpochRecord(
                    epoch=epoch,
                    label=spec.label,
                    demand_total=world.actual_demand.total(),
                    detected=outcome.detected,
                    fell_back=decision.fell_back,
                    unprotected=outcome.health,
                    protected=protected_health,
                )
            )
        return result

    def _evaluate(self, world: World, inputs) -> HealthReport:
        """Network health when the controller uses ``inputs``."""
        programmed = world.control_plane.controller.program(inputs)
        realized = realize_traffic(programmed, world.actual_demand, world.live_topology())
        truth = NetworkSimulator(
            world.topology, world.actual_demand, blackholes=world.blackholes()
        ).evaluate(realized)
        return assess_health(truth, world.actual_demand)
