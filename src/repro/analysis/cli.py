"""``python -m repro lint``: the analyzer's command-line front end.

Exit codes: 0 clean, 1 findings (error severity), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.report import (
    render_explain,
    render_github,
    render_rules,
    render_text,
    to_json_text,
)
from repro.analysis.rules import ALL_RULE_CODES, rule_catalog
from repro.analysis.runner import LintResult, run_lint

__all__ = ["add_lint_arguments", "default_root", "run_cli"]


def default_root() -> Path:
    """Lint the installed ``repro`` package itself by default."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` flags to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable lint payload instead of text",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="CODE",
        help="run only this rule code (repeatable); default: all rules",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="text output style: human-readable (default) or GitHub "
        "Actions ::error annotations",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="explain one rule's findings in detail (T1 findings "
        "include the interprocedural taint path)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="incremental cache file: unchanged files reuse their "
        "cached analysis, so warm runs re-parse only what changed",
    )


def run_cli(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rules(rule_catalog()))
        return 0

    enabled = frozenset(args.rule or ())
    unknown = enabled - set(ALL_RULE_CODES)
    if unknown:
        print(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(ALL_RULE_CODES)})",
            file=sys.stderr,
        )
        return 2

    explain = getattr(args, "explain", None)
    if explain is not None and explain not in ALL_RULE_CODES:
        print(
            f"unknown rule code: {explain} (known: {', '.join(ALL_RULE_CODES)})",
            file=sys.stderr,
        )
        return 2

    roots = [Path(p) for p in args.paths] if args.paths else [default_root()]
    for root in roots:
        if not root.exists():
            print(f"no such path: {root}", file=sys.stderr)
            return 2

    cache_path = getattr(args, "cache", None)
    config = LintConfig(enabled_codes=enabled)
    result: Optional[LintResult] = None
    for root in roots:
        partial = run_lint(
            root,
            config=config,
            cache_path=Path(cache_path) if cache_path else None,
        )
        result = partial if result is None else result.merged_with(partial)
    assert result is not None

    if args.json:
        sys.stdout.write(to_json_text(result))
    elif explain is not None:
        print(render_explain(result, explain, rule_catalog()))
    elif getattr(args, "format", "text") == "github":
        print(render_github(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static purity/determinism analysis of the repro pipeline",
    )
    add_lint_arguments(parser)
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
