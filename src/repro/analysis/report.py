"""Rendering of lint results: human-readable text and ``--json``.

The JSON document is exactly ``LintResult.to_payload()`` serialised
with sorted keys -- the same schema the importable API returns, pinned
by the golden tests.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.runner import LintResult

__all__ = ["render_text", "render_rules", "to_json_text"]


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines: List[str] = [diagnostic.render() for diagnostic in result.diagnostics]
    noun = "file" if result.files_scanned == 1 else "files"
    if result.ok and not result.diagnostics:
        lines.append(
            f"lint: clean -- {result.files_scanned} {noun} scanned, "
            f"{result.suppressed_count} finding(s) suppressed"
        )
    else:
        lines.append(
            f"lint: {result.errors} error(s), {result.warnings} warning(s) "
            f"across {result.files_scanned} {noun} "
            f"({result.suppressed_count} suppressed)"
        )
    return "\n".join(lines)


def render_rules(catalog: List[Dict[str, str]]) -> str:
    """``lint --list-rules`` output: code, title, wrapped rationale."""
    lines: List[str] = []
    for entry in catalog:
        lines.append(f"{entry['code']}: {entry['title']}")
        lines.append(f"    {entry['rationale']}")
    return "\n".join(lines)


def to_json_text(result: LintResult) -> str:
    """The canonical ``--json`` document (sorted keys, trailing newline)."""
    return json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n"
