"""Rendering of lint results: human-readable text and ``--json``.

The JSON document is exactly ``LintResult.to_payload()`` serialised
with sorted keys -- the same schema the importable API returns, pinned
by the golden tests.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.diagnostics import Severity
from repro.analysis.runner import LintResult

__all__ = [
    "render_explain",
    "render_github",
    "render_rules",
    "render_text",
    "to_json_text",
]


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per diagnostic plus a summary."""
    lines: List[str] = [diagnostic.render() for diagnostic in result.diagnostics]
    noun = "file" if result.files_scanned == 1 else "files"
    if result.ok and not result.diagnostics:
        lines.append(
            f"lint: clean -- {result.files_scanned} {noun} scanned, "
            f"{result.suppressed_count} finding(s) suppressed"
        )
    else:
        lines.append(
            f"lint: {result.errors} error(s), {result.warnings} warning(s) "
            f"across {result.files_scanned} {noun} "
            f"({result.suppressed_count} suppressed)"
        )
    return "\n".join(lines)


def render_rules(catalog: List[Dict[str, str]]) -> str:
    """``lint --list-rules`` output: code, title, wrapped rationale."""
    lines: List[str] = []
    for entry in catalog:
        lines.append(f"{entry['code']}: {entry['title']}")
        lines.append(f"    {entry['rationale']}")
    return "\n".join(lines)


def to_json_text(result: LintResult) -> str:
    """The canonical ``--json`` document (sorted keys, trailing newline)."""
    return json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n"


def _annotation_escape(text: str, in_property: bool) -> str:
    """GitHub Actions workflow-command escaping."""
    text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if in_property:
        text = text.replace(",", "%2C").replace(":", "%3A")
    return text


def render_github(result: LintResult) -> str:
    """``--format github``: one ``::error``/``::warning`` workflow
    command per finding, so CI annotates the offending lines inline."""
    lines: List[str] = []
    for diagnostic in result.diagnostics:
        level = "error" if diagnostic.severity is Severity.ERROR else "warning"
        lines.append(
            f"::{level} "
            f"file={_annotation_escape(diagnostic.path, True)},"
            f"line={diagnostic.line},"
            f"col={diagnostic.col + 1},"
            f"title={_annotation_escape('lint ' + diagnostic.code, True)}"
            f"::{_annotation_escape(f'{diagnostic.code}: {diagnostic.message}', False)}"
        )
    lines.append(
        f"lint: {result.errors} error(s), {result.warnings} warning(s) "
        f"across {result.files_scanned} file(s) "
        f"({result.suppressed_count} suppressed)"
    )
    return "\n".join(lines)


def render_explain(
    result: LintResult, code: str, catalog: List[Dict[str, str]]
) -> str:
    """``--explain CODE``: the rule's rationale plus every finding of
    that code, with the interprocedural taint path for T1 findings."""
    lines: List[str] = []
    entry = next((item for item in catalog if item["code"] == code), None)
    if entry is not None:
        lines.append(f"{entry['code']}: {entry['title']}")
        lines.append(f"    {entry['rationale']}")
        lines.append("")
    traces = {
        (
            trace["diagnostic"]["path"],
            trace["diagnostic"]["line"],
            trace["diagnostic"]["col"],
        ): trace["steps"]
        for trace in result.taint_traces
    }
    findings = [d for d in result.diagnostics if d.code == code]
    if not findings:
        lines.append(f"no {code} findings.")
        return "\n".join(lines)
    for index, diagnostic in enumerate(findings, 1):
        lines.append(f"[{index}] {diagnostic.render()}")
        steps = traces.get((diagnostic.path, diagnostic.line, diagnostic.col))
        if steps:
            lines.append("    taint path (source -> sink):")
            for number, step in enumerate(steps, 1):
                lines.append(
                    f"      {number}. {step['kind']:<9}"
                    f"{step['path']}:{step['line']}  {step['detail']}"
                )
        lines.append("")
    return "\n".join(lines).rstrip("\n")
