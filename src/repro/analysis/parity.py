"""C1: full/incremental/vector registry parity.

The incremental engine and the array-compiled vector backend are only
equivalent to the full pipeline if all three agree on *coverage*: every
per-entity unit the serial stages run must be wired into
:mod:`repro.engine.incremental` and accounted for in
:mod:`repro.core.vector.backend`, and everything those paths dispatch
must exist as a real unit.  A stage added to one side but not the
others silently diverges the reports -- the exact bug class the
differential harness can only catch per-input, while this rule catches
it structurally on every commit.

Checks, all driven by :class:`~repro.analysis.config.LintConfig`
(``entity_patterns`` + ``incremental_path`` + ``vector_path``):

1. every entity-pattern function defined under a core directory is
   referenced in the incremental module;
2. every such function is also referenced inside its *own* module
   beyond the ``def`` itself (the serial path must call it too);
3. every entity-pattern attribute/name the incremental module
   references resolves to a defined unit somewhere in the project;
4. every entity-pattern function appears in the vector backend's
   *source text* -- as an exceptional-path dispatch, or named in the
   replacement manifest (the module docstring) where the unit has an
   array-math twin instead of a call site;
5. every entity-pattern AST reference the vector backend makes
   resolves to a defined unit (no ghost dispatches).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import ModuleUnderLint

__all__ = ["RegistryParityRule"]


class RegistryParityRule:
    """Project-scoped C1 rule (runs once over every module together)."""

    code = "C1"
    title = "per-entity unit missing from the full, incremental, or vector registry"
    severity = Severity.ERROR
    rationale = (
        "Full, incremental, and vector validation must cover the same "
        "checks: a per-entity unit that only some of the paths run (or a "
        "dispatch with no defined unit behind it) silently breaks report "
        "parity in a way no per-input differential test is guaranteed to "
        "hit."
    )

    def check(
        self, modules: List[ModuleUnderLint], config: LintConfig
    ) -> Iterator[Diagnostic]:
        incremental = self._find_incremental(modules, config)
        if incremental is None:
            # Nothing to compare against (e.g. a fixture tree without an
            # engine); registry parity is vacuously satisfied.
            return

        defs = self._entity_defs(modules, config, incremental)
        incremental_refs = self._entity_refs(incremental, config)

        for name, (module, node) in sorted(defs.items()):
            if name not in incremental_refs:
                yield self._diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"per-entity unit {name}() is never referenced in "
                    f"{config.incremental_path}; wire it into the "
                    "incremental registry or it only runs on the full path",
                )
            if not self._referenced_in_own_module(module, node, name):
                yield self._diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"per-entity unit {name}() is not exercised by the "
                    "serial pipeline in its own module; the full path must "
                    "run every unit the incremental path reuses",
                )

        for name, (lineno, col) in sorted(incremental_refs.items()):
            if name not in defs:
                yield self._diagnostic(
                    incremental,
                    lineno,
                    col,
                    f"incremental registry references {name}(), but no "
                    "per-entity unit with that name is defined in the core",
                )

        vector = self._find_module(modules, config.vector_path)
        if vector is None:
            return
        for name, (module, node) in sorted(defs.items()):
            if name not in vector.source:
                yield self._diagnostic(
                    module,
                    node.lineno,
                    node.col_offset,
                    f"per-entity unit {name}() is unaccounted for in "
                    f"{config.vector_path}; dispatch it on the exceptional "
                    "path or name it in the replacement manifest",
                )
        for name, (lineno, col) in sorted(self._entity_refs(vector, config).items()):
            if name not in defs:
                yield self._diagnostic(
                    vector,
                    lineno,
                    col,
                    f"vector backend references {name}(), but no per-entity "
                    "unit with that name is defined in the core",
                )

    # ------------------------------------------------------------------

    @staticmethod
    def _find_incremental(
        modules: List[ModuleUnderLint], config: LintConfig
    ) -> Optional[ModuleUnderLint]:
        return RegistryParityRule._find_module(modules, config.incremental_path)

    @staticmethod
    def _find_module(
        modules: List[ModuleUnderLint], relpath: str
    ) -> Optional[ModuleUnderLint]:
        for module in modules:
            if module.relpath == relpath:
                return module
        return None

    @staticmethod
    def _entity_defs(
        modules: List[ModuleUnderLint],
        config: LintConfig,
        incremental: ModuleUnderLint,
    ) -> Dict[str, Tuple[ModuleUnderLint, ast.FunctionDef]]:
        """Entity-pattern functions defined in core modules (registry)."""
        defs: Dict[str, Tuple[ModuleUnderLint, ast.FunctionDef]] = {}
        for module in modules:
            if module is incremental or not module.is_core:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if config.is_entity_function(node.name):
                        defs.setdefault(node.name, (module, node))
        return defs

    @staticmethod
    def _entity_refs(
        module: ModuleUnderLint, config: LintConfig
    ) -> Dict[str, Tuple[int, int]]:
        """Entity-pattern names referenced in the incremental module."""
        refs: Dict[str, Tuple[int, int]] = {}
        for node in ast.walk(module.tree):
            name: Optional[str] = None
            if isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Name):
                name = node.id
            if name is not None and config.is_entity_function(name):
                refs.setdefault(name, (node.lineno, node.col_offset))
        return refs

    @staticmethod
    def _referenced_in_own_module(
        module: ModuleUnderLint, definition: ast.FunctionDef, name: str
    ) -> bool:
        """Is the unit used in its defining module beyond the def itself?

        A ``def`` contributes no Name/Attribute node for its own name,
        so any matching reference is a genuine use (the serial stage
        driver dispatching the unit).
        """
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == name:
                return True
            if isinstance(node, ast.Name) and node.id == name:
                return True
        return False

    # ------------------------------------------------------------------

    def _diagnostic(
        self, module: ModuleUnderLint, line: int, col: int, message: str
    ) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=message,
            path=module.relpath,
            line=line,
            col=col,
            severity=self.severity,
        )
