"""C1: full/incremental/vector registry parity.

The incremental engine and the array-compiled vector backend are only
equivalent to the full pipeline if all three agree on *coverage*: every
per-entity unit the serial stages run must be wired into
:mod:`repro.engine.incremental` and accounted for in
:mod:`repro.core.vector.backend`, and everything those paths dispatch
must exist as a real unit.  A stage added to one side but not the
others silently diverges the reports -- the exact bug class the
differential harness can only catch per-input, while this rule catches
it structurally on every commit.

Checks, all driven by :class:`~repro.analysis.config.LintConfig`
(``entity_patterns`` + ``incremental_path`` + ``vector_path``):

1. every entity-pattern function defined under a core directory is
   referenced in the incremental module;
2. every such function is also referenced inside its *own* module
   beyond the ``def`` itself (the serial path must call it too);
3. every entity-pattern attribute/name the incremental module
   references resolves to a defined unit somewhere in the project;
4. every entity-pattern function appears in the vector backend's
   *source text* -- as an exceptional-path dispatch, or named in the
   replacement manifest (the module docstring) where the unit has an
   array-math twin instead of a call site;
5. every entity-pattern AST reference the vector backend makes
   resolves to a defined unit (no ghost dispatches).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import ModuleUnderLint

__all__ = ["RegistryParityRule"]


class RegistryParityRule:
    """Project-scoped C1 rule (runs once over every module together)."""

    code = "C1"
    title = "per-entity unit missing from the full, incremental, or vector registry"
    severity = Severity.ERROR
    rationale = (
        "Full, incremental, and vector validation must cover the same "
        "checks: a per-entity unit that only some of the paths run (or a "
        "dispatch with no defined unit behind it) silently breaks report "
        "parity in a way no per-input differential test is guaranteed to "
        "hit."
    )

    def check(
        self, modules: List[ModuleUnderLint], config: LintConfig
    ) -> Iterator[Diagnostic]:
        """Tree-based entry point: project modules to facts, compare."""
        from repro.analysis.facts import extract_facts

        yield from self.check_facts(
            [extract_facts(module, config) for module in modules], config
        )

    def check_facts(self, facts_list, config: LintConfig) -> Iterator[Diagnostic]:
        """Facts-based entry point (what the incremental runner calls).

        ``facts_list`` holds :class:`~repro.analysis.facts.ModuleFacts`
        in discovery order; unchanged files contribute cached facts, so
        parity keeps cross-file soundness without re-parsing them.
        """
        by_relpath = {facts.relpath: facts for facts in facts_list}
        incremental = by_relpath.get(config.incremental_path)
        if incremental is None:
            # Nothing to compare against (e.g. a fixture tree without an
            # engine); registry parity is vacuously satisfied.
            return

        # name -> (relpath, line, col); first definition in discovery
        # order wins, matching the original tree walk.
        defs: Dict[str, Tuple[str, int, int]] = {}
        for facts in facts_list:
            if facts.relpath == config.incremental_path:
                continue
            if not config.is_core_path(facts.relpath):
                continue
            for name, line, col in facts.entity_defs:
                defs.setdefault(name, (facts.relpath, line, col))

        incremental_refs: Dict[str, Tuple[int, int]] = {}
        for name, line, col in incremental.entity_refs:
            incremental_refs.setdefault(name, (line, col))

        for name, (relpath, line, col) in sorted(defs.items()):
            if name not in incremental_refs:
                yield self._diagnostic(
                    relpath,
                    line,
                    col,
                    f"per-entity unit {name}() is never referenced in "
                    f"{config.incremental_path}; wire it into the "
                    "incremental registry or it only runs on the full path",
                )
            own_refs = {ref for ref, _, _ in by_relpath[relpath].entity_refs}
            if name not in own_refs:
                yield self._diagnostic(
                    relpath,
                    line,
                    col,
                    f"per-entity unit {name}() is not exercised by the "
                    "serial pipeline in its own module; the full path must "
                    "run every unit the incremental path reuses",
                )

        for name, (line, col) in sorted(incremental_refs.items()):
            if name not in defs:
                yield self._diagnostic(
                    config.incremental_path,
                    line,
                    col,
                    f"incremental registry references {name}(), but no "
                    "per-entity unit with that name is defined in the core",
                )

        vector = by_relpath.get(config.vector_path)
        if vector is None:
            return
        vector_words = set(vector.entity_words)
        for name, (relpath, line, col) in sorted(defs.items()):
            if name not in vector_words:
                yield self._diagnostic(
                    relpath,
                    line,
                    col,
                    f"per-entity unit {name}() is unaccounted for in "
                    f"{config.vector_path}; dispatch it on the exceptional "
                    "path or name it in the replacement manifest",
                )
        vector_refs: Dict[str, Tuple[int, int]] = {}
        for name, line, col in vector.entity_refs:
            vector_refs.setdefault(name, (line, col))
        for name, (line, col) in sorted(vector_refs.items()):
            if name not in defs:
                yield self._diagnostic(
                    config.vector_path,
                    line,
                    col,
                    f"vector backend references {name}(), but no per-entity "
                    "unit with that name is defined in the core",
                )

    # ------------------------------------------------------------------

    def _diagnostic(self, path: str, line: int, col: int, message: str) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            message=message,
            path=path,
            line=line,
            col=col,
            severity=self.severity,
        )
