"""Parameter-taint dataflow for the P1 purity rule.

The incremental engine reuses a per-entity unit's *previous output
object* verbatim whenever its inputs did not change; that is only
sound if the unit never mutates its arguments (or anything reachable
from them).  This module answers "could this expression alias a
parameter?" with a deliberately conservative, flow-insensitive
dataflow:

- every parameter (including ``self``) is a tainted root;
- assignment from a tainted name / attribute chain / subscript
  propagates taint to the target (tuple targets included);
- ``for``/``with``/walrus targets over tainted sources are tainted;
- results of *alias-returning* methods (``get``, ``keys``, ``values``,
  ``items``, ``setdefault``) on tainted roots stay tainted; any other
  call breaks the chain (``sorted``, ``list``, ``dict(...)`` and
  friends return fresh objects).

Taint is never killed on rebind -- a name that was ever tainted stays
tainted -- which can over-approximate; the escape hatch is an explicit
``# lint: ignore[P1]`` with a rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

__all__ = ["MUTATING_METHODS", "ALIAS_METHODS", "ParamTaint", "mutation_sites"]

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "difference_update",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "intersection_update",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "symmetric_difference_update",
        "update",
        "write",
        "writelines",
    }
)

#: Methods whose return value aliases (part of) their receiver.
ALIAS_METHODS = frozenset({"get", "items", "keys", "setdefault", "values"})


class ParamTaint:
    """Which local names may alias a parameter of ``func``."""

    def __init__(self, func: ast.FunctionDef) -> None:
        self._func = func
        self.tainted: Set[str] = {
            arg.arg
            for arg in (
                list(func.args.posonlyargs)
                + list(func.args.args)
                + list(func.args.kwonlyargs)
                + ([func.args.vararg] if func.args.vararg else [])
                + ([func.args.kwarg] if func.args.kwarg else [])
            )
        }
        self._propagate()

    # ------------------------------------------------------------------

    def root(self, node: ast.AST) -> Optional[str]:
        """The tainted root name of an expression, if any.

        Walks down attribute/subscript chains and through
        alias-returning method calls; any other call breaks the chain.
        """
        if isinstance(node, ast.Name):
            return node.id if node.id in self.tainted else None
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self.root(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ALIAS_METHODS:
                return self.root(func.value)
            return None
        if isinstance(node, ast.IfExp):
            return self.root(node.body) or self.root(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.root(node.value)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                rooted = self.root(value)
                if rooted is not None:
                    return rooted
        return None

    # ------------------------------------------------------------------

    def _propagate(self) -> None:
        """Flow-insensitive fixpoint over binding statements."""
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self._func):
                sources: Tuple[Tuple[ast.AST, ast.AST], ...] = ()
                if isinstance(node, ast.Assign):
                    sources = tuple((target, node.value) for target in node.targets)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    sources = ((node.target, node.value),)
                elif isinstance(node, ast.AugAssign):
                    sources = ((node.target, node.value),)
                elif isinstance(node, ast.NamedExpr):
                    sources = ((node.target, node.value),)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    sources = ((node.target, node.iter),)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    sources = tuple(
                        (item.optional_vars, item.context_expr)
                        for item in node.items
                        if item.optional_vars is not None
                    )
                for target, value in sources:
                    if self.root(value) is None:
                        continue
                    for name in _target_names(target):
                        if name not in self.tainted:
                            self.tainted.add(name)
                            changed = True


def _target_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples flattened)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # Attribute/Subscript targets bind no new *name*; the store itself
    # is what mutation_sites() reports.


def mutation_sites(func: ast.FunctionDef) -> Iterator[Tuple[ast.AST, str, str]]:
    """Every statement in ``func`` that mutates a parameter alias.

    Yields ``(node, root_name, description)`` per violation:
    attribute/subscript stores, ``del`` on attribute/subscript, and
    in-place mutating method calls whose receiver aliases a parameter.
    Nested function/lambda bodies are included -- a closure that
    mutates a captured parameter is just as impure.
    """
    taint = ParamTaint(func)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = taint.root(target.value)
                    if root is not None:
                        kind = (
                            "attribute" if isinstance(target, ast.Attribute) else "subscript"
                        )
                        yield node, root, f"{kind} assignment on {root!r}"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = taint.root(target.value)
                    if root is not None:
                        yield node, root, f"del on value derived from {root!r}"
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in MUTATING_METHODS
            ):
                root = taint.root(func_expr.value)
                if root is not None:
                    yield (
                        node,
                        root,
                        f"mutating call .{func_expr.attr}() on value derived from {root!r}",
                    )
