"""Diagnostic records emitted by the lint rules.

One :class:`Diagnostic` per violation, carrying the rule code, a
human-readable message, and a precise ``path:line:col`` span.  The
class round-trips losslessly through :meth:`Diagnostic.to_dict` /
:meth:`Diagnostic.from_dict`; that dict is the *only* JSON shape the
CLI emits (the golden tests in ``tests/analysis`` pin it), so API and
``--json`` consumers see one schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Diagnostic", "Severity"]


class Severity(enum.Enum):
    """How strongly a finding blocks a commit."""

    ERROR = "error"
    WARNING = "warning"

    @classmethod
    def parse(cls, raw: str) -> "Severity":
        for member in cls:
            if member.value == raw:
                return member
        raise ValueError(f"unknown severity {raw!r}")


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one source location.

    Attributes:
        code: Rule code (``P1``, ``P2``, ``D1``, ``F1``, ``C1``,
            ``L1``).
        message: Human-readable description of the violation.
        path: Path of the offending file, relative to the lint root,
            in POSIX form (stable across platforms for golden tests).
        line: 1-based line of the violation.
        col: 0-based column of the violation (AST convention).
        severity: :class:`Severity` of the finding.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Deterministic report order: location first, then code."""
        return (self.path, self.line, self.col, self.code, self.message)

    def render(self) -> str:
        """The canonical one-line human-readable form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Diagnostic":
        """Rebuild a diagnostic from its :meth:`to_dict` form."""
        return cls(
            code=str(payload["code"]),
            message=str(payload["message"]),
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            severity=Severity.parse(str(payload["severity"])),
        )
