"""``# lint: ignore[CODE]`` suppression comments.

A suppression silences diagnostics on its own line: specific codes via
``# lint: ignore[P1]`` / ``# lint: ignore[P1,F1]``, or every code via
a bare ``# lint: ignore``.  Suppressions are themselves checked: a
listed code that silenced nothing (or a bare ignore that silenced
nothing) raises **L1**, so stale suppressions cannot accumulate as the
tree evolves.

Suppression state round-trips through :meth:`SuppressionIndex.to_dicts`
with the same schema the CLI's ``--json`` output embeds; the golden
tests pin it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = ["Suppression", "SuppressionIndex", "UNUSED_SUPPRESSION_CODE"]

#: Rule code of the unused-suppression meta check.
UNUSED_SUPPRESSION_CODE = "L1"

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """``(line, text)`` for every comment token in ``source``.

    Falls back to yielding nothing on tokenize failures -- a file that
    does not tokenize will not parse either, and surfaces as an E1
    parse diagnostic instead.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenizeError, SyntaxError, ValueError, IndentationError):
        return []
    return comments


@dataclass
class Suppression:
    """One suppression comment on one source line.

    Attributes:
        line: 1-based line the comment sits on (and silences).
        codes: The codes listed in brackets, in source order; ``None``
            for a bare ``# lint: ignore`` (silences every code).
        used: Codes that actually silenced a diagnostic this run.
    """

    line: int
    codes: Optional[Tuple[str, ...]]
    used: Set[str] = field(default_factory=set)

    def covers(self, code: str) -> bool:
        return self.codes is None or code in self.codes

    def to_dict(self, path: str) -> Dict[str, object]:
        return {
            "path": path,
            "line": self.line,
            "codes": list(self.codes) if self.codes is not None else "*",
            "used": sorted(self.used),
        }


class SuppressionIndex:
    """Every suppression comment in one module, by line."""

    def __init__(self, suppressions: Dict[int, Suppression]) -> None:
        self._by_line = suppressions

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan source text for ``# lint: ignore`` comments.

        Only genuine ``COMMENT`` tokens count -- a mention of the
        syntax inside a docstring or string literal (this module's own
        docs, say) is not a suppression.  The comment silences
        diagnostics on the line it sits on.
        """
        found: Dict[int, Suppression] = {}
        for lineno, text in _comment_tokens(source):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            raw = match.group(1)
            codes: Optional[Tuple[str, ...]]
            if raw is None:
                codes = None
            else:
                codes = tuple(
                    code.strip() for code in raw.split(",") if code.strip()
                )
            found[lineno] = Suppression(line=lineno, codes=codes)
        return cls(found)

    @classmethod
    def from_pairs(
        cls, pairs: List[Tuple[int, Optional[List[str]]]]
    ) -> "SuppressionIndex":
        """Rebuild from :meth:`pairs` output (the incremental cache
        stores pairs so unchanged files skip tokenization)."""
        return cls(
            {
                int(line): Suppression(
                    line=int(line),
                    codes=None if codes is None else tuple(codes),
                )
                for line, codes in pairs
            }
        )

    def pairs(self) -> List[Tuple[int, Optional[List[str]]]]:
        """Serializable (line, codes-or-None) view, in line order."""
        return [
            (
                line,
                None
                if self._by_line[line].codes is None
                else list(self._by_line[line].codes),
            )
            for line in sorted(self._by_line)
        ]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_line)

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        """Silence ``diagnostic`` if a matching comment sits on its line."""
        suppression = self._by_line.get(diagnostic.line)
        if suppression is None or not suppression.covers(diagnostic.code):
            return False
        suppression.used.add(diagnostic.code)
        return True

    def unused(self, path: str) -> List[Diagnostic]:
        """L1 diagnostics for every suppression (or code) that did nothing."""
        diagnostics: List[Diagnostic] = []
        for suppression in self._by_line.values():
            if suppression.codes is None:
                dead = [] if suppression.used else ["*"]
            else:
                dead = [c for c in suppression.codes if c not in suppression.used]
            for code in dead:
                label = "blanket suppression" if code == "*" else f"suppression for {code}"
                diagnostics.append(
                    Diagnostic(
                        code=UNUSED_SUPPRESSION_CODE,
                        message=f"unused {label}: no diagnostic was silenced here",
                        path=path,
                        line=suppression.line,
                        col=0,
                        severity=Severity.ERROR,
                    )
                )
        return diagnostics

    def to_dicts(self, path: str) -> List[Dict[str, object]]:
        """JSON-safe view of every suppression, in line order."""
        return [
            self._by_line[line].to_dict(path) for line in sorted(self._by_line)
        ]
