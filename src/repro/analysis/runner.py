"""Lint driver: discover files, run rules, apply suppressions.

:func:`run_lint` is the importable API behind ``python -m repro lint``;
it returns a :class:`LintResult` whose :meth:`~LintResult.to_payload`
is exactly the CLI's ``--json`` document (one schema, golden-tested).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.parity import RegistryParityRule
from repro.analysis.rules import RULES, ModuleUnderLint, ProjectIndex
from repro.analysis.suppress import UNUSED_SUPPRESSION_CODE, SuppressionIndex

__all__ = ["LintResult", "run_lint", "PARSE_ERROR_CODE"]

#: Pseudo-code attached to files the linter could not parse at all.
PARSE_ERROR_CODE = "E1"

#: Schema version of the ``--json`` payload.
PAYLOAD_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run over one root."""

    root: str
    files_scanned: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressions: List[Dict[str, object]] = field(default_factory=list)
    suppressed_count: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when nothing blocks: no error-severity findings."""
        return self.errors == 0

    def to_payload(self) -> Dict[str, object]:
        """The one JSON schema (``--json`` output and golden tests)."""
        return {
            "version": PAYLOAD_VERSION,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressions": self.suppressions,
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": self.suppressed_count,
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LintResult":
        """Inverse of :meth:`to_payload` (derived counts are recomputed)."""
        version = payload.get("version")
        if version != PAYLOAD_VERSION:
            raise ValueError(f"unsupported lint payload version {version!r}")
        summary = payload.get("summary", {})
        return cls(
            root=str(payload["root"]),
            files_scanned=int(payload["files_scanned"]),  # type: ignore[arg-type]
            diagnostics=[
                Diagnostic.from_dict(entry)  # type: ignore[arg-type]
                for entry in payload.get("diagnostics", ())  # type: ignore[union-attr]
            ],
            suppressions=list(payload.get("suppressions", ())),  # type: ignore[arg-type]
            suppressed_count=int(summary.get("suppressed", 0)),  # type: ignore[union-attr]
        )

    def merged_with(self, other: "LintResult") -> "LintResult":
        """Combine two runs (multiple CLI roots) into one result."""
        merged = LintResult(
            root=f"{self.root}, {other.root}" if self.root else other.root,
            files_scanned=self.files_scanned + other.files_scanned,
            diagnostics=sorted(
                self.diagnostics + other.diagnostics, key=Diagnostic.sort_key
            ),
            suppressions=self.suppressions + other.suppressions,
            suppressed_count=self.suppressed_count + other.suppressed_count,
        )
        return merged


def _discover(root: Path) -> List[Path]:
    """Python files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def _load_module(
    root: Path, path: Path, config: LintConfig
) -> tuple[Optional[ModuleUnderLint], List[Diagnostic]]:
    """Parse one file; parse failures become E1 diagnostics."""
    relpath = path.relative_to(root).as_posix() if path != root else path.name
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return None, [
            Diagnostic(
                code=PARSE_ERROR_CODE,
                message=f"unreadable file: {exc}",
                path=relpath,
                line=1,
            )
        ]
    if len(raw) > config.max_file_bytes:
        return None, [
            Diagnostic(
                code=PARSE_ERROR_CODE,
                message=f"file exceeds max_file_bytes ({len(raw)} bytes); skipped",
                path=relpath,
                line=1,
            )
        ]
    source = raw.decode("utf-8", errors="replace")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [
            Diagnostic(
                code=PARSE_ERROR_CODE,
                message=f"syntax error: {exc.msg}",
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    module = ModuleUnderLint(
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=SuppressionIndex.from_source(source),
        is_core=config.is_core_path(relpath),
    )
    return module, []


def run_lint(root: Path, config: Optional[LintConfig] = None) -> LintResult:
    """Lint every Python file under ``root`` and return the result.

    Diagnostics are sorted by location then code; suppressions are
    applied per line; unused suppressions surface as L1.
    """
    config = config or LintConfig()
    root = Path(root).resolve()
    lint_root = root if root.is_dir() else root.parent

    modules: List[ModuleUnderLint] = []
    raw_diagnostics: List[Diagnostic] = []
    files = _discover(root)
    for path in files:
        module, problems = _load_module(lint_root, path, config)
        raw_diagnostics.extend(problems)
        if module is not None:
            modules.append(module)

    project = ProjectIndex.build(modules)
    for module in modules:
        for rule in RULES:
            if not config.rule_enabled(rule.code):
                continue
            raw_diagnostics.extend(rule.check(module, config, project))

    parity = RegistryParityRule()
    if config.rule_enabled(parity.code):
        raw_diagnostics.extend(parity.check(modules, config))

    suppression_index: Dict[str, SuppressionIndex] = {
        module.relpath: module.suppressions for module in modules
    }
    kept: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in raw_diagnostics:
        index = suppression_index.get(diagnostic.path)
        if index is not None and index.suppresses(diagnostic):
            suppressed += 1
        else:
            kept.append(diagnostic)

    if config.rule_enabled(UNUSED_SUPPRESSION_CODE):
        for module in modules:
            kept.extend(module.suppressions.unused(module.relpath))

    kept.sort(key=Diagnostic.sort_key)
    suppressions = [
        entry
        for module in sorted(modules, key=lambda m: m.relpath)
        for entry in module.suppressions.to_dicts(module.relpath)
    ]
    return LintResult(
        root=str(root),
        files_scanned=len(files),
        diagnostics=kept,
        suppressions=suppressions,
        suppressed_count=suppressed,
    )
