"""Lint driver: discover files, run rules, apply suppressions.

:func:`run_lint` is the importable API behind ``python -m repro lint``;
it returns a :class:`LintResult` whose :meth:`~LintResult.to_payload`
is exactly the CLI's ``--json`` document (one schema, golden-tested).

With a ``cache_path``, runs are incremental: each file's parsed
artifacts (raw diagnostics, suppressions, cross-file facts, taint
summary) are keyed on its content hash, so a warm run over an
unchanged tree re-parses nothing, and the call-graph resolution map is
re-linked only when some module's import/def skeleton changed.  The
project-scoped rules (C1 parity over facts, the T1 taint solve) run
every time -- they are cheap once per-file extraction is cached, and
cross-file soundness is exactly what must not go stale.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.cache import LintCache, content_sha
from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.facts import ModuleFacts, extract_facts
from repro.analysis.parity import RegistryParityRule
from repro.analysis.rules import RULES, ModuleUnderLint, ProjectIndex
from repro.analysis.suppress import UNUSED_SUPPRESSION_CODE, SuppressionIndex
from repro.analysis.taint import CallGraph, ModuleTaint, TaintSolver, extract_summary

__all__ = ["LintResult", "run_lint", "PARSE_ERROR_CODE"]

#: Pseudo-code attached to files the linter could not parse at all.
PARSE_ERROR_CODE = "E1"

#: Schema version of the ``--json`` payload (2: added "timing").
PAYLOAD_VERSION = 2


@dataclass
class LintResult:
    """Outcome of one lint run over one root."""

    root: str
    files_scanned: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressions: List[Dict[str, object]] = field(default_factory=list)
    suppressed_count: int = 0
    wall_time_s: float = 0.0
    files_reparsed: int = 0
    files_cached: int = 0
    callgraph_reused: bool = False
    #: T1 provenance traces for the *kept* taint diagnostics, in the
    #: same order; rendered by ``lint --explain T1``.  Side channel:
    #: not part of the JSON payload schema.
    taint_traces: List[Dict[str, object]] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when nothing blocks: no error-severity findings."""
        return self.errors == 0

    def to_payload(self) -> Dict[str, object]:
        """The one JSON schema (``--json`` output and golden tests)."""
        return {
            "version": PAYLOAD_VERSION,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressions": self.suppressions,
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": self.suppressed_count,
            },
            "timing": {
                "wall_time_s": round(self.wall_time_s, 6),
                "files_reparsed": self.files_reparsed,
                "files_cached": self.files_cached,
                "callgraph_reused": self.callgraph_reused,
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LintResult":
        """Inverse of :meth:`to_payload` (derived counts are recomputed)."""
        version = payload.get("version")
        if version != PAYLOAD_VERSION:
            raise ValueError(f"unsupported lint payload version {version!r}")
        summary = payload.get("summary", {})
        timing = payload.get("timing", {})
        return cls(
            root=str(payload["root"]),
            files_scanned=int(payload["files_scanned"]),  # type: ignore[arg-type]
            diagnostics=[
                Diagnostic.from_dict(entry)  # type: ignore[arg-type]
                for entry in payload.get("diagnostics", ())  # type: ignore[union-attr]
            ],
            suppressions=list(payload.get("suppressions", ())),  # type: ignore[arg-type]
            suppressed_count=int(summary.get("suppressed", 0)),  # type: ignore[union-attr]
            wall_time_s=float(timing.get("wall_time_s", 0.0)),  # type: ignore[union-attr]
            files_reparsed=int(timing.get("files_reparsed", 0)),  # type: ignore[union-attr]
            files_cached=int(timing.get("files_cached", 0)),  # type: ignore[union-attr]
            callgraph_reused=bool(timing.get("callgraph_reused", False)),  # type: ignore[union-attr]
        )

    def merged_with(self, other: "LintResult") -> "LintResult":
        """Combine two runs (multiple CLI roots) into one result."""
        merged = LintResult(
            root=f"{self.root}, {other.root}" if self.root else other.root,
            files_scanned=self.files_scanned + other.files_scanned,
            diagnostics=sorted(
                self.diagnostics + other.diagnostics, key=Diagnostic.sort_key
            ),
            suppressions=self.suppressions + other.suppressions,
            suppressed_count=self.suppressed_count + other.suppressed_count,
            wall_time_s=self.wall_time_s + other.wall_time_s,
            files_reparsed=self.files_reparsed + other.files_reparsed,
            files_cached=self.files_cached + other.files_cached,
            callgraph_reused=self.callgraph_reused and other.callgraph_reused,
            taint_traces=self.taint_traces + other.taint_traces,
        )
        return merged


def _discover(root: Path) -> List[Path]:
    """Python files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def _parse_module(
    relpath: str, raw: bytes, filename: str, config: LintConfig
) -> Tuple[Optional[ModuleUnderLint], List[Diagnostic]]:
    """Parse one file's bytes; parse failures become E1 diagnostics."""
    if len(raw) > config.max_file_bytes:
        return None, [
            Diagnostic(
                code=PARSE_ERROR_CODE,
                message=f"file exceeds max_file_bytes ({len(raw)} bytes); skipped",
                path=relpath,
                line=1,
            )
        ]
    source = raw.decode("utf-8", errors="replace")
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return None, [
            Diagnostic(
                code=PARSE_ERROR_CODE,
                message=f"syntax error: {exc.msg}",
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    module = ModuleUnderLint(
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=SuppressionIndex.from_source(source),
        is_core=config.is_core_path(relpath),
    )
    return module, []


@dataclass
class _FileRecord:
    """Per-file working state for one run."""

    relpath: str
    filename: str
    sha: str = ""
    raw: Optional[bytes] = None
    entry: Optional[Dict[str, object]] = None  # matching cache entry
    module: Optional[ModuleUnderLint] = None
    file_diags: List[Diagnostic] = field(default_factory=list)
    facts: Optional[ModuleFacts] = None
    taint: Optional[ModuleTaint] = None
    suppression_index: Optional[SuppressionIndex] = None
    parsed: bool = False  # this run actually parsed the file


def _extract(record: _FileRecord, config: LintConfig) -> None:
    """Parse + per-file extraction (facts, taint, suppressions)."""
    record.parsed = True
    record.entry = None
    module, problems = _parse_module(
        record.relpath, record.raw or b"", record.filename, config
    )
    record.module = module
    record.file_diags = list(problems)
    if module is not None:
        record.facts = extract_facts(module, config)
        record.taint = extract_summary(record.relpath, module.tree, config)
        record.suppression_index = module.suppressions


def _restore(record: _FileRecord, config: LintConfig) -> None:
    """Rehydrate per-file artifacts from the matching cache entry."""
    entry = record.entry or {}
    record.file_diags = [
        Diagnostic.from_dict(item)  # type: ignore[arg-type]
        for item in entry.get("diags", ())  # type: ignore[union-attr]
    ]
    facts = entry.get("facts")
    record.facts = ModuleFacts.from_dict(facts) if facts else None  # type: ignore[arg-type]
    taint = entry.get("taint")
    record.taint = ModuleTaint.from_dict(taint) if taint else None  # type: ignore[arg-type]
    record.suppression_index = SuppressionIndex.from_pairs(
        entry.get("suppressions", [])  # type: ignore[arg-type]
    )


def run_lint(
    root: Path,
    config: Optional[LintConfig] = None,
    cache_path: Optional[Path] = None,
) -> LintResult:
    """Lint every Python file under ``root`` and return the result.

    Diagnostics are sorted by location then code; suppressions are
    applied per line; unused suppressions surface as L1.  With
    ``cache_path``, unchanged files reuse their cached artifacts.
    """
    started = time.perf_counter()
    config = config or LintConfig()
    root = Path(root).resolve()
    lint_root = root if root.is_dir() else root.parent

    cache = (
        LintCache.load(cache_path, config.fingerprint())
        if cache_path is not None
        else LintCache(config.fingerprint())
    )

    records: List[_FileRecord] = []
    for path in _discover(root):
        relpath = path.relative_to(lint_root).as_posix() if path != root else path.name
        record = _FileRecord(relpath=relpath, filename=str(path))
        records.append(record)
        try:
            record.raw = path.read_bytes()
        except OSError as exc:
            record.file_diags = [
                Diagnostic(
                    code=PARSE_ERROR_CODE,
                    message=f"unreadable file: {exc}",
                    path=relpath,
                    line=1,
                )
            ]
            continue
        record.sha = content_sha(record.raw)
        record.entry = cache.entry_for(relpath, record.sha)
        if record.entry is not None:
            _restore(record, config)
        else:
            _extract(record, config)

    # Cross-file float facts gate per-file diagnostic reuse: F1's
    # verdict in an unchanged file can flip when another file's type
    # annotations change.
    project = ProjectIndex.from_facts(
        [record.facts for record in records if record.facts is not None]
    )
    project_fp = project.fingerprint()
    if cache.project_fp != project_fp:
        for record in records:
            if record.entry is not None and record.raw is not None:
                _extract(record, config)

    # File-scoped rules on freshly parsed modules (cached files carry
    # their raw diagnostics from the cache entry).
    raw_diagnostics: List[Diagnostic] = []
    for record in records:
        if record.parsed and record.module is not None:
            for rule in RULES:
                if not config.rule_enabled(rule.code):
                    continue
                record.file_diags.extend(
                    rule.check(record.module, config, project)
                )
        raw_diagnostics.extend(record.file_diags)

    # Project-scoped C1 over facts.
    parity = RegistryParityRule()
    if config.rule_enabled(parity.code):
        raw_diagnostics.extend(
            parity.check_facts(
                [record.facts for record in records if record.facts is not None],
                config,
            )
        )

    # Interprocedural T1: summaries are per-file artifacts; the link
    # step reuses the cached resolution while the skeleton holds.
    taints = [record.taint for record in records if record.taint is not None]
    skeleton_fp = CallGraph.skeleton_fingerprint([m.decls for m in taints])
    callgraph_reused = bool(
        cache.skeleton_fp == skeleton_fp and cache.resolution
    )
    resolution = (
        cache.resolution if callgraph_reused else TaintSolver.link(taints)
    )
    trace_by_key: Dict[Tuple[str, int, int, str], Dict[str, object]] = {}
    if config.rule_enabled(TaintSolver.rule_code):
        solver = TaintSolver(taints, config, resolution)
        for finding in solver.solve():
            raw_diagnostics.append(finding.diagnostic)
            d = finding.diagnostic
            trace_by_key[(d.path, d.line, d.col, d.message)] = {
                "diagnostic": d.to_dict(),
                "steps": finding.trace,
            }

    # Suppressions, then the L1 staleness check.
    suppression_index: Dict[str, SuppressionIndex] = {
        record.relpath: record.suppression_index
        for record in records
        if record.suppression_index is not None
    }
    kept: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in raw_diagnostics:
        index = suppression_index.get(diagnostic.path)
        if index is not None and index.suppresses(diagnostic):
            suppressed += 1
        else:
            kept.append(diagnostic)

    if config.rule_enabled(UNUSED_SUPPRESSION_CODE):
        for record in records:
            if record.suppression_index is not None:
                kept.extend(record.suppression_index.unused(record.relpath))

    kept.sort(key=Diagnostic.sort_key)
    suppressions = [
        entry
        for record in sorted(records, key=lambda r: r.relpath)
        if record.suppression_index is not None
        for entry in record.suppression_index.to_dicts(record.relpath)
    ]
    taint_traces = [
        trace_by_key[(d.path, d.line, d.col, d.message)]
        for d in kept
        if (d.path, d.line, d.col, d.message) in trace_by_key
    ]

    if cache_path is not None:
        cache.project_fp = project_fp
        cache.skeleton_fp = skeleton_fp
        cache.resolution = resolution
        cache.files = {
            record.relpath: {
                "sha": record.sha,
                "diags": [d.to_dict() for d in record.file_diags],
                "suppressions": (
                    record.suppression_index.pairs()
                    if record.suppression_index is not None
                    else []
                ),
                "facts": record.facts.to_dict() if record.facts else None,
                "taint": record.taint.to_dict() if record.taint else None,
            }
            for record in records
            if record.sha
        }
        cache.save(cache_path)

    return LintResult(
        root=str(root),
        files_scanned=len(records),
        diagnostics=kept,
        suppressions=suppressions,
        suppressed_count=suppressed,
        wall_time_s=time.perf_counter() - started,
        files_reparsed=sum(1 for record in records if record.parsed),
        files_cached=sum(
            1 for record in records if record.entry is not None and not record.parsed
        ),
        callgraph_reused=callgraph_reused,
        taint_traces=taint_traces,
    )
