"""On-disk cache behind incremental lint runs.

One JSON document per cache path, keyed three ways:

- ``config_fp`` (:meth:`LintConfig.fingerprint`): any manifest change
  invalidates everything -- a removed sanitizer entry must flip T1
  verdicts, so stale summaries keyed to the old manifest are poison.
- per-file ``sha`` (content hash): an unchanged file reuses its parsed
  artifacts -- raw file-scoped diagnostics, suppression pairs,
  cross-file facts, and the taint summary.
- ``project_fp`` / ``skeleton_fp``: cross-file gates.  File-scoped
  diagnostics are only reused while the project-wide float-type index
  is unchanged (F1 reads it); the call-graph resolution map is only
  reused while every module's import/def skeleton is unchanged.

Cache writes are best-effort (tmp file + rename); a corrupt or
mismatched cache degrades to a cold run, never to wrong output.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

__all__ = ["LintCache", "content_sha"]

#: Bump when the entry layout changes; old caches are discarded.
CACHE_VERSION = 1


def content_sha(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()


class LintCache:
    """One cache document: load leniently, save atomically."""

    def __init__(self, config_fp: str) -> None:
        self.config_fp = config_fp
        self.project_fp: Optional[str] = None
        self.skeleton_fp: Optional[str] = None
        self.resolution: Dict[str, Dict[str, list]] = {}
        self.files: Dict[str, Dict[str, object]] = {}

    @classmethod
    def load(cls, path: Path, config_fp: str) -> "LintCache":
        """Read a cache; anything invalid degrades to an empty cache."""
        cache = cls(config_fp)
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict):
            return cache
        if payload.get("version") != CACHE_VERSION:
            return cache
        if payload.get("config_fp") != config_fp:
            return cache
        cache.project_fp = payload.get("project_fp")
        cache.skeleton_fp = payload.get("skeleton_fp")
        resolution = payload.get("resolution")
        if isinstance(resolution, dict):
            cache.resolution = resolution
        files = payload.get("files")
        if isinstance(files, dict):
            cache.files = files
        return cache

    def entry_for(self, relpath: str, sha: str) -> Optional[Dict[str, object]]:
        """The cached entry when the content hash still matches."""
        entry = self.files.get(relpath)
        if isinstance(entry, dict) and entry.get("sha") == sha:
            return entry
        return None

    def save(self, path: Path) -> None:
        payload = {
            "version": CACHE_VERSION,
            "config_fp": self.config_fp,
            "project_fp": self.project_fp,
            "skeleton_fp": self.skeleton_fp,
            "resolution": self.resolution,
            "files": self.files,
        }
        target = Path(path)
        tmp = target.with_name(target.name + ".tmp")
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(target)
        except OSError:
            return
