"""T1: interprocedural validated-before-use taint analysis.

The paper's thesis -- raw controller inputs must be validated before
they influence decisions -- applied to this codebase's own dataflow.
A value is **tainted** when it originates from a raw input source
(:class:`NetworkSnapshot` / ``RouterSnapshot`` fields, ``UpdateEvent``
payloads, assembler outputs -- ``LintConfig.taint_source_types``) and
has not passed through a declared **sanitizer** (``harden_*``,
``repair_flows``, the vector backend's hardening dispatch --
``LintConfig.taint_sanitizers``).  Taint reaching a verdict / report /
apply **sink** (``check_*_entity``, ``ValidationReport``, ``apply_*``
-- ``LintConfig.taint_sinks``) is a T1 error.

Layered on :mod:`repro.analysis.purity`'s machinery, the analysis is
flow-insensitive and summary-based so the incremental cache can hold
per-file results:

1. :func:`extract_summary` (per module, pure function of content)
   runs the intra-procedural dataflow: every local name maps to a set
   of taint **roots** -- ``p:<param>`` (parameter), ``s:<line>:<col>``
   (source-field read), ``o:<name>`` (a name statically typed as a
   source object), ``c:<line>:<col>`` (a call's return value).  The
   summary records each function's return roots, every call site with
   its per-argument roots, and each source read's description.
2. :class:`TaintSolver` links the summaries over the
   :class:`~repro.analysis.callgraph.CallGraph` and runs a monotone
   fixpoint: a callee's parameter root is tainted when any caller
   passes a tainted argument; a call-return root is tainted when the
   callee's return roots are.  Unresolved calls and constructor calls
   of non-source types *break* taint (conservative in the direction
   that never invents a flow), sanitizer calls kill it, and container
   pass-throughs (``list``/``sorted``/``.items()``/...) keep it.
3. Sink calls with a tainted argument become diagnostics, each with a
   provenance **trace** (source -> call chain -> sink) rendered by
   ``lint --explain T1``.

Known imprecision, chosen deliberately: the solver is
context-insensitive (a helper that returns its parameter is tainted
for every caller once one caller passes taint), and state threaded
through object attributes (``self.x = tainted`` read elsewhere) is not
tracked.  Both err toward silence only where a sanitizer or unknown
call already intervened.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionDecl, ModuleDecls, extract_decls
from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.purity import ALIAS_METHODS

__all__ = [
    "FunctionSummary",
    "ModuleTaint",
    "TaintFinding",
    "TaintSolver",
    "extract_summary",
    "TAINT_RULE_CODE",
]

TAINT_RULE_CODE = "T1"

#: Builtins that return their argument's *contents*: taint flows
#: through them (value taint, unlike purity.py's alias analysis).
_CONTAINER_PASSTHROUGH = frozenset(
    {"list", "dict", "tuple", "set", "frozenset", "sorted", "reversed", "sum", "min", "max"}
)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _chain_root(node: ast.AST) -> Optional[str]:
    """The base Name of an Attribute/Subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _annotation_types(node: Optional[ast.AST]) -> Set[str]:
    """Every class name an annotation mentions (containers unwrapped)."""
    names: Set[str] = set()
    if node is None:
        return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotation: re-parse ("Optional[UpdateEvent]").
            try:
                inner = ast.parse(sub.value, mode="eval").body
            except SyntaxError:
                continue
            names.update(_annotation_types(inner))
    return names


@dataclass
class FunctionSummary:
    """Serializable taint facts for one function."""

    decl: FunctionDecl
    source_objects: Dict[str, str] = field(default_factory=dict)  # name -> type
    sources: Dict[str, Dict[str, object]] = field(default_factory=dict)
    calls: Dict[str, Dict[str, object]] = field(default_factory=dict)
    returns: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "decl": self.decl.to_dict(),
            "source_objects": self.source_objects,
            "sources": self.sources,
            "calls": self.calls,
            "returns": self.returns,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FunctionSummary":
        return cls(
            decl=FunctionDecl.from_dict(payload["decl"]),  # type: ignore[arg-type]
            source_objects=dict(payload["source_objects"]),  # type: ignore[arg-type]
            sources={k: dict(v) for k, v in payload["sources"].items()},  # type: ignore[union-attr]
            calls={k: dict(v) for k, v in payload["calls"].items()},  # type: ignore[union-attr]
            returns=list(payload["returns"]),  # type: ignore[arg-type]
        )


@dataclass
class ModuleTaint:
    """Every function summary of one module plus its declarations."""

    decls: ModuleDecls
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "decls": self.decls.to_dict(),
            "summaries": {q: s.to_dict() for q, s in self.summaries.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleTaint":
        return cls(
            decls=ModuleDecls.from_dict(payload["decls"]),  # type: ignore[arg-type]
            summaries={
                q: FunctionSummary.from_dict(entry)
                for q, entry in payload["summaries"].items()  # type: ignore[union-attr]
            },
        )


# ----------------------------------------------------------------------
# Per-function extraction
# ----------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_nodes(func: ast.AST) -> List[ast.AST]:
    """Nodes in the function's own scope (nested scopes excluded)."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))
    return out


class _FunctionExtractor:
    """Runs the intra-procedural dataflow for one function."""

    def __init__(
        self,
        decl: FunctionDecl,
        func: ast.AST,
        imports: Dict[str, str],
        config: LintConfig,
    ) -> None:
        self.decl = decl
        self.func = func
        self.imports = imports
        self.config = config
        self.summary = FunctionSummary(decl=decl)
        self.env: Dict[str, Set[str]] = {}
        self.source_typed: Set[str] = set()
        self._nodes = _own_nodes(func)

    # -- static source typing ------------------------------------------

    def _seed_source_types(self) -> None:
        args = self.func.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        for arg in all_args:
            mentioned = _annotation_types(arg.annotation)
            hits = sorted(t for t in mentioned if self.config.is_source_type(t))
            if hits:
                self.source_typed.add(arg.arg)
                self.summary.source_objects[arg.arg] = hits[0]
        # Fixpoint: aliases of source names and source-constructor
        # results are source objects too.
        changed = True
        while changed:
            changed = False
            for node in self._nodes:
                pairs = _binding_pairs(node)
                for target, value in pairs:
                    typename = self._source_type_of(value)
                    if typename is None:
                        continue
                    for name in _target_names(target):
                        if name not in self.source_typed:
                            self.source_typed.add(name)
                            self.summary.source_objects.setdefault(name, typename)
                            changed = True

    def _source_type_of(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Name) and value.id in self.source_typed:
            return self.summary.source_objects.get(value.id, "source")
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                terminal = dotted.rsplit(".", 1)[-1]
                if self.config.is_source_type(terminal):
                    return terminal
        if isinstance(value, ast.Await):
            return self._source_type_of(value.value)
        return None

    # -- value roots ----------------------------------------------------

    def roots_of(self, node: ast.AST) -> Set[str]:
        if isinstance(node, ast.Name):
            roots = set(self.env.get(node.id, ()))
            if node.id in self.source_typed:
                roots.add(f"o:{node.id}")
            return roots
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            base = _chain_root(node)
            if base is not None and base in self.source_typed:
                if isinstance(node, ast.Attribute) and self.config.is_benign_field(node.attr):
                    return set()
                root = f"s:{node.lineno}:{node.col_offset}"
                self.summary.sources.setdefault(
                    root,
                    {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "expr": _dotted(node) or f"{base}[...]",
                        "type": self.summary.source_objects.get(base, "source"),
                    },
                )
                return {root}
            return self.roots_of(node.value)
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            terminal = dotted.rsplit(".", 1)[-1] if dotted else None
            if terminal is not None and self.config.is_sanitizer(terminal):
                return set()
            if terminal in _CONTAINER_PASSTHROUGH:
                roots: Set[str] = set()
                for arg in node.args:
                    roots |= self.roots_of(arg)
                return roots
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ALIAS_METHODS
            ):
                return self.roots_of(node.func.value)
            return {f"c:{node.lineno}:{node.col_offset}"}
        if isinstance(node, ast.Await):
            return self.roots_of(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.roots_of(node.left) | self.roots_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.roots_of(node.operand)
        if isinstance(node, ast.BoolOp):
            roots = set()
            for value in node.values:
                roots |= self.roots_of(value)
            return roots
        if isinstance(node, ast.IfExp):
            return self.roots_of(node.body) | self.roots_of(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.roots_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            roots = set()
            for elt in node.elts:
                roots |= self.roots_of(elt)
            return roots
        if isinstance(node, ast.Dict):
            roots = set()
            for value in node.values:
                if value is not None:
                    roots |= self.roots_of(value)
            return roots
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            roots = self.roots_of(node.elt)
            for gen in node.generators:
                roots |= self.roots_of(gen.iter)
            return roots
        if isinstance(node, ast.DictComp):
            roots = self.roots_of(node.key) | self.roots_of(node.value)
            for gen in node.generators:
                roots |= self.roots_of(gen.iter)
            return roots
        if isinstance(node, ast.JoinedStr):
            roots = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    roots |= self.roots_of(value.value)
            return roots
        return set()

    # -- driver ---------------------------------------------------------

    def run(self) -> FunctionSummary:
        self._seed_source_types()
        for name in self.decl.params:
            self.env[name] = {f"p:{name}"}

        changed = True
        while changed:
            changed = False
            for node in self._nodes:
                for target, value in _binding_pairs(node):
                    roots = self.roots_of(value)
                    if not roots:
                        continue
                    for name in _target_names(target):
                        have = self.env.setdefault(name, set())
                        if not roots <= have:
                            have |= roots
                            changed = True

        # Second pass with the final environment: call sites + returns.
        for node in self._nodes:
            if isinstance(node, ast.Call):
                self._record_call(node)
            elif isinstance(node, ast.Return) and node.value is not None:
                for root in self.roots_of(node.value):
                    if root not in self.summary.returns:
                        self.summary.returns.append(root)
        self.summary.returns.sort()
        return self.summary

    def _record_call(self, node: ast.Call) -> None:
        display = _dotted(node.func)
        if display is None:
            return
        head, _, _rest = display.partition(".")
        origin = self.imports.get(head)
        resolved = display
        if origin is not None:
            tail = display.partition(".")[2]
            resolved = f"{origin}.{tail}" if tail else origin
        terminal = display.rsplit(".", 1)[-1]
        kind = "plain"
        if self.config.is_sanitizer(terminal):
            kind = "sanitizer"
        elif self.config.is_sink(terminal):
            kind = "sink"
        recv_type: Optional[str] = None
        if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
            recv = node.func.value.id
            if recv in self.source_typed:
                recv_type = self.summary.source_objects.get(recv)
        args: List[List[object]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            roots = sorted(self.roots_of(arg))
            if roots:
                args.append([index, roots, _snippet(arg)])
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            roots = sorted(self.roots_of(keyword.value))
            if roots:
                args.append([f"k:{keyword.arg}", roots, _snippet(keyword.value)])
        call_id = f"{node.lineno}:{node.col_offset}"
        self.summary.calls[call_id] = {
            "line": node.lineno,
            "col": node.col_offset,
            "display": display,
            "resolved": resolved,
            "recv_type": recv_type,
            "terminal": terminal,
            "kind": kind,
            "args": args,
        }


def _snippet(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on py>=3.9
        return "<expr>"
    return text if len(text) <= 60 else text[:57] + "..."


def _binding_pairs(node: ast.AST) -> List[Tuple[ast.AST, ast.AST]]:
    """(target, value) pairs for every name-binding construct."""
    if isinstance(node, ast.Assign):
        return [(target, node.value) for target in node.targets]
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return [(node.target, node.value)]
    if isinstance(node, ast.AugAssign):
        return [(node.target, node.value)]
    if isinstance(node, ast.NamedExpr):
        return [(node.target, node.value)]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [(node.target, node.iter)]
    if isinstance(node, ast.comprehension):
        return [(node.target, node.iter)]
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [
            (item.optional_vars, item.context_expr)
            for item in node.items
            if item.optional_vars is not None
        ]
    return []


def _target_names(target: ast.AST):
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def extract_summary(
    relpath: str, tree: ast.Module, config: LintConfig
) -> ModuleTaint:
    """Declarations plus per-function taint summaries for one module."""
    decls = extract_decls(relpath, tree)
    module = ModuleTaint(decls=decls)
    imports = decls.imports

    index: Dict[int, FunctionDecl] = {}
    for qual, decl in decls.functions.items():
        index[(decl.line, decl.col)] = decl  # type: ignore[index]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decl = index.get((node.lineno, node.col_offset))  # type: ignore[call-overload]
            if decl is None:
                continue
            extractor = _FunctionExtractor(decl, node, imports, config)
            module.summaries[decl.qualname] = extractor.run()
    return module


# ----------------------------------------------------------------------
# Interprocedural solve
# ----------------------------------------------------------------------


@dataclass
class TaintFinding:
    """One T1 violation plus the provenance steps behind it."""

    diagnostic: Diagnostic
    trace: List[Dict[str, object]]


class TaintSolver:
    """Monotone fixpoint over every module's function summaries."""

    rule_code = TAINT_RULE_CODE
    title = "raw input reaches a verdict/report sink without validation"
    rationale = (
        "Every value originating from a raw snapshot, update event, or "
        "assembled epoch must pass a declared sanitizer (harden_*, "
        "repair_flows, the vector hardening dispatch) before a "
        "check_*_entity / ValidationReport / apply_* sink consumes it -- "
        "the paper's validate-before-use contract enforced across "
        "function boundaries."
    )

    def __init__(
        self,
        modules: Sequence[ModuleTaint],
        config: LintConfig,
        resolution: Optional[Dict[str, Dict[str, List[object]]]] = None,
    ) -> None:
        self.config = config
        self.modules = list(modules)
        self.summaries: Dict[str, FunctionSummary] = {}
        for module in self.modules:
            self.summaries.update(module.summaries)
        # Only (re)build the call graph when the caller did not hand us
        # a cached resolution map -- that reuse is the whole point of
        # the skeleton fingerprint.
        if resolution is None:
            resolution = self.link(self.modules)
        self.resolution = resolution
        self.tainted: Dict[str, Set[str]] = {}
        # (qualname, root) -> provenance edge for trace reconstruction.
        self._why: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    # ------------------------------------------------------------------

    @staticmethod
    def link(
        modules: Sequence[ModuleTaint], graph: Optional[CallGraph] = None
    ) -> Dict[str, Dict[str, List[object]]]:
        """Resolve every call site: qualname -> call_id -> [callee, bound].

        Separated from solving so the incremental runner can cache it
        against the skeleton fingerprint and re-link only when the
        import/def shape changes.
        """
        if graph is None:
            graph = CallGraph([m.decls for m in modules])
        resolution: Dict[str, Dict[str, List[object]]] = {}
        for module in modules:
            for qual, summary in sorted(module.summaries.items()):
                table: Dict[str, List[object]] = {}
                for call_id, call in sorted(summary.calls.items()):
                    hit = graph.resolve(
                        summary.decl,
                        call.get("display"),  # type: ignore[arg-type]
                        call.get("resolved"),  # type: ignore[arg-type]
                        call.get("recv_type"),  # type: ignore[arg-type]
                    )
                    if hit is not None:
                        table[call_id] = [hit[0], hit[1]]
                if table:
                    resolution[qual] = table
        return resolution

    # ------------------------------------------------------------------

    def solve(self) -> List[TaintFinding]:
        for qual, summary in self.summaries.items():
            roots = set(summary.sources)
            roots.update(f"o:{name}" for name in summary.source_objects)
            self.tainted[qual] = roots

        changed = True
        while changed:
            changed = False
            for qual in sorted(self.summaries):
                summary = self.summaries[qual]
                table = self.resolution.get(qual, {})
                for call_id in sorted(summary.calls):
                    call = summary.calls[call_id]
                    if call["kind"] == "sanitizer":
                        continue
                    target = table.get(call_id)
                    if target is None:
                        continue
                    callee_qual, bound = str(target[0]), bool(target[1])
                    callee = self.summaries.get(callee_qual)
                    if callee is None:
                        continue
                    changed |= self._propagate_args(qual, call, callee, bound)
                    changed |= self._propagate_return(qual, call_id, call, callee)
        return self._findings()

    def _propagate_args(
        self,
        caller_qual: str,
        call: Dict[str, object],
        callee: FunctionSummary,
        bound: bool,
    ) -> bool:
        params = list(callee.decl.params)
        offset = 1 if bound and params and params[0] in ("self", "cls") else 0
        caller_tainted = self.tainted[caller_qual]
        changed = False
        for argref, roots, snippet in call["args"]:  # type: ignore[misc]
            live = sorted(r for r in roots if r in caller_tainted)
            if not live:
                continue
            if isinstance(argref, int):
                pindex = argref + offset
                if pindex >= len(params):
                    continue
                pname = params[pindex]
            else:
                pname = str(argref)[2:]
                if pname not in params:
                    continue
            proot = f"p:{pname}"
            if proot not in self.tainted[callee.decl.qualname]:
                self.tainted[callee.decl.qualname].add(proot)
                self._why[(callee.decl.qualname, proot)] = (
                    "arg",
                    caller_qual,
                    str(call["line"]),
                    live[0],
                    str(snippet),
                )
                changed = True
        return changed

    def _propagate_return(
        self,
        caller_qual: str,
        call_id: str,
        call: Dict[str, object],
        callee: FunctionSummary,
    ) -> bool:
        croot = f"c:{call_id}"
        if croot in self.tainted[caller_qual]:
            return False
        callee_tainted = self.tainted[callee.decl.qualname]
        live = sorted(r for r in callee.returns if r in callee_tainted)
        if not live:
            return False
        self.tainted[caller_qual].add(croot)
        self._why[(caller_qual, croot)] = (
            "ret",
            callee.decl.qualname,
            str(call["line"]),
            live[0],
        )
        return True

    # ------------------------------------------------------------------

    def _findings(self) -> List[TaintFinding]:
        findings: List[TaintFinding] = []
        for qual in sorted(self.summaries):
            summary = self.summaries[qual]
            if not self.config.is_core_path(summary.decl.relpath):
                continue
            for call_id in sorted(summary.calls):
                call = summary.calls[call_id]
                if call["kind"] != "sink":
                    continue
                witness: Optional[Tuple[str, str]] = None
                for _argref, roots, snippet in call["args"]:  # type: ignore[misc]
                    live = sorted(r for r in roots if r in self.tainted[qual])
                    if live:
                        witness = (live[0], str(snippet))
                        break
                if witness is None:
                    continue
                root, snippet = witness
                trace = self._trace(qual, root)
                origin = trace[0] if trace else None
                where = (
                    f"{origin['path']}:{origin['line']}" if origin else "its source"
                )
                diagnostic = Diagnostic(
                    code=self.rule_code,
                    message=(
                        f"unvalidated input reaches sink {call['terminal']}(): "
                        f"argument {snippet!r} is tainted from {where} and no "
                        "sanitizer (harden_*/repair_flows) intervenes; see "
                        "lint --explain T1"
                    ),
                    path=summary.decl.relpath,
                    line=int(call["line"]),  # type: ignore[arg-type]
                    col=int(call["col"]),  # type: ignore[arg-type]
                    severity=Severity.ERROR,
                )
                trace.append(
                    {
                        "kind": "sink",
                        "path": summary.decl.relpath,
                        "line": int(call["line"]),  # type: ignore[arg-type]
                        "detail": f"argument {snippet!r} of {call['terminal']}()",
                    }
                )
                findings.append(TaintFinding(diagnostic=diagnostic, trace=trace))
        return findings

    def _trace(self, qual: str, root: str) -> List[Dict[str, object]]:
        """Provenance steps, source first, by walking the why-edges."""
        steps: List[Dict[str, object]] = []
        seen: Set[Tuple[str, str]] = set()
        while len(steps) < 24:
            if (qual, root) in seen:
                break
            seen.add((qual, root))
            summary = self.summaries[qual]
            relpath = summary.decl.relpath
            if root.startswith("s:"):
                info = summary.sources.get(root, {})
                steps.append(
                    {
                        "kind": "source",
                        "path": relpath,
                        "line": int(info.get("line", summary.decl.line)),
                        "detail": (
                            f"read of raw {info.get('type', 'source')} "
                            f"field {info.get('expr', '?')}"
                        ),
                    }
                )
                break
            if root.startswith("o:"):
                name = root[2:]
                typename = summary.source_objects.get(name, "source")
                steps.append(
                    {
                        "kind": "source",
                        "path": relpath,
                        "line": summary.decl.line,
                        "detail": (
                            f"{name!r} in {summary.decl.name}() carries a raw "
                            f"{typename}"
                        ),
                    }
                )
                break
            edge = self._why.get((qual, root))
            if edge is None:
                steps.append(
                    {
                        "kind": "via",
                        "path": relpath,
                        "line": summary.decl.line,
                        "detail": f"tainted value inside {summary.decl.name}()",
                    }
                )
                break
            if edge[0] == "arg":
                _kind, caller_qual, line, caller_root, snippet = edge
                steps.append(
                    {
                        "kind": "argument",
                        "path": self.summaries[caller_qual].decl.relpath,
                        "line": int(line),
                        "detail": (
                            f"{snippet} passed to {summary.decl.name}() "
                            f"parameter {root[2:]!r}"
                        ),
                    }
                )
                qual, root = caller_qual, caller_root
            else:
                _kind, callee_qual, line, callee_root = edge
                steps.append(
                    {
                        "kind": "return",
                        "path": relpath,
                        "line": int(line),
                        "detail": (
                            f"returned by "
                            f"{self.summaries[callee_qual].decl.name}()"
                        ),
                    }
                )
                qual, root = callee_qual, callee_root
        steps.reverse()
        return steps
